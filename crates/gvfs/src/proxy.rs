//! The GVFS user-level file system proxy.
//!
//! A proxy "behaves both as a server (receiving RPC calls) and a client
//! (issuing RPC calls)" (paper §3.2.1): it accepts NFS RPC traffic from
//! the kernel client below it and forwards misses to the next hop above
//! it — another proxy or the kernel NFS server. Because hops compose,
//! arbitrary chains form: kernel client → client-side proxy (disk caches,
//! meta-data) → LAN second-level cache proxy → server-side proxy
//! (identity mapping) → kernel server.
//!
//! Per-session proxies are dynamically created and configured
//! *per user / per application*: cache size, write policy and meta-data
//! handling are all [`ProxyConfig`] fields, which is the paper's central
//! argument for user-level (rather than kernel) extensions.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use oncrpc::msg::{AcceptStat, CallHeader, RejectStat, ReplyBody, RpcMessage};
use oncrpc::transport::RpcHandler;
use oncrpc::{ProgramError, RpcClient, RpcError};
use parking_lot::Mutex;
use simnet::telemetry::{Counter, Telemetry, TraceEvent};
use simnet::{Env, SimDuration};
use vfs::Handle;
use xdr::{Decode, Decoder, Encode, Encoder};

/// Dirty blocks grouped by `(fileid, generation)`: `(offset, data)` runs
/// awaiting write-back. BTreeMap: flush() iterates it, and write-back
/// order must be deterministic (lint: determinism).
type DirtyByFile = BTreeMap<(u64, u64), Vec<(u64, Vec<u8>)>>;

/// One write-back slot: `(block, payload, content digest when dedup is
/// on, write verifier if the WRITE succeeded)`. The payload stays in
/// the slot so a failed or verifier-mismatched write can requeue its
/// bytes; the digest — computed (and charged) once before the send —
/// is what a durable ack records.
type WriteBackSlot = Option<(u64, Vec<u8>, Option<Digest>, Option<u64>)>;

/// Channel uploads that failed upstream, kept with their contents (and
/// the content digest, when dedup computed one) for the bounded flush
/// retry rounds.
type FailedUploads = Arc<Mutex<Vec<(FileKey, Vec<u8>, Option<Digest>)>>>;

use nfs3::args::{ReadArgs, WriteArgs};
use nfs3::proto::{
    proc3, DirOpArgs3, Fattr3, Fh3, PostOpAttr, StableHow, Status, WccData, NFS_PROGRAM, NFS_V3,
};

use crate::block_cache::{BlockCache, Tag, WritePolicy};
use crate::cas::{ContentStore, DedupTel, DedupTuning};
use crate::channel::{
    chanproc, decode_gossip, encode_gossip, ChannelClient, CHANNEL_PROGRAM, CHANNEL_V1,
    MAX_GOSSIP_DIGESTS,
};
use crate::codec::{self, CodecModel};
use crate::digest::{self, Digest};
use crate::file_cache::{CowTuning, FileCache, FileKey};
use crate::fleet::FleetTuning;
use crate::identity::IdentityMapper;
use crate::meta::{is_meta_name, meta_name_for, MetaFile};
use crate::transfer::{run_windowed, TransferTel, TransferTuning};

/// Proxy configuration — middleware sets these per user / per application.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Display name for simulation process labels.
    pub name: String,
    /// Write policy for the block cache.
    pub write_policy: WritePolicy,
    /// Interpret meta-data files (zero maps, file channel).
    pub meta_handling: bool,
    /// CPU cost per proxied call.
    pub per_op_cpu: SimDuration,
    /// When true the block cache is treated as shared read-only: absorbed
    /// writes are disabled regardless of policy (paper: "different
    /// proxies [may] share disk caches for read-only data").
    pub read_only_share: bool,
    /// Overlapped-WAN-transfer knobs: file-channel chunking, flush
    /// write-back window, sequential read-ahead depth.
    pub transfer: TransferTuning,
    /// Content-addressed redundancy elimination knobs. With
    /// [`DedupTuning::off()`] every WAN path behaves exactly as before
    /// the CAS existed (byte-for-byte identical reports).
    pub dedup: DedupTuning,
    /// Fleet-scale batching/back-pressure knobs. With
    /// [`FleetTuning::off()`] (the default) every path behaves exactly
    /// as before the fleet work existed (byte-for-byte identical
    /// reports, identical telemetry registrations).
    pub fleet: FleetTuning,
    /// Copy-on-write reference files: install channel fetches as
    /// CAS-resolved recipes instead of materialized copies. Requires
    /// `dedup` (inert without a CAS); with [`CowTuning::off()`] (the
    /// default) every path behaves exactly as before reference files
    /// existed (byte-for-byte identical reports, identical telemetry
    /// registrations).
    pub cow: CowTuning,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            name: "gvfs-proxy".into(),
            write_policy: WritePolicy::WriteBack,
            meta_handling: true,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning::default(),
            dedup: DedupTuning::default(),
            fleet: FleetTuning::off(),
            cow: CowTuning::off(),
        }
    }
}

/// Proxy activity counters (a point-in-time view of the telemetry
/// registry's `gvfs/<proxy-name>.*` counters).
#[derive(Debug, Default, Clone, Copy)]
pub struct ProxyStats {
    /// Calls handled.
    pub calls: u64,
    /// NFS READs seen.
    pub reads: u64,
    /// NFS WRITEs seen.
    pub writes: u64,
    /// Calls forwarded upstream.
    pub forwarded: u64,
    /// READs satisfied from the zero map without any upstream traffic.
    pub zero_filtered: u64,
    /// READs served from the file cache.
    pub file_cache_reads: u64,
    /// Whole files fetched through the file channel.
    pub channel_fetches: u64,
    /// Compressed bytes the channel moved (download direction).
    pub channel_wire_bytes: u64,
    /// WRITEs absorbed by write-back caching.
    pub writes_absorbed: u64,
    /// Blocks pushed upstream by flush or dirty eviction.
    pub blocks_written_back: u64,
    /// Read-ahead blocks requested upstream.
    pub prefetch_issued: u64,
    /// Demand reads served by a block that was prefetched.
    pub prefetch_hits: u64,
    /// Failed write-backs parked on the retry queue (degraded mode).
    pub wb_queued: u64,
    /// Queued write-backs given another attempt by a flush.
    pub wb_drained: u64,
    /// COMMITs whose verifier disagreed with the WRITEs' (the server
    /// restarted mid-flush and discarded the unstable data).
    pub verf_mismatches: u64,
    /// Retry rounds flushes have run to drain failed write-backs.
    pub flush_retry_rounds: u64,
    /// Bytes that never crossed the WAN because content-addressing
    /// proved the receiver already held them.
    pub dedup_bytes_avoided: u64,
    /// Recipe records satisfied without a blob fetch (CAS hit or
    /// duplicate in-flight digest).
    pub dedup_recipe_hits: u64,
    /// Distinct missing chunks actually fetched via `FETCH_BLOBS`.
    pub dedup_blob_fetches: u64,
    /// Uploads/write-backs skipped because upstream already acknowledged
    /// identical content.
    pub dedup_acked_skips: u64,
    /// Channel fetches installed as copy-on-write reference files
    /// (recipe + pins) instead of materialized copies (0 when the cow
    /// knob is off).
    pub cow_ref_installs: u64,
    /// CAS evictions refused because every candidate was pinned by a
    /// live reference file — the store over-ran capacity instead of
    /// dropping bytes a recipe still resolves through (0 when cow off).
    pub cas_pin_blocked: u64,
}

/// Report from a middleware-driven flush. Failed counts record what the
/// bounded retry rounds could *not* drain: those blocks sit on the
/// write-back retry queue and those files are re-marked dirty, so the
/// next flush signal tries again — nothing is silently dropped.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlushReport {
    /// Dirty blocks written upstream (durable: WRITE and COMMIT agreed
    /// on the server's write verifier).
    pub blocks: u64,
    /// Bytes written upstream (block path).
    pub block_bytes: u64,
    /// Dirty whole files uploaded through the channel.
    pub files: u64,
    /// Bytes uploaded on the wire (channel path, post-compression).
    pub file_wire_bytes: u64,
    /// Dirty blocks still on the retry queue after the retry rounds.
    pub failed_blocks: u64,
    /// Bytes belonging to `failed_blocks`.
    pub failed_block_bytes: u64,
    /// Dirty files whose channel upload kept failing; re-marked dirty in
    /// the file cache so a later flush retries the upload.
    pub failed_files: u64,
}

/// Telemetry-backed counters; `ProxyStats` is read out of these. The
/// instance name is derived from `ProxyConfig::name` (deduplicated with
/// `#2`, `#3`, ... when several proxies share a name in one simulation).
struct PxTel {
    registry: Telemetry,
    inst: String,
    /// Per-NFS-procedure call counters, registered on first use and then
    /// recorded through shared cells: the dispatch path must not take the
    /// registry lock (or build a `String` key) per request.
    nfs_procs: parking_lot::Mutex<Vec<(u32, Counter)>>,
    calls: Counter,
    reads: Counter,
    writes: Counter,
    forwarded: Counter,
    zero_filtered: Counter,
    file_cache_reads: Counter,
    channel_fetches: Counter,
    channel_wire_bytes: Counter,
    writes_absorbed: Counter,
    blocks_written_back: Counter,
    /// Dispatch-path failures converted into clean degraded handling
    /// instead of a panic (lint: panic-free-dispatch).
    recovered_errors: Counter,
    /// Blocks the read-ahead engine asked upstream for.
    prefetch_issued: Counter,
    /// Demand reads served by a block that was prefetched.
    prefetch_hits: Counter,
    /// Prefetched blocks evicted before any demand read touched them.
    prefetch_wasted: Counter,
    /// Failed write-backs parked on the retry queue (degraded mode).
    wb_queued: Counter,
    /// Queued write-backs given another attempt by a flush.
    wb_drained: Counter,
    /// COMMIT/WRITE verifier disagreements (server restart mid-flush).
    verf_mismatches: Counter,
    /// Retry rounds run by flushes to drain failed write-backs.
    flush_retry_rounds: Counter,
}

impl PxTel {
    fn register(registry: Telemetry, base: &str) -> Self {
        let inst = registry.instance_name(base);
        let c = |suffix: &str| registry.counter("gvfs", format!("{inst}.{suffix}"));
        PxTel {
            calls: c("calls"),
            reads: c("reads"),
            writes: c("writes"),
            forwarded: c("forwarded"),
            zero_filtered: c("zero_filtered"),
            file_cache_reads: c("file_cache_reads"),
            channel_fetches: c("channel_fetches"),
            channel_wire_bytes: c("channel_wire_bytes"),
            writes_absorbed: c("writes_absorbed"),
            blocks_written_back: c("blocks_written_back"),
            recovered_errors: c("recovered_errors"),
            prefetch_issued: c("prefetch_issued"),
            prefetch_hits: c("prefetch_hits"),
            prefetch_wasted: c("prefetch_wasted"),
            wb_queued: c("wb_queued"),
            wb_drained: c("wb_drained"),
            verf_mismatches: c("verf_mismatches"),
            flush_retry_rounds: c("flush_retry_rounds"),
            nfs_procs: parking_lot::Mutex::new(Vec::new()),
            inst,
            registry,
        }
    }

    /// `gvfs/<inst>.proc.<name>` counter for an NFS procedure, cached.
    fn nfs_proc_counter(&self, proc: u32) -> Counter {
        let mut procs = self.nfs_procs.lock();
        match procs.binary_search_by_key(&proc, |(p, _)| *p) {
            Ok(i) => procs[i].1.clone(),
            Err(i) => {
                let c = self.registry.counter(
                    "gvfs",
                    format!("{}.proc.{}", self.inst, nfs3::proto::proc3_name(proc)),
                );
                procs.insert(i, (proc, c.clone()));
                c
            }
        }
    }
}

/// Digest-keyed `FETCH_BLOBS` reply cache with the same bounded
/// discipline as [`ContentStore`]: a monotonic touch stamp drives
/// deterministic least-recently-touched eviction, and the stored reply
/// bytes never exceed the byte cap. Unbounded growth here would hold
/// every distinct chunk of a cloning run in host memory twice (once in
/// the CAS, once as a cached reply).
struct BlobReplyCache {
    // BTreeMap both ways: iteration feeds eviction, which must be
    // deterministic (lint: determinism).
    entries: BTreeMap<Digest, (u64, xdr::Bytes)>,
    /// Touch stamp → digest, oldest first.
    lru: BTreeMap<u64, Digest>,
    bytes: u64,
    cap: u64,
    stamp: u64,
}

impl BlobReplyCache {
    fn new(cap: u64) -> Self {
        BlobReplyCache {
            entries: BTreeMap::new(),
            lru: BTreeMap::new(),
            bytes: 0,
            cap,
            stamp: 0,
        }
    }

    fn get(&mut self, d: &Digest) -> Option<xdr::Bytes> {
        self.stamp += 1;
        let stamp = self.stamp;
        let e = self.entries.get_mut(d)?;
        self.lru.remove(&e.0);
        e.0 = stamp;
        self.lru.insert(stamp, *d);
        Some(e.1.clone())
    }

    fn insert(&mut self, d: Digest, reply: xdr::Bytes) {
        let len = reply.len() as u64;
        if len > self.cap {
            return;
        }
        if let Some((old_stamp, old)) = self.entries.remove(&d) {
            self.lru.remove(&old_stamp);
            self.bytes -= old.len() as u64;
        }
        while self.bytes + len > self.cap {
            let Some((&oldest, &victim)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&oldest);
            if let Some((_, body)) = self.entries.remove(&victim) {
                self.bytes -= body.len() as u64;
            }
        }
        self.stamp += 1;
        let stamp = self.stamp;
        self.bytes += len;
        self.entries.insert(d, (stamp, reply));
        self.lru.insert(stamp, d);
    }
}

/// Safety valve on the durable-ack map: one entry per 32 KB block, so
/// this covers 2 GiB of distinct tracked blocks before the flush pass
/// starts shedding the lexicographically first entries. Losing an
/// entry only costs a redundant resend, never correctness.
const ACKED_CAP: usize = 1 << 16;

/// Safety valve on cached `FETCH_RECIPE` replies (one per
/// (file, chunk size); recipes are small, so a generous count cap
/// suffices). HashMap iteration is nondeterministic, so overflow
/// clears the whole map rather than picking victims.
const RECIPE_REPLY_CAP: usize = 4096;

struct ProxyState {
    meta: HashMap<FileKey, Option<Arc<MetaFile>>>,
    sizes: HashMap<FileKey, u64>,
    /// Single-flight guard: file-channel fetches in progress. Concurrent
    /// READ misses on the same file (the kernel client's parallel read
    /// workers) must trigger ONE whole-file transfer, with the rest
    /// blocking until the file cache is populated.
    inflight_fetch: HashMap<FileKey, simnet::Signal>,
    /// Cached file-channel FETCH replies (results bytes), for second-level
    /// proxies serving repeated clonings on a LAN.
    chan_replies: HashMap<FileKey, xdr::Bytes>,
    /// Cached FETCH_CHUNK replies keyed by (file, offset, count) — the
    /// chunked analogue of `chan_replies`.
    chan_chunk_replies: HashMap<(FileKey, u64, u32), xdr::Bytes>,
    /// Per-file sequential-miss detector: (last missed block, run length).
    streaks: HashMap<FileKey, (u64, u32)>,
    /// Blocks a prefetch worker is currently fetching, with a signal set
    /// once the fetch lands. Suppresses duplicate prefetches; a racing
    /// demand miss waits on the signal instead of duplicating the
    /// upstream READ.
    inflight_prefetch: BTreeMap<Tag, simnet::Signal>,
    /// Blocks installed by read-ahead and not yet touched by a demand
    /// read. Removal on demand hit counts `prefetch_hits`; found evicted
    /// counts `prefetch_wasted`.
    prefetched: BTreeSet<Tag>,
    /// Blocks a demand miss is currently fetching upstream. The kernel
    /// client pipelines its own readahead as parallel READs, so the
    /// demand READ for block b+1 is often already in flight when block
    /// b's hit triggers read-ahead — without this set the prefetcher
    /// would fetch b+1 a second time over the WAN.
    inflight_demand: BTreeSet<Tag>,
    /// Degraded-mode write-back retry queue: dirty blocks whose upstream
    /// WRITE (or the covering COMMIT) failed. Flush drains it with
    /// bounded-backoff retry rounds; until then the bytes live here
    /// instead of being dropped. BTreeMap: drained in deterministic
    /// order (lint: determinism).
    wb_queue: BTreeMap<Tag, Vec<u8>>,
    /// Per-block digest + write verifier upstream last *durably*
    /// acknowledged (WRITE and COMMIT verifiers agreed, RFC 1813
    /// §3.3.7). A later flush finding the same digest under the same
    /// verifier skips the redundant UNSTABLE WRITE; a restarted server
    /// rotates its verifier, which invalidates every entry at the
    /// covering COMMIT. An entry is removed the moment any upstream
    /// WRITE for its block is issued outside a validated skip — even
    /// one whose reply was lost may have mutated the server, so only a
    /// fresh durable agreement may reinstate it (no A-B-A). Bounded by
    /// [`ACKED_CAP`]. BTreeMap: determinism lint.
    acked: BTreeMap<Tag, (Digest, u64)>,
    /// Cached `FETCH_RECIPE` replies keyed by (file, chunk size) — the
    /// recipe analogue of `chan_chunk_replies` for second-level
    /// proxies. Bounded by [`RECIPE_REPLY_CAP`].
    chan_recipe_replies: HashMap<(FileKey, u32), xdr::Bytes>,
    /// Cached `FETCH_BLOBS` replies keyed by *content digest*: eight
    /// distinct images sharing chunks dedupe on a second-level LAN
    /// proxy even though their file handles differ. Entries are
    /// verified against their digest before insertion and LRU-bounded
    /// by the CAS byte cap.
    chan_blob_replies: BlobReplyCache,
    /// Single-flight guard for blob fetches, keyed by content digest
    /// (not file handle): concurrent clonings of *different* images
    /// coalesce on the chunks they share.
    inflight_blob: BTreeMap<Digest, simnet::Signal>,
    /// Blob misses waiting to join the next upstream batch envelope
    /// (fleet batching only): `(digest, original request args)` in
    /// arrival order. Each entry also holds a signal in `inflight_blob`.
    batch_pending: Vec<(Digest, xdr::Bytes)>,
    /// Whether a batch leader is currently collecting `batch_pending`
    /// (fleet batching only). New misses arriving while true just park;
    /// the leader drains them in bounded rounds.
    batch_open: bool,
    /// Digests freshly cached by a batch round whose *original*
    /// requester has not been served yet. The first cache serve of such
    /// a digest skips the dedup-hit accounting (those bytes did cross
    /// the upstream link once, for that very requester); later sharers
    /// count normally.
    batch_uncounted: BTreeSet<Digest>,
    /// Append-only log of blob digests this proxy has cached, in cache
    /// order (gossip only). Anti-entropy rounds push bounded deltas of
    /// this log to each peer, tracked by per-peer cursors — entries are
    /// 16 bytes, so even a 10k-clone run's log stays tiny relative to
    /// the payload cache it indexes.
    gossip_log: Vec<Digest>,
    /// Per-peer cursor into `gossip_log` for the *reply* direction of
    /// anti-entropy: how much of our log the named peer has already been
    /// told in our `GOSSIP_DIGESTS` replies. BTreeMap: determinism lint.
    gossip_reply_cursor: BTreeMap<u32, usize>,
    /// What we believe each sibling shard holds, learned from gossip
    /// (push messages and pull replies). Advisory only: a peer may have
    /// evicted an advertised digest, in which case the peer fetch fails
    /// and the miss falls back upstream. BTreeMap: determinism lint.
    peer_digests: BTreeMap<u32, BTreeSet<Digest>>,
}

/// Write-back queue back-pressure policy (satellite of the fleet work):
/// `cap == 0` is the historical unbounded queue; the telemetry cells are
/// registered only when a cap is configured, so legacy snapshots carry
/// no new counters.
#[derive(Clone)]
struct WbPolicy {
    cap: usize,
    /// Parked blocks shed by the cap (oldest-tag first).
    shed: Option<Counter>,
    /// High-water mark of the parked-queue depth.
    high_water: Option<Counter>,
}

/// Park a failed write-back on the retry queue, enforcing the fleet cap.
/// Must run under the state lock (takes `&mut ProxyState`); shedding is
/// deterministic (oldest tag in `BTreeMap` order goes first).
fn park_wb_entry(st: &mut ProxyState, wb_queued: &Counter, wb: &WbPolicy, tag: Tag, data: Vec<u8>) {
    wb_queued.inc();
    st.wb_queue.insert(tag, data);
    if wb.cap > 0 && st.wb_queue.len() > wb.cap {
        // Bounded memory beats durability of the oldest parked block
        // under a sustained upstream outage; the shed is surfaced via
        // telemetry rather than silently dropped.
        if st.wb_queue.pop_first().is_some() {
            if let Some(shed) = &wb.shed {
                shed.inc();
            }
        }
    }
    if let Some(hw) = &wb.high_water {
        let depth = st.wb_queue.len() as u64;
        let seen = hw.get();
        if depth > seen {
            hw.add(depth - seen);
        }
    }
}

/// Peer wiring for intra-region digest gossip, set once by middleware
/// via [`Proxy::set_gossip_peers`] after the sibling shards' channels
/// exist.
struct GossipPeers {
    /// This shard's id as it appears in gossip messages.
    my_id: u32,
    /// Sibling shards in the same region: `(shard id, LAN client)`.
    peers: Vec<(u32, RpcClient)>,
    /// Round-robin index of the next anti-entropy target.
    next: usize,
    /// Per-peer cursor into our `gossip_log` for the *push* direction:
    /// how much of our log we have successfully pushed to each peer.
    /// Advances only on a successful round, so a lost message is simply
    /// retransmitted next period. BTreeMap: determinism lint.
    sent_cursor: BTreeMap<u32, usize>,
}

/// Gossip runtime state + telemetry (present iff `cfg.fleet.gossip` and
/// dedup are both on; registration is gated exactly like the other
/// fleet counters so gossip-off snapshots stay byte-identical).
struct GossipCtl {
    peers: Mutex<GossipPeers>,
    /// Anti-entropy rounds this shard initiated.
    rounds: Counter,
    /// Digests learned about peers (both directions).
    digests_learned: Counter,
    /// Blob misses served by a sibling shard instead of the WAN.
    peer_hits: Counter,
    /// Logical chunk bytes those peer serves carried (WAN bytes saved).
    peer_bytes: Counter,
    /// Peer fetches that failed (stale advertisement / lost message);
    /// the miss falls back to the normal upstream path.
    peer_misses: Counter,
    /// Blob requests this shard served *to* siblings.
    peer_served: Counter,
}

/// A GVFS proxy instance. Implements [`RpcHandler`], so it plugs directly
/// into an [`oncrpc::Listener`].
pub struct Proxy {
    cfg: ProxyConfig,
    upstream: RpcClient,
    chan: Option<ChannelClient>,
    block_cache: Option<Arc<BlockCache>>,
    file_cache: Option<Arc<FileCache>>,
    identity: Option<Arc<IdentityMapper>>,
    tel: PxTel,
    ttel: TransferTel,
    dtel: DedupTel,
    /// Content-addressed store over this proxy's resident cache bytes
    /// (present iff `cfg.dedup.enabled`).
    cas: Option<Arc<ContentStore>>,
    /// CPU-cost model for the proxy's own digest/codec work (flush-side
    /// digesting, blob verification). Mirrors the channel client's model
    /// when a file channel is attached, so dedup CPU is priced the same
    /// on every path.
    codec: CodecModel,
    /// Per-instance write verifier returned in absorbed WRITE/COMMIT
    /// replies (write-back mode answers both locally, so it speaks for
    /// the stability of its own cache disk).
    write_verf: u64,
    /// Write-back queue cap/shed policy (counters registered only when
    /// `cfg.fleet` configures a cap).
    wb: WbPolicy,
    /// Upstream batch envelopes issued by fleet blob coalescing
    /// (registered only when `cfg.fleet` enables batching).
    fleet_batches: Option<Counter>,
    /// Sub-calls those envelopes carried (`items / batches` = achieved
    /// coalescing factor).
    fleet_batched_items: Option<Counter>,
    /// Intra-region digest gossip runtime (present iff `cfg.fleet.gossip`
    /// and dedup are both enabled).
    gossip: Option<GossipCtl>,
    /// Channel fetches installed as reference files (registered only
    /// when the cow knob is active, i.e. cow *and* dedup enabled).
    cow_installs: Option<Counter>,
    /// CAS evictions refused under pin pressure (same registration
    /// gate; the counter is shared with the content store).
    cow_pin_blocked: Option<Counter>,
    // Arc: detached prefetch workers share the state (and the Mutex
    // inside keeps critical sections short — no suspends under it).
    state: Arc<Mutex<ProxyState>>,
}

fn key_of(h: Handle) -> FileKey {
    FileKey {
        fileid: h.fileid,
        generation: h.generation,
    }
}

/// Best known size of a file: local override (absorbed writes), then
/// meta-data, then the file cache. A free function so detached prefetch
/// workers share it with [`Proxy::known_size`].
fn known_size_in(
    state: &Mutex<ProxyState>,
    file_cache: &Option<Arc<FileCache>>,
    key: FileKey,
) -> Option<u64> {
    {
        let st = state.lock();
        if let Some(s) = st.sizes.get(&key) {
            return Some(*s);
        }
        if let Some(Some(m)) = st.meta.get(&key) {
            return Some(m.file_size);
        }
    }
    file_cache.as_ref().and_then(|fc| fc.size_of(key))
}

/// Push an evicted dirty block upstream, truncated to the best-known
/// file size. Success counts into `written_back`; a failed WRITE parks
/// the block on the write-back retry queue (degraded mode) for the next
/// flush to drain, instead of dropping the bytes.
#[allow(clippy::too_many_arguments)]
fn writeback_evicted_block(
    env: &Env,
    upstream: &RpcClient,
    state: &Mutex<ProxyState>,
    file_cache: &Option<Arc<FileCache>>,
    bs: u64,
    written_back: &Counter,
    recovered_errors: &Counter,
    wb_queued: &Counter,
    wb: &WbPolicy,
    tag: Tag,
    data: Vec<u8>,
) {
    let key = FileKey {
        fileid: tag.fileid,
        generation: tag.generation,
    };
    let off = tag.block * bs;
    let mut payload = data;
    if let Some(size) = known_size_in(state, file_cache, key) {
        if off >= size {
            return;
        }
        payload.truncate(((size - off).min(bs)) as usize);
    }
    let nfs = nfs3::Nfs3Client::new(upstream.clone());
    let h = Handle {
        fileid: tag.fileid,
        generation: tag.generation,
    };
    // The UNSTABLE WRITE below may reach the server even when its reply
    // is lost, so any remembered durable ack for this block stops being
    // trustworthy the moment the write is issued (A-B-A): only a fresh
    // WRITE+COMMIT verifier agreement in the flush path reinstates it.
    state.lock().acked.remove(&tag);
    if nfs
        .write(env, h, off, payload.clone(), StableHow::Unstable)
        .is_ok()
    {
        written_back.inc();
    } else {
        recovered_errors.inc();
        park_wb_entry(&mut state.lock(), wb_queued, wb, tag, payload);
    }
}

/// Everything a detached read-ahead worker needs, detached from `&Proxy`
/// (the proxy sits behind an `Arc` owned by the listener; workers only
/// hold the pieces they touch).
#[derive(Clone)]
struct PrefetchCtx {
    upstream: RpcClient,
    bc: Arc<BlockCache>,
    state: Arc<Mutex<ProxyState>>,
    file_cache: Option<Arc<FileCache>>,
    cas: Option<Arc<ContentStore>>,
    written_back: Counter,
    recovered_errors: Counter,
    wb_queued: Counter,
    wb: WbPolicy,
}

impl Proxy {
    /// Build a proxy forwarding to `upstream`. Counters register in the
    /// telemetry registry of the simulation the upstream channel belongs
    /// to, under `gvfs/<cfg.name>.*`.
    pub fn new(cfg: ProxyConfig, upstream: RpcClient) -> Self {
        let registry = upstream.channel().handle().telemetry().clone();
        let tel = PxTel::register(registry, &cfg.name);
        let ttel = TransferTel::register(&tel.registry, &tel.inst);
        let dtel = DedupTel::register(&tel.registry, &tel.inst);
        // Per-instance seed for the write verifier (RFC 1813 requires the
        // verifier to change when the *server* instance changes; two
        // proxies must never share one).
        let write_verf = simnet::splitmix64(digest::seed64(tel.inst.as_bytes()));
        // Copy-on-write is meaningful only with a CAS to resolve recipes
        // against; with dedup off the knob is inert (and registers no
        // telemetry, keeping legacy snapshots byte-identical).
        let cow_on = cfg.cow.enabled && cfg.dedup.enabled;
        let cow_pin_blocked = cow_on.then(|| {
            tel.registry
                .counter("gvfs", format!("{}.cas.pin_blocked_evictions", tel.inst))
        });
        let cas = if cfg.dedup.enabled {
            let store = ContentStore::new(cfg.dedup.cas_bytes);
            let store = match &cow_pin_blocked {
                Some(c) => store.with_pin_blocked_counter(c.clone()),
                None => store,
            };
            Some(Arc::new(store))
        } else {
            None
        };
        let cow_installs = cow_on.then(|| {
            tel.registry
                .counter("gvfs", format!("{}.cow.ref_installs", tel.inst))
        });
        let blob_reply_cap = cfg.dedup.cas_bytes;
        // Fleet telemetry registers only when the knobs are on, so a
        // legacy configuration's snapshot carries exactly the historical
        // counter set.
        let wb = WbPolicy {
            cap: cfg.fleet.wb_queue_cap,
            shed: (cfg.fleet.wb_queue_cap > 0).then(|| {
                tel.registry
                    .counter("gvfs", format!("{}.wb_shed", tel.inst))
            }),
            high_water: (cfg.fleet.wb_queue_cap > 0).then(|| {
                tel.registry
                    .counter("gvfs", format!("{}.wb_high_water", tel.inst))
            }),
        };
        let fleet_batches = cfg.fleet.batch_fetch.then(|| {
            tel.registry
                .counter("gvfs", format!("{}.fleet.batches", tel.inst))
        });
        let fleet_batched_items = cfg.fleet.batch_fetch.then(|| {
            tel.registry
                .counter("gvfs", format!("{}.fleet.batched_items", tel.inst))
        });
        // Gossip needs the digest-keyed reply cache both as the
        // inventory being advertised and as the store peer fetches are
        // served from, so it is inert without dedup (same dependency as
        // batching); the counters register only when it is live.
        let gossip = (cfg.fleet.gossip && cfg.dedup.enabled).then(|| GossipCtl {
            peers: Mutex::new(GossipPeers {
                my_id: 0,
                peers: Vec::new(),
                next: 0,
                sent_cursor: BTreeMap::new(),
            }),
            rounds: tel
                .registry
                .counter("gvfs", format!("{}.gossip.rounds", tel.inst)),
            digests_learned: tel
                .registry
                .counter("gvfs", format!("{}.gossip.digests_learned", tel.inst)),
            peer_hits: tel
                .registry
                .counter("gvfs", format!("{}.gossip.peer_hits", tel.inst)),
            peer_bytes: tel
                .registry
                .counter("gvfs", format!("{}.gossip.peer_bytes", tel.inst)),
            peer_misses: tel
                .registry
                .counter("gvfs", format!("{}.gossip.peer_misses", tel.inst)),
            peer_served: tel
                .registry
                .counter("gvfs", format!("{}.gossip.peer_served", tel.inst)),
        });
        Proxy {
            cfg,
            upstream,
            chan: None,
            block_cache: None,
            file_cache: None,
            identity: None,
            tel,
            ttel,
            dtel,
            cas,
            codec: CodecModel::default(),
            write_verf,
            wb,
            fleet_batches,
            fleet_batched_items,
            gossip,
            cow_installs,
            cow_pin_blocked,
            state: Arc::new(Mutex::new(ProxyState {
                meta: HashMap::new(),
                sizes: HashMap::new(),
                inflight_fetch: HashMap::new(),
                chan_replies: HashMap::new(),
                chan_chunk_replies: HashMap::new(),
                streaks: HashMap::new(),
                inflight_prefetch: BTreeMap::new(),
                prefetched: BTreeSet::new(),
                inflight_demand: BTreeSet::new(),
                wb_queue: BTreeMap::new(),
                acked: BTreeMap::new(),
                chan_recipe_replies: HashMap::new(),
                chan_blob_replies: BlobReplyCache::new(blob_reply_cap),
                inflight_blob: BTreeMap::new(),
                batch_pending: Vec::new(),
                batch_open: false,
                batch_uncounted: BTreeSet::new(),
                gossip_log: Vec::new(),
                gossip_reply_cursor: BTreeMap::new(),
                peer_digests: BTreeMap::new(),
            })),
        }
    }

    /// Attach a block-based disk cache.
    pub fn with_block_cache(mut self, cache: Arc<BlockCache>) -> Self {
        self.block_cache = Some(cache);
        self
    }

    /// Attach a file cache and the channel client used to fill it.
    pub fn with_file_channel(mut self, cache: Arc<FileCache>, chan: ChannelClient) -> Self {
        self.file_cache = Some(cache);
        self.codec = *chan.codec();
        self.chan = Some(chan);
        self
    }

    /// Attach identity mapping (server-side proxies).
    pub fn with_identity(mut self, mapper: Arc<IdentityMapper>) -> Self {
        self.identity = Some(mapper);
        self
    }

    /// Finalize into a handler for an RPC listener.
    pub fn into_handler(self) -> Arc<Proxy> {
        Arc::new(self)
    }

    /// Counter snapshot (reads the shared telemetry counters).
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            calls: self.tel.calls.get(),
            reads: self.tel.reads.get(),
            writes: self.tel.writes.get(),
            forwarded: self.tel.forwarded.get(),
            zero_filtered: self.tel.zero_filtered.get(),
            file_cache_reads: self.tel.file_cache_reads.get(),
            channel_fetches: self.tel.channel_fetches.get(),
            channel_wire_bytes: self.tel.channel_wire_bytes.get(),
            writes_absorbed: self.tel.writes_absorbed.get(),
            blocks_written_back: self.tel.blocks_written_back.get(),
            prefetch_issued: self.tel.prefetch_issued.get(),
            prefetch_hits: self.tel.prefetch_hits.get(),
            wb_queued: self.tel.wb_queued.get(),
            wb_drained: self.tel.wb_drained.get(),
            verf_mismatches: self.tel.verf_mismatches.get(),
            flush_retry_rounds: self.tel.flush_retry_rounds.get(),
            dedup_bytes_avoided: self.dtel.bytes_avoided.get(),
            dedup_recipe_hits: self.dtel.recipe_hits.get(),
            dedup_blob_fetches: self.dtel.blob_fetches.get(),
            dedup_acked_skips: self.dtel.acked_skips.get(),
            cow_ref_installs: self.cow_installs.as_ref().map(|c| c.get()).unwrap_or(0),
            cas_pin_blocked: self.cow_pin_blocked.as_ref().map(|c| c.get()).unwrap_or(0),
        }
    }

    /// This proxy's write verifier (what absorbed WRITE/COMMIT replies
    /// carry).
    pub fn write_verf(&self) -> u64 {
        self.write_verf
    }

    /// Dirty blocks currently parked on the write-back retry queue.
    pub fn wb_queue_len(&self) -> usize {
        self.state.lock().wb_queue.len()
    }

    /// Parked write-back blocks shed by the fleet queue cap (0 when no
    /// cap is configured).
    pub fn wb_shed(&self) -> u64 {
        self.wb.shed.as_ref().map(|c| c.get()).unwrap_or(0)
    }

    /// High-water mark of the write-back retry queue depth (0 when no
    /// cap is configured — the mark is only tracked under a cap).
    pub fn wb_high_water(&self) -> u64 {
        self.wb.high_water.as_ref().map(|c| c.get()).unwrap_or(0)
    }

    /// `(envelopes, sub-calls)` issued by fleet blob coalescing; the
    /// ratio is the achieved batching factor. Zeros when batching is
    /// off.
    pub fn fleet_batch_stats(&self) -> (u64, u64) {
        (
            self.fleet_batches.as_ref().map(|c| c.get()).unwrap_or(0),
            self.fleet_batched_items
                .as_ref()
                .map(|c| c.get())
                .unwrap_or(0),
        )
    }

    /// Reset counters.
    pub fn reset_stats(&self) {
        self.tel.calls.reset();
        self.tel.reads.reset();
        self.tel.writes.reset();
        self.tel.forwarded.reset();
        self.tel.zero_filtered.reset();
        self.tel.file_cache_reads.reset();
        self.tel.channel_fetches.reset();
        self.tel.channel_wire_bytes.reset();
        self.tel.writes_absorbed.reset();
        self.tel.blocks_written_back.reset();
        self.dtel.bytes_avoided.reset();
        self.dtel.recipe_hits.reset();
        self.dtel.blob_fetches.reset();
        self.dtel.acked_skips.reset();
        if let Some(c) = &self.cow_installs {
            c.reset();
        }
        if let Some(c) = &self.cow_pin_blocked {
            c.reset();
        }
    }

    /// The content-addressed store, when dedup is enabled.
    pub fn content_store(&self) -> Option<&Arc<ContentStore>> {
        self.cas.as_ref()
    }

    /// The attached block cache, if any.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.block_cache.as_ref()
    }

    /// The attached file cache, if any.
    pub fn file_cache(&self) -> Option<&Arc<FileCache>> {
        self.file_cache.as_ref()
    }

    // -- forwarding ---------------------------------------------------------

    /// Forward a call upstream and wrap the outcome for the downstream xid.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        prog: u32,
        vers: u32,
        proc: u32,
        args: xdr::Bytes,
    ) -> RpcMessage {
        self.tel.forwarded.inc();
        let client = self.upstream.with_cred(cred.clone());
        match client.call_dl(env, prog, vers, proc, &args) {
            Ok(results) => RpcMessage::success(xid, results),
            Err(e) => Self::error_reply(xid, e),
        }
    }

    fn error_reply(xid: u32, e: RpcError) -> RpcMessage {
        match e {
            RpcError::Accept(stat) => RpcMessage::accept_error(xid, stat),
            RpcError::Denied(stat) => RpcMessage::denied(xid, stat),
            _ => RpcMessage::accept_error(xid, AcceptStat::SystemErr),
        }
    }

    // -- meta-data ----------------------------------------------------------

    /// On a successful LOOKUP of `name`, discover and load the associated
    /// meta-data file (paper: "the meta-data file is stored in the same
    /// directory ... and has a special filename so that it can be easily
    /// looked up").
    fn discover_meta(
        &self,
        env: &Env,
        cred: &oncrpc::OpaqueAuth,
        dir: Handle,
        name: &str,
        subject: Handle,
    ) {
        if !self.cfg.meta_handling || is_meta_name(name) {
            return;
        }
        let key = key_of(subject);
        if self.state.lock().meta.contains_key(&key) {
            return;
        }
        let nfs = nfs3::Nfs3Client::new(self.upstream.with_cred(cred.clone()));
        #[cfg(feature = "debug-trace")]
        eprintln!("[gvfs] meta discovery for {name}");
        let meta = (|| -> Option<Arc<MetaFile>> {
            let (meta_fh, attr) = nfs.lookup(env, dir, &meta_name_for(name)).ok()?;
            let size = attr.map(|a| a.size).unwrap_or(0);
            let mut contents = Vec::with_capacity(size as usize);
            let mut off = 0u64;
            loop {
                let r = nfs.read(env, meta_fh, off, nfs3::MAX_BLOCK).ok()?;
                off += r.data.len() as u64;
                let done = r.eof || r.data.is_empty();
                contents.extend_from_slice(&r.data);
                if done {
                    break;
                }
            }
            MetaFile::from_bytes(&contents).map(Arc::new)
        })();
        #[cfg(feature = "debug-trace")]
        eprintln!("[gvfs] meta for {name}: {}", meta.is_some());
        self.state.lock().meta.insert(key, meta);
    }

    fn meta_for(&self, key: FileKey) -> Option<Arc<MetaFile>> {
        self.state.lock().meta.get(&key).cloned().flatten()
    }

    /// Best known size of a file: local override (absorbed writes), then
    /// meta-data, then unknown.
    fn known_size(&self, key: FileKey) -> Option<u64> {
        known_size_in(&self.state, &self.file_cache, key)
    }

    fn bump_size(&self, key: FileKey, end: u64) {
        let mut st = self.state.lock();
        let e = st.sizes.entry(key).or_insert(0);
        *e = (*e).max(end);
    }

    /// Drop remembered durable acks for every block touching
    /// `[offset, offset + len)` before a WRITE for that range goes
    /// upstream outside the flush path: once any unconfirmed write may
    /// have mutated the server copy, the old ack can no longer justify
    /// a dedup skip (A-B-A).
    fn invalidate_acked_range(&self, key: FileKey, offset: u64, len: u64) {
        if self.cas.is_none() || len == 0 {
            return;
        }
        let bs = self
            .block_cache
            .as_ref()
            .map(|b| b.config().block_size as u64)
            .unwrap_or(32 * 1024);
        let first = offset / bs;
        let last = (offset + len - 1) / bs;
        let mut st = self.state.lock();
        for block in first..=last {
            st.acked.remove(&Tag {
                fileid: key.fileid,
                generation: key.generation,
                block,
            });
        }
    }

    // -- READ ---------------------------------------------------------------

    fn read_reply(xid: u32, data: Vec<u8>, eof: bool) -> RpcMessage {
        let mut enc = Encoder::new();
        enc.put_u32(Status::Ok.as_u32());
        PostOpAttr(None).encode(&mut enc);
        enc.put_u32(data.len() as u32);
        enc.put_bool(eof);
        enc.put_opaque_var(&data);
        RpcMessage::success(xid, enc.into_bytes())
    }

    /// An NFS READ failure reply (status + no attributes), matching the
    /// server's resfail encoding.
    fn read_error_reply(xid: u32, status: Status) -> RpcMessage {
        let mut enc = Encoder::new();
        enc.put_u32(status.as_u32());
        PostOpAttr(None).encode(&mut enc);
        RpcMessage::success(xid, enc.into_bytes())
    }

    fn handle_read(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: xdr::Bytes,
    ) -> RpcMessage {
        let parsed: Result<ReadArgs, _> = xdr::from_bytes(&args);
        let a = match parsed {
            Ok(a) => a,
            Err(_) => return self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::READ, args),
        };
        self.tel.reads.inc();
        let key = key_of(a.file.0);

        // 1. File cache ("read locally" of an installed file).
        if let Some(fc) = &self.file_cache {
            if let Some((data, eof)) = fc.read(env, key, a.offset, a.count) {
                self.tel.file_cache_reads.inc();
                return Self::read_reply(xid, data, eof);
            }
        }

        let meta = if self.cfg.meta_handling {
            self.meta_for(key)
        } else {
            None
        };

        // 2. File channel: fetch the whole file on first access, with
        // single-flight de-duplication across concurrent readers.
        if let (Some(m), Some(fc), Some(chan)) = (&meta, &self.file_cache, &self.chan) {
            if m.channel.is_some() {
                // Bounded single-flight: a request re-enters the loop when
                // a fetch it waited on failed (the old unbounded loop let
                // woken waiters stampede the retry slot forever).
                const MAX_FETCH_ATTEMPTS: u32 = 3;
                let mut attempts = 0u32;
                loop {
                    if let Some((data, eof)) = fc.read(env, key, a.offset, a.count) {
                        self.tel.file_cache_reads.inc();
                        return Self::read_reply(xid, data, eof);
                    }
                    attempts += 1;
                    if attempts > MAX_FETCH_ATTEMPTS {
                        self.tel.recovered_errors.inc();
                        return Self::read_error_reply(xid, Status::Io);
                    }
                    // Join an in-progress fetch, or claim the fetch.
                    let waiter = {
                        let mut st = self.state.lock();
                        match st.inflight_fetch.get(&key) {
                            Some(sig) => Some(sig.clone()),
                            None => {
                                st.inflight_fetch
                                    .insert(key, simnet::Signal::new(env.handle()));
                                None
                            }
                        }
                    };
                    match waiter {
                        Some(sig) => {
                            sig.wait(env);
                            // Re-check the file cache (fetch may have
                            // failed; then we claim the retry slot).
                            continue;
                        }
                        None => {
                            let t = &self.cfg.transfer;
                            // Recipe-driven fetch when dedup is on: chunks
                            // the CAS already holds never cross the WAN.
                            // Any dedup failure falls back to the plain
                            // chunked transfer (correctness never depends
                            // on the CAS).
                            // With fleet batching on, the misses travel
                            // in multi-digest envelopes: `max_batch`
                            // records per upstream round-trip instead of
                            // one, windows of envelopes in flight.
                            let dedup_batch = if self.cfg.fleet.batch_fetch {
                                self.cfg.fleet.max_batch.max(1)
                            } else {
                                1
                            };
                            // Copy-on-write: resolve the recipe straight
                            // into the CAS (pinning every record) and
                            // install the file as a reference — zero
                            // cache-disk install for resident content, a
                            // warm clone's dominant saving. Any failure
                            // falls back to the materializing fetch; the
                            // helper released its pins.
                            let mut installed_ref = false;
                            if self.cfg.cow.enabled {
                                if let Some(cas) = &self.cas {
                                    if let Ok(pr) = chan.fetch_recipe_pinned(
                                        env,
                                        a.file.0,
                                        m.content_map.as_ref(),
                                        t.chunk_bytes,
                                        t.channel_window,
                                        dedup_batch,
                                        cas,
                                        &self.dtel,
                                        Some(&self.ttel),
                                    ) {
                                        let chunk = pr.recipe.chunk_bytes;
                                        fc.install_reference(
                                            env,
                                            key,
                                            cas.clone(),
                                            chunk,
                                            pr.recipe.records,
                                            pr.fresh_bytes,
                                        );
                                        if let Some(c) = &self.cow_installs {
                                            c.inc();
                                        }
                                        self.tel.channel_fetches.inc();
                                        self.tel.channel_wire_bytes.add(pr.wire);
                                        let tr = &self.tel.registry;
                                        if tr.trace_enabled() {
                                            tr.trace(
                                                TraceEvent::new(env.now(), "gvfs", "channel_fetch")
                                                    .bytes(pr.wire)
                                                    .label("proxy", self.tel.inst.clone()),
                                            );
                                        }
                                        installed_ref = true;
                                    }
                                }
                            }
                            let result = if installed_ref {
                                true
                            } else {
                                let fetched = match &self.cas {
                                    Some(cas) => chan
                                        .fetch_dedup_batched(
                                            env,
                                            a.file.0,
                                            m.content_map.as_ref(),
                                            t.chunk_bytes,
                                            t.channel_window,
                                            dedup_batch,
                                            cas,
                                            &self.dtel,
                                            Some(&self.ttel),
                                        )
                                        .map(|df| (df.contents, df.wire))
                                        .or_else(|_| {
                                            self.tel.recovered_errors.inc();
                                            chan.fetch_chunked(
                                                env,
                                                a.file.0,
                                                t.chunk_bytes,
                                                t.channel_window,
                                                Some(&self.ttel),
                                            )
                                        }),
                                    None => chan.fetch_chunked(
                                        env,
                                        a.file.0,
                                        t.chunk_bytes,
                                        t.channel_window,
                                        Some(&self.ttel),
                                    ),
                                };
                                match fetched {
                                    Ok((contents, wire)) => {
                                        #[cfg(feature = "debug-trace")]
                                        eprintln!(
                                            "[gvfs] channel fetch ok: {} bytes, {} wire",
                                            contents.len(),
                                            wire
                                        );
                                        // Dedup saves WAN transfer and
                                        // origin work; the assembled file
                                        // is written to the local cache
                                        // disk in full either way (a CAS
                                        // hit is host memory, not
                                        // cache-disk residency).
                                        fc.install(env, key, &contents);
                                        self.tel.channel_fetches.inc();
                                        self.tel.channel_wire_bytes.add(wire);
                                        let tr = &self.tel.registry;
                                        if tr.trace_enabled() {
                                            tr.trace(
                                                TraceEvent::new(env.now(), "gvfs", "channel_fetch")
                                                    .bytes(wire)
                                                    .label("proxy", self.tel.inst.clone()),
                                            );
                                        }
                                        true
                                    }
                                    Err(_e) => {
                                        #[cfg(feature = "debug-trace")]
                                        eprintln!("[gvfs] channel fetch failed: {_e:?}");
                                        false
                                    }
                                }
                            };
                            let sig = { self.state.lock().inflight_fetch.remove(&key) };
                            if let Some(sig) = sig {
                                sig.set();
                            }
                            if result {
                                if let Some((data, eof)) = fc.read(env, key, a.offset, a.count) {
                                    self.tel.file_cache_reads.inc();
                                    return Self::read_reply(xid, data, eof);
                                }
                            }
                            break; // channel unusable: block path below
                        }
                    }
                }
            }
        }

        // 3. Zero map: serve all-zero ranges locally.
        if let Some(m) = &meta {
            if let Some(zm) = &m.zero_map {
                let size = self.known_size(key).unwrap_or(m.file_size);
                if zm.range_is_zero(a.offset, a.count) {
                    self.tel.zero_filtered.inc();
                    if a.offset >= size {
                        return Self::read_reply(xid, Vec::new(), true);
                    }
                    let len = (a.count as u64).min(size - a.offset) as usize;
                    let eof = a.offset + len as u64 >= size;
                    return Self::read_reply(xid, vec![0u8; len], eof);
                }
            }
        }

        // 4. Block cache: serve any read that falls inside a single
        // cache block. Sub-block serving matters because kernel reads
        // (rsize, typically 8 KB) are smaller than cache blocks (32 KB):
        // without it only the 1-in-4 block-aligned read ever hits, and a
        // prefetched block pays for 32 KB of WAN transfer but saves only
        // 8 KB of forwards.
        if let Some(bc) = &self.block_cache {
            let bs = bc.config().block_size as u64;
            let in_block = a.offset % bs;
            if in_block + a.count as u64 <= bs {
                let tag = Tag {
                    fileid: key.fileid,
                    generation: key.generation,
                    block: a.offset / bs,
                };
                let zm = meta.as_ref().and_then(|m| m.zero_map.as_ref());
                let size_hint = meta.as_ref().map(|m| m.file_size);
                // Atomically either join an in-flight prefetch of this
                // block (wait for it to land rather than duplicating the
                // WAN READ), or claim the block as an in-flight demand
                // read so the read-ahead engine skips it as a candidate.
                let waiter = {
                    let mut st = self.state.lock();
                    match st.inflight_prefetch.get(&tag) {
                        Some(sig) => Some(sig.clone()),
                        None => {
                            st.inflight_demand.insert(tag);
                            None
                        }
                    }
                };
                let claimed = waiter.is_none();
                if let Some(sig) = waiter {
                    sig.wait(env);
                }
                if let Some(data) = bc.lookup(env, tag) {
                    if claimed {
                        let mut st = self.state.lock();
                        st.inflight_demand.remove(&tag);
                    }
                    let was_prefetched = { self.state.lock().prefetched.remove(&tag) };
                    if was_prefetched {
                        self.tel.prefetch_hits.inc();
                        // Keep the pipeline rolling: hitting a prefetched
                        // block means the sequential stream is live.
                        self.maybe_prefetch(env, cred, key, tag, bs, a.count, zm, size_hint);
                    }
                    let start = in_block as usize;
                    let take = if start >= data.len() {
                        // Reading past the end of a short (EOF tail)
                        // block: nothing there.
                        0
                    } else {
                        (a.count as usize).min(data.len() - start)
                    };
                    let eof = data.len() < bs as usize
                        || self
                            .known_size(key)
                            .map(|s| a.offset + take as u64 >= s)
                            .unwrap_or(false);
                    return Self::read_reply(xid, data[start..start + take].to_vec(), eof);
                }
                if !claimed {
                    // Waited on a prefetch that failed to land: claim the
                    // block ourselves before forwarding.
                    let mut st = self.state.lock();
                    st.inflight_demand.insert(tag);
                }
                // Miss: start read-ahead for a detected sequential
                // stream, then forward. The prefetch workers run
                // detached; their upstream READs queue behind this
                // demand miss on the WAN, overlapping its latency.
                self.maybe_prefetch(env, cred, key, tag, bs, a.count, zm, size_hint);
                let reply = self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::READ, args);
                {
                    let mut st = self.state.lock();
                    st.inflight_demand.remove(&tag);
                }
                if let RpcMessage::Reply {
                    body:
                        ReplyBody::Accepted {
                            stat: AcceptStat::Success,
                            results,
                            ..
                        },
                    ..
                } = &reply
                {
                    if let Some((data, eof)) = parse_read_results(results) {
                        if eof {
                            // Server-confirmed size: lets warm hits report
                            // EOF without re-asking upstream.
                            self.bump_size(key, a.offset + data.len() as u64);
                        }
                        // Only a block-aligned reply covers the block from
                        // its first byte, so only that can be installed.
                        if !data.is_empty() && in_block == 0 {
                            self.install_clean(env, tag, data, cred);
                        }
                    }
                }
                return reply;
            }
        }

        // 5. Plain forwarding (unaligned or cacheless).
        self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::READ, args)
    }

    fn install_clean(&self, env: &Env, tag: Tag, data: Vec<u8>, cred: &oncrpc::OpaqueAuth) {
        if let Some(bc) = &self.block_cache {
            // Index the frame in the CAS: block frames (32 KB) and channel
            // chunks (1 MB) live in disjoint length classes, so this only
            // dedupes against other block frames — bookkeeping that keeps
            // every resident frame content-addressable.
            if let Some(cas) = &self.cas {
                cas.insert(&data);
            }
            if let Some((etag, edata)) = bc.insert(env, tag, data, false) {
                // A dirty block fell out: write it upstream now.
                self.writeback_block(env, cred, etag, edata);
            }
        }
    }

    fn writeback_block(&self, env: &Env, cred: &oncrpc::OpaqueAuth, tag: Tag, data: Vec<u8>) {
        let bs = self
            .block_cache
            .as_ref()
            .map(|b| b.config().block_size as u64)
            .unwrap_or(32 * 1024);
        writeback_evicted_block(
            env,
            &self.upstream.with_cred(cred.clone()),
            &self.state,
            &self.file_cache,
            bs,
            &self.tel.blocks_written_back,
            &self.tel.recovered_errors,
            &self.tel.wb_queued,
            &self.wb,
            tag,
            data,
        );
    }

    /// Sequential read-ahead: track per-file block streaks; once two
    /// consecutive blocks have been requested, fetch the next
    /// `transfer.read_ahead` blocks upstream into the block cache from a
    /// detached worker. The workers' READs queue behind the triggering
    /// demand miss on the WAN, so the stream's next blocks arrive while
    /// the application consumes the current one. A racing demand miss on
    /// a block being prefetched waits on the block's signal in
    /// `inflight_prefetch` rather than duplicating the upstream READ.
    ///
    /// `lead` is the triggering read's byte count: a candidate block whose
    /// leading `lead` bytes the zero map proves zero is skipped, because
    /// the demand stream's aligned read there will be zero-filtered
    /// locally and never consult the block cache — prefetching it would
    /// burn WAN bandwidth on a block nobody looks up. `size_hint` (the
    /// meta file size, when the proxy handles meta-data) clips candidates
    /// at EOF before the first upstream reply has taught `known_size` —
    /// without it every short file costs a full window of empty
    /// beyond-EOF READs.
    #[allow(clippy::too_many_arguments)]
    fn maybe_prefetch(
        &self,
        env: &Env,
        cred: &oncrpc::OpaqueAuth,
        key: FileKey,
        tag: Tag,
        bs: u64,
        lead: u32,
        zero_map: Option<&crate::meta::ZeroMap>,
        size_hint: Option<u64>,
    ) {
        let depth = self.cfg.transfer.read_ahead;
        if depth == 0 {
            return;
        }
        let Some(bc) = self.block_cache.clone() else {
            return;
        };
        // `known_size` (server-confirmed) beats the meta hint; the hint
        // still clips beyond-EOF speculation before the first EOF reply.
        let size = self.known_size(key).or(size_hint);
        let (candidates, wasted) = {
            let mut st = self.state.lock();
            let run = match st.streaks.get(&key).copied() {
                Some((last, r)) if tag.block == last + 1 => r + 1,
                Some((last, r)) if tag.block == last => r,
                _ => 1,
            };
            st.streaks.insert(key, (tag.block, run));
            // Window sizing by streak evidence. On a fluid-shared WAN
            // link a prefetch batch slows every concurrent demand miss
            // (the flows split the bandwidth), so speculation must pay
            // for itself:
            // * run 1 (fresh position): speculate exactly one block.
            //   Small files span a couple of cache blocks, so reading
            //   block b predicts b+1; fetching it concurrently with b
            //   hides the second block's WAN round trip — the dominant
            //   cost of a scattered small-file sweep.
            // * run 2–3: the pair hypothesis already paid off; issuing
            //   more here is junk whenever the file ends at two blocks
            //   (the common case). Wait for real streak evidence.
            // * run ≥ 4 (128 KB of consecutive reads): a genuine
            //   sequential stream — open the full window.
            let depth = match run {
                1 => 1,
                2 | 3 => return,
                _ => depth as u64,
            };
            // Reclaim: prefetched blocks that fell out of the cache
            // without ever serving a demand read were wasted effort.
            let gone: Vec<Tag> = st
                .prefetched
                .iter()
                .filter(|t| !bc.contains(**t))
                .copied()
                .collect();
            for t in &gone {
                st.prefetched.remove(t);
            }
            let mut cands: Vec<Tag> = Vec::new();
            for b in (tag.block + 1)..=(tag.block + depth) {
                if let Some(s) = size {
                    if b * bs >= s {
                        break;
                    }
                }
                if let Some(zm) = zero_map {
                    if zm.range_is_zero(b * bs, lead) {
                        continue;
                    }
                }
                let t = Tag {
                    fileid: key.fileid,
                    generation: key.generation,
                    block: b,
                };
                if st.inflight_prefetch.contains_key(&t)
                    || st.inflight_demand.contains(&t)
                    || st.prefetched.contains(&t)
                    || bc.contains(t)
                {
                    continue;
                }
                st.inflight_prefetch
                    .insert(t, simnet::Signal::new(env.handle()));
                cands.push(t);
            }
            (cands, gone.len() as u64)
        };
        if wasted > 0 {
            self.tel.prefetch_wasted.add(wasted);
        }
        if candidates.is_empty() {
            return;
        }
        self.tel.prefetch_issued.add(candidates.len() as u64);
        let ctx = PrefetchCtx {
            upstream: self.upstream.with_cred(cred.clone()),
            bc,
            state: self.state.clone(),
            file_cache: self.file_cache.clone(),
            cas: self.cas.clone(),
            written_back: self.tel.blocks_written_back.clone(),
            recovered_errors: self.tel.recovered_errors.clone(),
            wb_queued: self.tel.wb_queued.clone(),
            wb: self.wb.clone(),
        };
        let ttel = self.ttel.clone();
        let window = depth.max(1);
        env.spawn(format!("{}-prefetch", self.tel.inst), move |env| {
            run_windowed(
                &env,
                "prefetch",
                window,
                candidates,
                Some(&ttel),
                move |env, t| {
                    let nfs = nfs3::Nfs3Client::new(ctx.upstream.clone());
                    let h = Handle {
                        fileid: t.fileid,
                        generation: t.generation,
                    };
                    let sig = match nfs.read(env, h, t.block * bs, bs as u32) {
                        Ok(r) if !r.data.is_empty() => {
                            if let Some(cas) = &ctx.cas {
                                cas.insert(&r.data);
                            }
                            if let Some((etag, edata)) = ctx.bc.insert(env, t, r.data, false) {
                                writeback_evicted_block(
                                    env,
                                    &ctx.upstream,
                                    &ctx.state,
                                    &ctx.file_cache,
                                    bs,
                                    &ctx.written_back,
                                    &ctx.recovered_errors,
                                    &ctx.wb_queued,
                                    &ctx.wb,
                                    etag,
                                    edata,
                                );
                            }
                            {
                                let mut st = ctx.state.lock();
                                st.prefetched.insert(t);
                                st.inflight_prefetch.remove(&t)
                            }
                        }
                        _ => ctx.state.lock().inflight_prefetch.remove(&t),
                    };
                    // Wake any demand miss parked on this block — outside
                    // the state lock.
                    if let Some(s) = sig {
                        s.set();
                    }
                    Some(())
                },
            );
        });
    }

    /// Count prefetched blocks that fell out of the cache without ever
    /// serving a demand read. Runs on every flush so the wasted counter
    /// converges even when no further misses re-trigger `maybe_prefetch`.
    fn reclaim_wasted_prefetches(&self) {
        let Some(bc) = &self.block_cache else {
            return;
        };
        let wasted = {
            let mut st = self.state.lock();
            let gone: Vec<Tag> = st
                .prefetched
                .iter()
                .filter(|t| !bc.contains(**t))
                .copied()
                .collect();
            for t in &gone {
                st.prefetched.remove(t);
            }
            gone.len() as u64
        };
        if wasted > 0 {
            self.tel.prefetch_wasted.add(wasted);
        }
    }

    // -- WRITE --------------------------------------------------------------

    /// An absorbed WRITE's reply, carrying this proxy's own write
    /// verifier: the proxy answers for its local cache disk, not for the
    /// origin server, so it must not forge the server's verifier.
    fn write_reply(&self, xid: u32, count: u32, committed: StableHow) -> RpcMessage {
        let mut enc = Encoder::new();
        enc.put_u32(Status::Ok.as_u32());
        WccData(None).encode(&mut enc);
        enc.put_u32(count);
        enc.put_u32(committed.as_u32());
        enc.put_u64(self.write_verf);
        RpcMessage::success(xid, enc.into_bytes())
    }

    fn handle_write(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: xdr::Bytes,
    ) -> RpcMessage {
        let parsed: Result<WriteArgs, _> = xdr::from_bytes(&args);
        let a = match parsed {
            Ok(a) => a,
            Err(_) => return self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::WRITE, args),
        };
        self.tel.writes.inc();
        let key = key_of(a.file.0);

        // File-cache resident files absorb writes there (dirty upload on
        // flush).
        if let Some(fc) = &self.file_cache {
            if fc.contains(key) && !self.cfg.read_only_share {
                fc.write(env, key, a.offset, &a.data);
                self.bump_size(key, a.offset + a.data.len() as u64);
                self.tel.writes_absorbed.inc();
                return self.write_reply(xid, a.data.len() as u32, StableHow::FileSync);
            }
        }

        let write_back =
            self.cfg.write_policy == WritePolicy::WriteBack && !self.cfg.read_only_share;

        // Write-back: absorb the write into the block cache. The labeled
        // block replaces the old `expect("checked above")` landmine: a
        // write-back policy without a cache attached now recovers by
        // falling through to the write-through path below.
        'write_back: {
            if !write_back {
                break 'write_back;
            }
            let Some(bc) = self.block_cache.as_ref() else {
                self.tel.recovered_errors.inc();
                break 'write_back;
            };
            let bs = bc.config().block_size as u64;
            let end = a.offset + a.data.len() as u64;
            let mut pos = a.offset;
            while pos < end {
                let block = pos / bs;
                let bstart = block * bs;
                let boff = (pos - bstart) as usize;
                let take = ((bstart + bs).min(end) - pos) as usize;
                let chunk = &a.data[(pos - a.offset) as usize..(pos - a.offset) as usize + take];
                let tag = Tag {
                    fileid: key.fileid,
                    generation: key.generation,
                    block,
                };
                if !bc.update(env, tag, boff, chunk, true) {
                    // Absent frame. Full-block writes insert directly;
                    // partial writes within the current file need
                    // read-modify-write from upstream first.
                    let full = boff == 0 && take as u64 == bs;
                    let existing_size = self.known_size(key).unwrap_or(0);
                    if full || bstart >= existing_size {
                        let mut data = vec![0u8; boff + take];
                        data[boff..].copy_from_slice(chunk);
                        if let Some((etag, edata)) = bc.insert(env, tag, data, true) {
                            self.writeback_block(env, cred, etag, edata);
                        }
                    } else {
                        let nfs = nfs3::Nfs3Client::new(self.upstream.with_cred(cred.clone()));
                        let mut base = match nfs.read(env, a.file.0, bstart, bs as u32) {
                            Ok(r) => r.data,
                            Err(_) => {
                                // Base fetch for read-modify-write failed:
                                // don't fabricate a zero base — hand the
                                // original WRITE upstream untouched.
                                self.tel.recovered_errors.inc();
                                self.invalidate_acked_range(key, a.offset, a.data.len() as u64);
                                return self.forward(
                                    env,
                                    xid,
                                    cred,
                                    NFS_PROGRAM,
                                    NFS_V3,
                                    proc3::WRITE,
                                    args,
                                );
                            }
                        };
                        if base.len() < boff + take {
                            base.resize(boff + take, 0);
                        }
                        base[boff..boff + take].copy_from_slice(chunk);
                        if let Some((etag, edata)) = bc.insert(env, tag, base, true) {
                            self.writeback_block(env, cred, etag, edata);
                        }
                    }
                }
                pos += take as u64;
            }
            self.bump_size(key, end);
            self.tel.writes_absorbed.inc();
            return self.write_reply(xid, a.data.len() as u32, StableHow::FileSync);
        }

        // Write-through: keep the cache coherent, then forward.
        if let Some(bc) = &self.block_cache {
            let bs = bc.config().block_size as u64;
            if a.offset % bs == 0 && a.data.len() as u64 <= bs {
                let tag = Tag {
                    fileid: key.fileid,
                    generation: key.generation,
                    block: a.offset / bs,
                };
                if !bc.update(env, tag, 0, &a.data, false) && a.data.len() as u64 == bs {
                    if let Some((etag, edata)) = bc.insert(env, tag, a.data.clone(), false) {
                        self.writeback_block(env, cred, etag, edata);
                    }
                }
            }
            self.bump_size(key, a.offset + a.data.len() as u64);
        }
        self.invalidate_acked_range(key, a.offset, a.data.len() as u64);
        self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::WRITE, args)
    }

    // -- GETATTR / COMMIT / LOOKUP -----------------------------------------

    /// Patch the size in a GETATTR reply if we hold absorbed writes that
    /// grew the file beyond what the server knows.
    fn handle_getattr(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: xdr::Bytes,
    ) -> RpcMessage {
        let fh: Result<Fh3, _> = xdr::from_bytes(&args);
        let reply = self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::GETATTR, args);
        let fh = match fh {
            Ok(f) => f,
            Err(_) => return reply,
        };
        let key = key_of(fh.0);
        let override_size = {
            let st = self.state.lock();
            st.sizes.get(&key).copied()
        };
        let fc_size = self.file_cache.as_ref().and_then(|fc| fc.size_of(key));
        let local = match (override_size, fc_size) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let local = match local {
            Some(s) => s,
            None => return reply,
        };
        if let RpcMessage::Reply {
            xid,
            body:
                ReplyBody::Accepted {
                    stat: AcceptStat::Success,
                    results,
                    verf,
                },
        } = reply
        {
            let mut dec = Decoder::new(&results);
            let patched = (|| -> Option<Vec<u8>> {
                let status = dec.get_u32().ok()?;
                if status != Status::Ok.as_u32() {
                    return None;
                }
                let mut attr = Fattr3::decode(&mut dec).ok()?.0;
                if attr.size >= local {
                    return None;
                }
                attr.size = local;
                let mut enc = Encoder::new();
                enc.put_u32(Status::Ok.as_u32());
                Fattr3(attr).encode(&mut enc);
                Some(enc.into_bytes())
            })();
            let results = patched.map(xdr::Bytes::from).unwrap_or(results);
            RpcMessage::Reply {
                xid,
                body: ReplyBody::Accepted {
                    stat: AcceptStat::Success,
                    results,
                    verf,
                },
            }
        } else {
            reply
        }
    }

    fn handle_commit(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: xdr::Bytes,
    ) -> RpcMessage {
        if self.cfg.write_policy == WritePolicy::WriteBack && self.block_cache.is_some() {
            // Data is stable on the proxy's local cache disk; the real
            // upstream flush happens on a middleware signal.
            let mut enc = Encoder::new();
            enc.put_u32(Status::Ok.as_u32());
            WccData(None).encode(&mut enc);
            enc.put_u64(self.write_verf);
            return RpcMessage::success(xid, enc.into_bytes());
        }
        self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::COMMIT, args)
    }

    fn handle_lookup(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: xdr::Bytes,
    ) -> RpcMessage {
        let parsed: Result<DirOpArgs3, _> = xdr::from_bytes(&args);
        let reply = self.forward(env, xid, cred, NFS_PROGRAM, NFS_V3, proc3::LOOKUP, args);
        if let (
            Ok(dirop),
            RpcMessage::Reply {
                body:
                    ReplyBody::Accepted {
                        stat: AcceptStat::Success,
                        results,
                        ..
                    },
                ..
            },
        ) = (parsed, &reply)
        {
            let mut dec = Decoder::new(results);
            if dec.get_u32() == Ok(Status::Ok.as_u32()) {
                if let Ok(fh) = Fh3::decode(&mut dec) {
                    self.discover_meta(env, cred, dirop.dir.0, &dirop.name, fh.0);
                }
            }
        }
        reply
    }

    // -- flush (middleware signal) -------------------------------------------

    /// One bounded-window write-back pass over per-file dirty block
    /// runs: UNSTABLE WRITEs stream through the flush window, then one
    /// COMMIT per file. A block is durable only when its WRITE's
    /// verifier matches the COMMIT's (RFC 1813 §3.3.7): a disagreement
    /// means the server restarted in between and discarded the unstable
    /// data, so the block — though both RPCs "succeeded" — must be
    /// resent. Everything not durable comes back for the next round.
    fn write_back_pass(
        &self,
        env: &Env,
        cred: &oncrpc::OpaqueAuth,
        pending: DirtyByFile,
        report: &mut FlushReport,
    ) -> DirtyByFile {
        let Some(bc) = &self.block_cache else {
            return BTreeMap::new();
        };
        let fw = self.cfg.transfer.flush_window.max(1);
        let bs = bc.config().block_size as u64;
        let mut requeue: DirtyByFile = BTreeMap::new();
        for ((fileid, generation), blocks) in pending {
            let h = Handle { fileid, generation };
            let key = FileKey { fileid, generation };
            let size = self.known_size(key);
            // Clip each block to the file's logical size up front.
            let mut jobs: Vec<(u64, Vec<u8>)> = Vec::new();
            for (block, mut data) in blocks {
                let off = block * bs;
                if let Some(s) = size {
                    if off >= s {
                        continue;
                    }
                    data.truncate(((s - off).min(bs)) as usize);
                }
                jobs.push((block, data));
            }
            // Dedup: a block whose digest upstream already durably
            // acknowledged under a verifier is a skip *candidate* — the
            // covering COMMIT below must still return that same verifier
            // (same server instance, data still stable) before the skip
            // counts. A restarted server rotates its verifier, failing
            // the validation and requeueing the bytes: no acknowledged
            // byte is ever dedup-skipped incorrectly.
            //
            // Every outgoing block is digested once here, *outside* the
            // state lock (digesting suspends; no suspend may run under a
            // lock) and charged at the codec's digest throughput — the
            // same CPU price the fetch path pays per blob. The digest
            // rides the slot so a durable ack records it without
            // rehashing.
            let (jobs, skips) = if self.cas.is_some() {
                let mut digested: Vec<(u64, Vec<u8>, Digest)> = Vec::with_capacity(jobs.len());
                for (block, data) in jobs {
                    env.sleep(self.codec.digest_time(data.len() as u64));
                    let d = digest::digest(&data);
                    digested.push((block, data, d));
                }
                let mut st = self.state.lock();
                let mut send: Vec<(u64, Vec<u8>, Option<Digest>)> = Vec::new();
                let mut sk: Vec<(u64, Vec<u8>, u64)> = Vec::new();
                for (block, data, d) in digested {
                    let tag = Tag {
                        fileid,
                        generation,
                        block,
                    };
                    match st.acked.get(&tag) {
                        Some((ad, verf)) if *ad == d => sk.push((block, data, *verf)),
                        _ => {
                            // About to issue an UNSTABLE WRITE for this
                            // block: the server may apply it even when
                            // the reply is lost, so the remembered ack
                            // (if any) dies now — a block later reverted
                            // to the old bytes must not skip over the
                            // server's unconfirmed intermediate content
                            // (A-B-A).
                            st.acked.remove(&tag);
                            send.push((block, data, Some(d)));
                        }
                    }
                }
                (send, sk)
            } else {
                (
                    jobs.into_iter().map(|(b, d)| (b, d, None)).collect(),
                    Vec::new(),
                )
            };
            if jobs.is_empty() && skips.is_empty() {
                continue;
            }
            let nfs = nfs3::Nfs3Client::new(self.upstream.with_cred(cred.clone()));
            // Each slot keeps its payload so a failure can requeue the
            // bytes instead of dropping them.
            let slots: Vec<WriteBackSlot> = if fw == 1 {
                jobs.into_iter()
                    .map(|(block, data, dg)| {
                        let verf = nfs
                            .write(env, h, block * bs, data.clone(), StableHow::Unstable)
                            .ok()
                            .map(|r| r.verf);
                        Some((block, data, dg, verf))
                    })
                    .collect()
            } else {
                // Bounded in-flight UNSTABLE WRITEs per file; the COMMIT
                // below only runs once all of them returned, so ordering
                // toward the server stays deterministic.
                let w = nfs.clone();
                run_windowed(
                    env,
                    "flush-wb",
                    fw,
                    jobs,
                    Some(&self.ttel),
                    move |env, (block, data, dg)| {
                        let verf = w
                            .write(env, h, block * bs, data.clone(), StableHow::Unstable)
                            .ok()
                            .map(|r| r.verf);
                        Some((block, data, dg, verf))
                    },
                )
            };
            let commit_verf = nfs.commit(env, h).ok();
            if commit_verf.is_none() {
                self.tel.recovered_errors.inc();
            }
            let mut mismatch = false;
            let dedup_on = self.cas.is_some();
            let mut newly_acked: Vec<(Tag, (Digest, u64))> = Vec::new();
            for slot in slots {
                match slot {
                    Some((block, data, dg, Some(verf))) if Some(verf) == commit_verf => {
                        report.blocks += 1;
                        report.block_bytes += data.len() as u64;
                        if let Some(d) = dg {
                            let tag = Tag {
                                fileid,
                                generation,
                                block,
                            };
                            newly_acked.push((tag, (d, verf)));
                        }
                    }
                    Some((block, data, _dg, wrote)) => {
                        if wrote.is_some() && commit_verf.is_some() {
                            mismatch = true;
                        } else {
                            self.tel.recovered_errors.inc();
                        }
                        requeue
                            .entry((fileid, generation))
                            .or_default()
                            .push((block, data));
                    }
                    None => {
                        // A write worker died with the payload: nothing
                        // left to requeue — surface it as failed.
                        report.failed_blocks += 1;
                        self.tel.recovered_errors.inc();
                    }
                }
            }
            // Validate skips: a skipped block is only "done" when the
            // COMMIT's verifier still matches the one its acknowledgement
            // was recorded under. Otherwise the server restarted (or the
            // COMMIT failed) — drop the stale entry and requeue the bytes.
            let mut stale: Vec<Tag> = Vec::new();
            for (block, data, acked_verf) in skips {
                if commit_verf == Some(acked_verf) {
                    self.dtel.acked_skips.inc();
                    self.dtel.bytes_avoided.add(data.len() as u64);
                } else {
                    stale.push(Tag {
                        fileid,
                        generation,
                        block,
                    });
                    requeue
                        .entry((fileid, generation))
                        .or_default()
                        .push((block, data));
                }
            }
            if mismatch {
                self.tel.verf_mismatches.inc();
            }
            if dedup_on && (!newly_acked.is_empty() || !stale.is_empty()) {
                let mut st = self.state.lock();
                for tag in stale {
                    st.acked.remove(&tag);
                }
                for (tag, entry) in newly_acked {
                    st.acked.insert(tag, entry);
                }
                // Safety valve: shed entries past the cap (an ack is an
                // optimization — dropping one costs a resend, nothing
                // more). First-key order keeps the shed deterministic.
                while st.acked.len() > ACKED_CAP {
                    let Some(&k) = st.acked.keys().next() else {
                        break;
                    };
                    st.acked.remove(&k);
                }
            }
        }
        requeue
    }

    /// Middleware-driven write-back: push every dirty block and dirty
    /// cached file upstream. The paper implements this as an O/S signal
    /// to the proxy process; here the scenario driver calls it directly
    /// (session-based consistency, §3.2.1).
    ///
    /// Degraded mode: write-backs that fail upstream (WAN outage, server
    /// restart) are retried in up to `transfer.flush_retry_rounds`
    /// rounds with doubling backoff; whatever survives the rounds parks
    /// on the retry queue (blocks) or stays dirty in the file cache
    /// (files) and is reported in `FlushReport::failed_*` — the next
    /// flush signal picks it all up again. No acknowledged byte is ever
    /// dropped.
    pub fn flush(&self, env: &Env, cred: &oncrpc::OpaqueAuth) -> FlushReport {
        let mut report = FlushReport::default();
        let fw = self.cfg.transfer.flush_window.max(1);

        // Dirty file-cache uploads overlap the block write-back: one
        // helper process drives the channel uploads while this process
        // drives the block path. With a serial window the uploads run
        // inline after the blocks, preserving the old RPC order.
        let mut file_helper = None;
        type SerialUploads = Option<Box<dyn FnOnce(&Env)>>;
        let mut serial_uploads: SerialUploads = None;
        let file_totals: Arc<Mutex<(u64, u64)>> = Arc::new(Mutex::new((0, 0)));
        let failed_uploads: FailedUploads = Arc::new(Mutex::new(Vec::new()));
        if let (Some(fc), Some(chan)) = (&self.file_cache, &self.chan) {
            let dirty_files = fc.dirty_files();
            if !dirty_files.is_empty() {
                let fc = fc.clone();
                let chan = chan.clone();
                let tuning = self.cfg.transfer;
                let ttel = self.ttel.clone();
                let dtel = self.dtel.clone();
                let dedup_on = self.cas.is_some();
                let cow_on = self.cfg.cow.enabled && dedup_on;
                let codec = self.codec;
                let recovered = self.tel.recovered_errors.clone();
                let totals = file_totals.clone();
                let failed = failed_uploads.clone();
                let upload_files = move |env: &Env| {
                    for key in dirty_files {
                        // Diverged-only flush: a dirty *reference* file
                        // uploads just its broken chunks (upstream still
                        // holds the golden base its recipe resolves
                        // against; the size-preserving chunk write keeps
                        // every untouched range). The whole-file path
                        // below stays the fallback — including for a
                        // reference re-marked dirty after a failed
                        // upload, whose chunk set is gone.
                        if cow_on {
                            if let Some(dc) = fc.take_dirty_chunks(env, key) {
                                env.sleep(codec.digest_time(dc.total));
                                if fc.synced_digest(key) == Some(dc.full_digest) {
                                    dtel.acked_skips.inc();
                                    let n: u64 =
                                        dc.ranges.iter().map(|(_, b)| b.len() as u64).sum();
                                    dtel.bytes_avoided.add(n);
                                    continue;
                                }
                                let h = Handle {
                                    fileid: key.fileid,
                                    generation: key.generation,
                                };
                                // Torn-upload guard, exactly as below.
                                fc.clear_synced(key);
                                match chan.upload_ranges(
                                    env,
                                    h,
                                    dc.total,
                                    &dc.ranges,
                                    true,
                                    tuning.channel_window,
                                    Some(&ttel),
                                ) {
                                    Ok(wire) => {
                                        let mut t = totals.lock();
                                        t.0 += 1;
                                        t.1 += wire;
                                        fc.set_synced(key, dc.full_digest);
                                    }
                                    Err(_) => {
                                        recovered.inc();
                                        // Hand the retry machinery the
                                        // full contents (the bounded
                                        // rounds resend whole files).
                                        fc.mark_dirty(key);
                                        if let Some(contents) = fc.take_dirty_contents(env, key) {
                                            failed.lock().push((
                                                key,
                                                contents,
                                                Some(dc.full_digest),
                                            ));
                                        }
                                    }
                                }
                                continue;
                            }
                        }
                        if let Some(contents) = fc.take_dirty_contents(env, key) {
                            // Dedup: a dirty file rewritten with the exact
                            // bytes upstream already holds (a VM session
                            // re-suspending identical memory state) skips
                            // the whole upload. Channel uploads are
                            // durable server writes, so the synced digest
                            // survives server restarts. The digest is
                            // charged at codec throughput — the same CPU
                            // the fetch path pays per verified blob.
                            let d = if dedup_on {
                                env.sleep(codec.digest_time(contents.len() as u64));
                                let d = digest::digest(&contents);
                                if fc.synced_digest(key) == Some(d) {
                                    dtel.acked_skips.inc();
                                    dtel.bytes_avoided.add(contents.len() as u64);
                                    continue;
                                }
                                Some(d)
                            } else {
                                None
                            };
                            let h = Handle {
                                fileid: key.fileid,
                                generation: key.generation,
                            };
                            // Torn-upload guard: from here until the
                            // upload reports success, upstream may hold
                            // any prefix of the new chunks — forget the
                            // synced digest so a rewrite back to the old
                            // bytes can never skip the repair upload.
                            fc.clear_synced(key);
                            match chan.upload_chunked(
                                env,
                                h,
                                &contents,
                                true,
                                tuning.chunk_bytes,
                                tuning.channel_window,
                                Some(&ttel),
                            ) {
                                Ok(wire) => {
                                    let mut t = totals.lock();
                                    t.0 += 1;
                                    t.1 += wire;
                                    if let Some(d) = d {
                                        fc.set_synced(key, d);
                                    }
                                }
                                Err(_) => {
                                    recovered.inc();
                                    failed.lock().push((key, contents, d));
                                }
                            }
                        }
                    }
                };
                if fw > 1 {
                    file_helper = Some(
                        env.spawn(format!("{}-flush-files", self.tel.inst), move |env| {
                            upload_files(&env)
                        }),
                    );
                } else {
                    // Serial mode: run inline after the block path, in
                    // the same order as the pre-engine code.
                    serial_uploads = Some(Box::new(upload_files));
                }
            }
        }

        // Block write-back: dirty blocks from the cache, plus everything
        // still parked on the retry queue from earlier failed evictions
        // or a previous degraded flush.
        let mut pending: DirtyByFile = BTreeMap::new();
        if let Some(bc) = &self.block_cache {
            let mut have: BTreeSet<Tag> = BTreeSet::new();
            for (tag, data) in bc.take_dirty(env) {
                have.insert(tag);
                pending
                    .entry((tag.fileid, tag.generation))
                    .or_default()
                    .push((tag.block, data));
            }
            let queued = { std::mem::take(&mut self.state.lock().wb_queue) };
            for (tag, data) in queued {
                self.tel.wb_drained.inc();
                // A fresher dirty copy of the same block wins.
                if have.contains(&tag) {
                    continue;
                }
                pending
                    .entry((tag.fileid, tag.generation))
                    .or_default()
                    .push((tag.block, data));
            }
            for blocks in pending.values_mut() {
                blocks.sort_unstable_by_key(|(b, _)| *b);
            }
        }
        let mut remaining = self.write_back_pass(env, cred, pending, &mut report);

        if let Some(upload) = serial_uploads {
            upload(env);
        }
        if let Some(j) = file_helper {
            j.join(env);
        }

        // Degraded-mode drain: bounded retry rounds with doubling
        // backoff, resending both failed blocks and failed file uploads
        // until they land or the rounds run out.
        let mut failed_files: Vec<(FileKey, Vec<u8>, Option<Digest>)> =
            std::mem::take(&mut *failed_uploads.lock());
        let base = self.cfg.transfer.flush_retry_backoff;
        for round in 0..self.cfg.transfer.flush_retry_rounds {
            if remaining.is_empty() && failed_files.is_empty() {
                break;
            }
            self.tel.flush_retry_rounds.inc();
            env.sleep(base * (1u64 << round.min(3)));
            remaining = self.write_back_pass(env, cred, remaining, &mut report);
            let mut still_failed = Vec::new();
            for (key, contents, d) in failed_files {
                let h = Handle {
                    fileid: key.fileid,
                    generation: key.generation,
                };
                // The synced digest was already cleared before the first
                // attempt and only a success below reinstates it, so a
                // torn retry leaves upstream marked unknown.
                let retried = self.chan.as_ref().map(|chan| {
                    chan.upload_chunked(
                        env,
                        h,
                        &contents,
                        true,
                        self.cfg.transfer.chunk_bytes,
                        self.cfg.transfer.channel_window,
                        Some(&self.ttel),
                    )
                });
                match retried {
                    Some(Ok(wire)) => {
                        report.files += 1;
                        report.file_wire_bytes += wire;
                        if let Some(d) = d {
                            if let Some(fc) = &self.file_cache {
                                fc.set_synced(key, d);
                            }
                        }
                    }
                    _ => {
                        self.tel.recovered_errors.inc();
                        still_failed.push((key, contents, d));
                    }
                }
            }
            failed_files = still_failed;
        }

        // Park the survivors for the next flush signal.
        if !remaining.is_empty() {
            let mut st = self.state.lock();
            for ((fileid, generation), blocks) in remaining {
                for (block, data) in blocks {
                    report.failed_blocks += 1;
                    report.failed_block_bytes += data.len() as u64;
                    park_wb_entry(
                        &mut st,
                        &self.tel.wb_queued,
                        &self.wb,
                        Tag {
                            fileid,
                            generation,
                            block,
                        },
                        data,
                    );
                }
            }
        }
        for (key, _contents, _d) in failed_files {
            report.failed_files += 1;
            // The contents are still resident in the file cache; re-mark
            // the file dirty so the next flush retries the upload. The
            // synced digest stays cleared: the failed attempts may have
            // left a torn copy upstream, so nothing short of a completed
            // upload may skip.
            if let Some(fc) = &self.file_cache {
                fc.mark_dirty(key);
            }
        }
        {
            let t = file_totals.lock();
            report.files += t.0;
            report.file_wire_bytes += t.1;
        }
        self.tel.blocks_written_back.add(report.blocks);
        // Wasted-prefetch reconciliation piggybacks on the flush signal.
        self.reclaim_wasted_prefetches();
        // Size overrides deliberately survive the flush: `known_size` is
        // consulted by later write-backs and GETATTR patching, and the
        // meta-data fallback still reports the pre-session file size.
        // Clearing here made a post-flush eviction truncate its payload
        // to the stale meta size, silently dropping appended bytes.
        report
    }

    // -- intra-region digest gossip -------------------------------------------

    /// Wire this shard to its region siblings: `my_id` is the id it
    /// signs gossip messages with, `peers` the sibling shards' LAN
    /// clients. No-op unless the proxy was built with
    /// `FleetTuning::gossip` (and dedup) on. Called once by middleware
    /// after all the region's channels exist.
    pub fn set_gossip_peers(&self, my_id: u32, peers: Vec<(u32, RpcClient)>) {
        if let Some(g) = &self.gossip {
            let mut p = g.peers.lock();
            p.my_id = my_id;
            p.peers = peers;
            p.next = 0;
            p.sent_cursor.clear();
        }
    }

    /// One anti-entropy round: push a bounded delta of our digest log to
    /// the next peer (round-robin) and merge the delta its reply
    /// carries. The push cursor advances only on success, so a round
    /// lost to the LAN is simply retransmitted next period — the log is
    /// append-only and deltas are idempotent set-unions, which is the
    /// whole convergence argument. Driven by a per-shard middleware
    /// process on [`FleetTuning::gossip_interval`].
    pub fn gossip_round(&self, env: &Env) {
        let Some(g) = &self.gossip else { return };
        let batch = self.cfg.fleet.gossip_batch.clamp(1, MAX_GOSSIP_DIGESTS);
        // Lock order: never hold the peer table and the proxy state at
        // once (the state lock is taken inside RPC handlers that a
        // concurrent sibling round may be driving into us right now).
        let (my_id, peer_id, client, sent) = {
            let mut p = g.peers.lock();
            if p.peers.is_empty() {
                return;
            }
            let idx = p.next % p.peers.len();
            p.next = idx + 1;
            let (pid, client) = p.peers[idx].clone();
            let sent = *p.sent_cursor.get(&pid).unwrap_or(&0);
            (p.my_id, pid, client, sent)
        };
        let (delta, end) = {
            let st = self.state.lock();
            let start = sent.min(st.gossip_log.len());
            let end = (start + batch).min(st.gossip_log.len());
            (st.gossip_log[start..end].to_vec(), end)
        };
        g.rounds.inc();
        let args = encode_gossip(my_id, &delta);
        let Ok(results) = client.call_dl(
            env,
            CHANNEL_PROGRAM,
            CHANNEL_V1,
            chanproc::GOSSIP_DIGESTS,
            &args,
        ) else {
            return;
        };
        let Some((sender, digests)) = decode_gossip(&results) else {
            return;
        };
        {
            let mut st = self.state.lock();
            let inv = st.peer_digests.entry(sender).or_default();
            let mut learned = 0u64;
            for d in digests {
                if inv.insert(d) {
                    learned += 1;
                }
            }
            g.digests_learned.add(learned);
        }
        g.peers.lock().sent_cursor.insert(peer_id, end);
    }

    /// Serve a sibling's push: merge the digests it advertises, reply
    /// with our own bounded delta (per-sender cursor, so successive
    /// pushes from the same peer page through our whole log).
    fn handle_gossip_digests(&self, xid: u32, args: &[u8]) -> RpcMessage {
        let Some(g) = &self.gossip else {
            return RpcMessage::accept_error(xid, AcceptStat::ProcUnavail);
        };
        let Some((sender, digests)) = decode_gossip(args) else {
            return RpcMessage::accept_error(xid, AcceptStat::GarbageArgs);
        };
        let batch = self.cfg.fleet.gossip_batch.clamp(1, MAX_GOSSIP_DIGESTS);
        let my_id = g.peers.lock().my_id;
        let delta = {
            let mut st = self.state.lock();
            let inv = st.peer_digests.entry(sender).or_default();
            let mut learned = 0u64;
            for d in digests {
                if inv.insert(d) {
                    learned += 1;
                }
            }
            g.digests_learned.add(learned);
            let start =
                (*st.gossip_reply_cursor.get(&sender).unwrap_or(&0)).min(st.gossip_log.len());
            let end = (start + batch).min(st.gossip_log.len());
            st.gossip_reply_cursor.insert(sender, end);
            st.gossip_log[start..end].to_vec()
        };
        RpcMessage::success(xid, encode_gossip(my_id, &delta))
    }

    /// Serve a sibling shard's blob fetch from the local digest-keyed
    /// reply cache — and *only* from it. A local miss fails the call
    /// rather than forwarding upstream: the requester owns the fallback,
    /// so two shards can never ping-pong or double-fetch a miss.
    fn handle_channel_blob_peer(&self, env: &Env, xid: u32, args: &[u8]) -> RpcMessage {
        let Some(g) = &self.gossip else {
            return RpcMessage::accept_error(xid, AcceptStat::ProcUnavail);
        };
        let want = {
            let mut dec = Decoder::new(args);
            match (
                Fh3::decode(&mut dec),
                dec.get_u64(),
                dec.get_u32(),
                dec.get_u64(),
                dec.get_u64(),
            ) {
                (Ok(_), Ok(_), Ok(_), Ok(d0), Ok(d1)) => Digest(d0, d1),
                _ => return RpcMessage::accept_error(xid, AcceptStat::GarbageArgs),
            }
        };
        let cached = { self.state.lock().chan_blob_replies.get(&want) };
        match cached {
            Some(results) => {
                env.sleep(self.cfg.per_op_cpu);
                g.peer_served.inc();
                RpcMessage::success(xid, results)
            }
            // Stale advertisement (we evicted it) or a speculative probe:
            // an error reply, never an upstream forward.
            None => RpcMessage::accept_error(xid, AcceptStat::SystemErr),
        }
    }

    /// Try to satisfy a blob miss from a sibling shard that gossip says
    /// holds it. Returns the verified reply bytes on success; on any
    /// failure the advertisement is dropped (it was stale) and the
    /// caller falls back to the normal upstream path.
    fn try_peer_fetch(&self, env: &Env, want: Digest, args: &xdr::Bytes) -> Option<xdr::Bytes> {
        let g = self.gossip.as_ref()?;
        let holder = {
            let st = self.state.lock();
            st.peer_digests
                .iter()
                .find(|(_, inv)| inv.contains(&want))
                .map(|(id, _)| *id)
        }?;
        let client = {
            let p = g.peers.lock();
            p.peers
                .iter()
                .find(|(id, _)| *id == holder)
                .map(|(_, c)| c.clone())
        }?;
        let reply = client.call_dl(
            env,
            CHANNEL_PROGRAM,
            CHANNEL_V1,
            chanproc::FETCH_BLOBS_PEER,
            args,
        );
        match reply {
            // Same guard as every other ingestion point: peer replies
            // are digest-verified before they may be cached or served.
            Ok(results) if self.verify_blob_reply(env, &results, want) => {
                g.peer_hits.inc();
                let mut dec = Decoder::new(&results);
                if let (Ok(_), Ok(chunk_len)) = (dec.get_u32(), dec.get_u64()) {
                    g.peer_bytes.add(chunk_len);
                }
                Some(results)
            }
            _ => {
                g.peer_misses.inc();
                let mut st = self.state.lock();
                if let Some(inv) = st.peer_digests.get_mut(&holder) {
                    inv.remove(&want);
                }
                None
            }
        }
    }

    /// Record a fresh digest-cache insertion in the gossip log (no-op
    /// with gossip off). Must run under the state lock, right where the
    /// insert happened.
    fn note_blob_cached(&self, st: &mut ProxyState, d: Digest) {
        if self.gossip.is_some() {
            st.gossip_log.push(d);
        }
    }

    // -- file channel passthrough with caching --------------------------------

    fn handle_channel(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        proc: u32,
        args: xdr::Bytes,
    ) -> RpcMessage {
        if proc == chanproc::FETCH_CHUNK {
            return self.handle_channel_chunk(env, xid, cred, args);
        }
        if proc == chanproc::FETCH_RECIPE {
            return self.handle_channel_recipe(env, xid, cred, args);
        }
        if proc == chanproc::FETCH_BLOBS {
            return self.handle_channel_blob(env, xid, cred, args);
        }
        if proc == chanproc::FETCH_BLOBS_BATCH && self.cfg.fleet.batch_fetch && self.cas.is_some() {
            return self.handle_channel_blob_envelope(env, xid, cred, args);
        }
        if proc == chanproc::GOSSIP_DIGESTS {
            return self.handle_gossip_digests(xid, &args);
        }
        if proc == chanproc::FETCH_BLOBS_PEER {
            return self.handle_channel_blob_peer(env, xid, &args);
        }
        if proc != chanproc::FETCH {
            return self.forward(env, xid, cred, CHANNEL_PROGRAM, CHANNEL_V1, proc, args);
        }
        let fh: Result<Fh3, _> = xdr::from_bytes(&args);
        let key = match &fh {
            Ok(f) => Some(key_of(f.0)),
            Err(_) => None,
        };
        // Second-level cache: replay a previously fetched compressed
        // stream from the local disk instead of re-crossing the WAN.
        if let Some(k) = key {
            let cached = { self.state.lock().chan_replies.get(&k).cloned() };
            if let Some(results) = cached {
                if let Some(fc) = &self.file_cache {
                    // Charge the local-disk read of the stored stream.
                    let _ = fc;
                }
                env.sleep(self.cfg.per_op_cpu);
                return RpcMessage::success(xid, results);
            }
        }
        let reply = self.forward(env, xid, cred, CHANNEL_PROGRAM, CHANNEL_V1, proc, args);
        if let (
            Some(k),
            RpcMessage::Reply {
                body:
                    ReplyBody::Accepted {
                        stat: AcceptStat::Success,
                        results,
                        ..
                    },
                ..
            },
        ) = (key, &reply)
        {
            self.state.lock().chan_replies.insert(k, results.clone());
        }
        reply
    }

    /// Second-level caching for the chunked channel: each compressed
    /// chunk reply is replayed from local state keyed by
    /// `(file, offset, count)`, so an intermediate proxy serves repeat
    /// chunked fetches without re-crossing the WAN.
    fn handle_channel_chunk(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: xdr::Bytes,
    ) -> RpcMessage {
        let key = {
            let mut dec = Decoder::new(&args);
            match (Fh3::decode(&mut dec), dec.get_u64(), dec.get_u32()) {
                (Ok(fh), Ok(off), Ok(count)) => Some((key_of(fh.0), off, count)),
                _ => None,
            }
        };
        if let Some(k) = key {
            let cached = { self.state.lock().chan_chunk_replies.get(&k).cloned() };
            if let Some(results) = cached {
                env.sleep(self.cfg.per_op_cpu);
                return RpcMessage::success(xid, results);
            }
        }
        let reply = self.forward(
            env,
            xid,
            cred,
            CHANNEL_PROGRAM,
            CHANNEL_V1,
            chanproc::FETCH_CHUNK,
            args,
        );
        if let (
            Some(k),
            RpcMessage::Reply {
                body:
                    ReplyBody::Accepted {
                        stat: AcceptStat::Success,
                        results,
                        ..
                    },
                ..
            },
        ) = (key, &reply)
        {
            self.state
                .lock()
                .chan_chunk_replies
                .insert(k, results.clone());
        }
        reply
    }

    /// Second-level caching for `FETCH_RECIPE` replies, keyed by
    /// (file, chunk size). Recipes are tiny but each one otherwise costs
    /// a WAN round trip per cloning.
    fn handle_channel_recipe(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: xdr::Bytes,
    ) -> RpcMessage {
        if self.cas.is_none() {
            return self.forward(
                env,
                xid,
                cred,
                CHANNEL_PROGRAM,
                CHANNEL_V1,
                chanproc::FETCH_RECIPE,
                args,
            );
        }
        let key = {
            let mut dec = Decoder::new(&args);
            match (Fh3::decode(&mut dec), dec.get_u32()) {
                (Ok(fh), Ok(cb)) => Some((key_of(fh.0), cb)),
                _ => None,
            }
        };
        if let Some(k) = key {
            let cached = { self.state.lock().chan_recipe_replies.get(&k).cloned() };
            if let Some(results) = cached {
                env.sleep(self.cfg.per_op_cpu);
                return RpcMessage::success(xid, results);
            }
        }
        let reply = self.forward(
            env,
            xid,
            cred,
            CHANNEL_PROGRAM,
            CHANNEL_V1,
            chanproc::FETCH_RECIPE,
            args,
        );
        if let (
            Some(k),
            RpcMessage::Reply {
                body:
                    ReplyBody::Accepted {
                        stat: AcceptStat::Success,
                        results,
                        ..
                    },
                ..
            },
        ) = (key, &reply)
        {
            let mut st = self.state.lock();
            // Safety valve: recipes are an optimization — on overflow
            // clear the map (HashMap victim picks would be
            // nondeterministic) and let it refill.
            if st.chan_recipe_replies.len() >= RECIPE_REPLY_CAP {
                st.chan_recipe_replies.clear();
            }
            st.chan_recipe_replies.insert(k, results.clone());
        }
        reply
    }

    /// Check that a successful `FETCH_BLOBS` reply's payload really
    /// hashes to `want` (reply wire format: u32 status, u64 chunk_len,
    /// bool compressed, opaque payload). Charges decompression and
    /// digest CPU — the price of guarding a digest-keyed shared cache
    /// against a range-serving origin.
    fn verify_blob_reply(&self, env: &Env, results: &[u8], want: Digest) -> bool {
        let mut dec = Decoder::new(results);
        if dec.get_u32() != Ok(0) {
            return false;
        }
        let (Ok(chunk_len), Ok(compressed), Ok(payload)) =
            (dec.get_u64(), dec.get_bool(), dec.get_opaque_var())
        else {
            return false;
        };
        let contents = if compressed {
            env.sleep(self.codec.decompress_time(chunk_len));
            match codec::decompress(&payload) {
                Ok(c) => c,
                Err(_) => return false,
            }
        } else {
            payload
        };
        if contents.len() as u64 != chunk_len {
            return false;
        }
        env.sleep(self.codec.digest_time(contents.len() as u64));
        digest::digest(&contents) == want
    }

    /// Second-level caching for `FETCH_BLOBS` replies, keyed by *content
    /// digest* rather than file handle: eight distinct images cloned
    /// through one LAN proxy share every common chunk, and concurrent
    /// fetches of the same digest — even for different files —
    /// single-flight on the content (the digest travels in the request
    /// precisely so intermediaries can do this).
    fn handle_channel_blob(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: xdr::Bytes,
    ) -> RpcMessage {
        if self.cas.is_none() {
            return self.forward(
                env,
                xid,
                cred,
                CHANNEL_PROGRAM,
                CHANNEL_V1,
                chanproc::FETCH_BLOBS,
                args,
            );
        }
        let want = {
            let mut dec = Decoder::new(&args);
            match (
                Fh3::decode(&mut dec),
                dec.get_u64(),
                dec.get_u32(),
                dec.get_u64(),
                dec.get_u64(),
            ) {
                (Ok(_), Ok(_), Ok(_), Ok(d0), Ok(d1)) => Some(Digest(d0, d1)),
                _ => None,
            }
        };
        let Some(want) = want else {
            return self.forward(
                env,
                xid,
                cred,
                CHANNEL_PROGRAM,
                CHANNEL_V1,
                chanproc::FETCH_BLOBS,
                args,
            );
        };
        if self.cfg.fleet.batch_fetch {
            return self.handle_channel_blob_batched(env, xid, cred, want, args);
        }
        // Bounded single-flight per digest (same discipline as the
        // file-fetch guard in `handle_read`): one upstream fetch per
        // distinct chunk no matter how many clonings want it at once.
        const MAX_BLOB_ATTEMPTS: u32 = 3;
        let mut attempts = 0u32;
        loop {
            let cached = { self.state.lock().chan_blob_replies.get(&want) };
            if let Some(results) = cached {
                env.sleep(self.cfg.per_op_cpu);
                // Served from content-addressed local state: the chunk's
                // logical bytes never re-crossed the upstream link.
                let mut dec = Decoder::new(&results);
                if let (Ok(_), Ok(chunk_len)) = (dec.get_u32(), dec.get_u64()) {
                    self.dtel.recipe_hits.inc();
                    self.dtel.bytes_avoided.add(chunk_len);
                }
                return RpcMessage::success(xid, results);
            }
            attempts += 1;
            if attempts > MAX_BLOB_ATTEMPTS {
                break;
            }
            let waiter = {
                let mut st = self.state.lock();
                match st.inflight_blob.get(&want) {
                    Some(sig) => Some(sig.clone()),
                    None => {
                        st.inflight_blob
                            .insert(want, simnet::Signal::new(env.handle()));
                        None
                    }
                }
            };
            match waiter {
                Some(sig) => {
                    sig.wait(env);
                    // Re-check the digest cache (the fetch may have
                    // failed; then we claim the retry slot).
                    continue;
                }
                None => {
                    // Gossip: a sibling shard that already holds this
                    // chunk serves it over the LAN; only a peer miss
                    // rides the WAN.
                    if let Some(results) = self.try_peer_fetch(env, want, &args) {
                        {
                            let mut st = self.state.lock();
                            st.chan_blob_replies.insert(want, results.clone());
                            self.note_blob_cached(&mut st, want);
                        }
                        let sig = { self.state.lock().inflight_blob.remove(&want) };
                        if let Some(s) = sig {
                            s.set();
                        }
                        return RpcMessage::success(xid, results);
                    }
                    let reply = self.forward(
                        env,
                        xid,
                        cred,
                        CHANNEL_PROGRAM,
                        CHANNEL_V1,
                        chanproc::FETCH_BLOBS,
                        args.clone(),
                    );
                    if let RpcMessage::Reply {
                        body:
                            ReplyBody::Accepted {
                                stat: AcceptStat::Success,
                                results,
                                ..
                            },
                        ..
                    } = &reply
                    {
                        // Only a channel-level Ok is content — caching a
                        // NoEnt/Stale under a digest would replay the
                        // error to every other file sharing the chunk —
                        // and only a payload that actually hashes to the
                        // requested digest may be keyed by it: the
                        // origin serves by byte range and ignores the
                        // digest, so a stale recipe would otherwise
                        // poison this shared cache permanently for every
                        // file sharing the chunk. Decompression and
                        // digesting are charged at codec throughput,
                        // like the client-side verification in
                        // `fetch_blob`.
                        if self.verify_blob_reply(env, results, want) {
                            let mut st = self.state.lock();
                            st.chan_blob_replies.insert(want, results.clone());
                            self.note_blob_cached(&mut st, want);
                        }
                    }
                    let sig = { self.state.lock().inflight_blob.remove(&want) };
                    if let Some(s) = sig {
                        s.set();
                    }
                    return reply;
                }
            }
        }
        self.forward(
            env,
            xid,
            cred,
            CHANNEL_PROGRAM,
            CHANNEL_V1,
            chanproc::FETCH_BLOBS,
            args,
        )
    }

    /// Fleet-batched variant of the blob miss path: concurrent misses
    /// for *distinct* digests coalesce into one `FETCH_BLOBS_BATCH`
    /// upstream envelope. The per-digest single-flight is preserved
    /// (one signal per digest in `inflight_blob`); on top of it a single
    /// *batch leader* lingers [`FleetTuning::batch_window`] of virtual
    /// time so the burst can gather, then drains the pending misses in
    /// rounds of at most [`FleetTuning::max_batch`] sub-calls — one WAN
    /// round-trip (and one tunnel per-message cost) per round instead of
    /// one per chunk.
    fn handle_channel_blob_batched(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        want: Digest,
        args: xdr::Bytes,
    ) -> RpcMessage {
        enum Role {
            Wait(simnet::Signal),
            Leader,
        }
        const MAX_BLOB_ATTEMPTS: u32 = 3;
        let mut attempts = 0u32;
        loop {
            let (cached, count_hit) = {
                let mut st = self.state.lock();
                match st.chan_blob_replies.get(&want) {
                    Some(r) => (Some(r), !st.batch_uncounted.remove(&want)),
                    None => (None, false),
                }
            };
            if let Some(results) = cached {
                env.sleep(self.cfg.per_op_cpu);
                if count_hit {
                    // Served from content-addressed local state: these
                    // logical bytes never re-crossed the upstream link.
                    // (The first serve after a batch round is the
                    // original requester — its bytes DID cross once, so
                    // it is excluded above.)
                    let mut dec = Decoder::new(&results);
                    if let (Ok(_), Ok(chunk_len)) = (dec.get_u32(), dec.get_u64()) {
                        self.dtel.recipe_hits.inc();
                        self.dtel.bytes_avoided.add(chunk_len);
                    }
                }
                return RpcMessage::success(xid, results);
            }
            attempts += 1;
            if attempts > MAX_BLOB_ATTEMPTS {
                break;
            }
            let role = {
                let mut st = self.state.lock();
                match st.inflight_blob.get(&want) {
                    Some(sig) => Role::Wait(sig.clone()),
                    None => {
                        let sig = simnet::Signal::new(env.handle());
                        st.inflight_blob.insert(want, sig.clone());
                        st.batch_pending.push((want, args.clone()));
                        if st.batch_open {
                            // A leader is already collecting: park on
                            // our own signal and ride its envelope.
                            Role::Wait(sig)
                        } else {
                            st.batch_open = true;
                            Role::Leader
                        }
                    }
                }
            };
            match role {
                Role::Wait(sig) => {
                    sig.wait(env);
                    // Re-check the digest cache (the batched fetch may
                    // have failed for this item; then we claim the
                    // retry slot).
                    continue;
                }
                Role::Leader => {
                    if self.cfg.fleet.batch_window > SimDuration::ZERO {
                        env.sleep(self.cfg.fleet.batch_window);
                    }
                    self.drain_blob_batches(env, cred);
                    continue;
                }
            }
        }
        self.forward(
            env,
            xid,
            cred,
            CHANNEL_PROGRAM,
            CHANNEL_V1,
            chanproc::FETCH_BLOBS,
            args,
        )
    }

    /// One leader's drain: take up to `max_batch` parked blob misses,
    /// fetch them in one upstream `FETCH_BLOBS_BATCH` envelope,
    /// digest-verify and cache each successful item, then wake that
    /// digest's waiters. Leadership (`batch_open`) is released the
    /// moment the pending queue is emptied — *before* the envelope goes
    /// on the wire — so the next miss elects a new leader and starts its
    /// own collection window while this envelope is still in flight.
    /// Coalescing must not cost the shard its upstream parallelism: a
    /// leader that kept collecting until its RPC returned would funnel
    /// every miss through one serial round-trip pipeline, and under
    /// bursty load that *adds* tail latency instead of removing it.
    /// Only when a round leaves items behind (pending > `max_batch`,
    /// i.e. genuine backlog) does the same leader loop for another
    /// round, so no parked waiter is ever left without a leader.
    fn drain_blob_batches(&self, env: &Env, cred: &oncrpc::OpaqueAuth) {
        let max_batch = self.cfg.fleet.max_batch.clamp(1, oncrpc::MAX_BATCH_ITEMS);
        loop {
            let (round, released): (Vec<(Digest, xdr::Bytes)>, bool) = {
                let mut st = self.state.lock();
                if st.batch_pending.is_empty() {
                    st.batch_open = false;
                    return;
                }
                let take = st.batch_pending.len().min(max_batch);
                let round: Vec<(Digest, xdr::Bytes)> = st.batch_pending.drain(..take).collect();
                let released = st.batch_pending.is_empty();
                if released {
                    st.batch_open = false;
                }
                (round, released)
            };
            self.send_blob_round(env, cred, &round);
            if released {
                return;
            }
        }
    }

    /// One upstream `FETCH_BLOBS_BATCH` round: envelope the parked
    /// misses, digest-verify and cache each successful item, then wake
    /// that digest's waiters. On an envelope-level failure every waiter
    /// re-claims and retries (falling back to single calls after the
    /// bounded attempts, like the unbatched path).
    fn send_blob_round(
        &self,
        env: &Env,
        cred: &oncrpc::OpaqueAuth,
        round: &[(Digest, xdr::Bytes)],
    ) {
        if self.gossip.is_none() {
            return self.send_blob_round_upstream(env, cred, round);
        }
        // Gossip pass: serve what a sibling shard already holds over the
        // LAN, and send only the genuinely region-cold remainder in the
        // upstream envelope. Waiters on a peer-served digest wake here,
        // exactly as they would after the envelope round.
        let mut remaining: Vec<(Digest, xdr::Bytes)> = Vec::with_capacity(round.len());
        for (want, args) in round {
            match self.try_peer_fetch(env, *want, args) {
                Some(results) => {
                    {
                        let mut st = self.state.lock();
                        st.chan_blob_replies.insert(*want, results);
                        self.note_blob_cached(&mut st, *want);
                    }
                    let sig = { self.state.lock().inflight_blob.remove(want) };
                    if let Some(s) = sig {
                        s.set();
                    }
                }
                None => remaining.push((*want, args.clone())),
            }
        }
        if !remaining.is_empty() {
            self.send_blob_round_upstream(env, cred, &remaining);
        }
    }

    /// The WAN half of a blob round: one `FETCH_BLOBS_BATCH` envelope
    /// upstream for every item still unresolved after the peer pass.
    fn send_blob_round_upstream(
        &self,
        env: &Env,
        cred: &oncrpc::OpaqueAuth,
        round: &[(Digest, xdr::Bytes)],
    ) {
        let items: Vec<oncrpc::BatchItem> = round
            .iter()
            .map(|(_, args)| oncrpc::BatchItem {
                proc: chanproc::FETCH_BLOBS,
                args: args.to_vec(),
            })
            .collect();
        self.tel.forwarded.inc();
        if let Some(c) = &self.fleet_batches {
            c.inc();
        }
        if let Some(c) = &self.fleet_batched_items {
            c.add(items.len() as u64);
        }
        let client = self.upstream.with_cred(cred.clone());
        let replies = client.call_batch(
            env,
            CHANNEL_PROGRAM,
            CHANNEL_V1,
            chanproc::FETCH_BLOBS_BATCH,
            &items,
        );
        let per_item: Vec<Option<Vec<u8>>> = match replies {
            Ok(rs) if rs.len() == round.len() => rs
                .into_iter()
                .map(|r| if r.ok() { Some(r.result) } else { None })
                .collect(),
            _ => vec![None; round.len()],
        };
        for ((want, _), result) in round.iter().zip(per_item) {
            if let Some(result) = result {
                // Same guard as the single-call path: only a
                // channel-level Ok whose payload actually hashes to
                // the requested digest may be keyed by it.
                let results: xdr::Bytes = result.into();
                if self.verify_blob_reply(env, &results, *want) {
                    let mut st = self.state.lock();
                    st.chan_blob_replies.insert(*want, results);
                    st.batch_uncounted.insert(*want);
                    self.note_blob_cached(&mut st, *want);
                }
            }
            let sig = { self.state.lock().inflight_blob.remove(want) };
            if let Some(s) = sig {
                s.set();
            }
        }
    }

    /// A downstream `FETCH_BLOBS_BATCH` envelope — a fleet client proxy
    /// fetching a cold file in multi-digest rounds. Every not-cached,
    /// not-already-in-flight digest in the envelope is parked in the
    /// batch queue under one lock acquisition, so the whole envelope
    /// coalesces into at most one upstream round (merged with whatever
    /// the other hosts parked meanwhile); then each item resolves
    /// through the same per-digest path a single `FETCH_BLOBS` takes —
    /// digest-cache hit, waiter on the in-flight signal, or bounded
    /// retry. A per-item failure surfaces in its slot without poisoning
    /// its neighbours, the same contract the origin's envelope handler
    /// keeps.
    fn handle_channel_blob_envelope(
        &self,
        env: &Env,
        xid: u32,
        cred: &oncrpc::OpaqueAuth,
        args: xdr::Bytes,
    ) -> RpcMessage {
        let Ok(items) = oncrpc::batch::decode_batch(&args) else {
            return RpcMessage::accept_error(xid, AcceptStat::GarbageArgs);
        };
        let digest_of = |args: &[u8]| -> Option<Digest> {
            let mut dec = Decoder::new(args);
            match (
                Fh3::decode(&mut dec),
                dec.get_u64(),
                dec.get_u32(),
                dec.get_u64(),
                dec.get_u64(),
            ) {
                (Ok(_), Ok(_), Ok(_), Ok(d0), Ok(d1)) => Some(Digest(d0, d1)),
                _ => None,
            }
        };
        // Phase 1: park every fresh miss under one lock acquisition,
        // then drain our own rounds right away. Unlike the single-blob
        // path there is no leader election and no collect window: the
        // downstream envelope *is* an already-collected batch, and every
        // concurrent envelope handler draining its own round keeps
        // several upstream envelopes in flight at once — a single
        // looping leader would serialize the whole site's cold misses
        // through one round-trip pipeline.
        let mut parked = 0usize;
        {
            let mut st = self.state.lock();
            for item in &items {
                if item.proc != chanproc::FETCH_BLOBS {
                    continue;
                }
                let Some(want) = digest_of(&item.args) else {
                    continue;
                };
                if st.chan_blob_replies.get(&want).is_some() || st.inflight_blob.contains_key(&want)
                {
                    continue;
                }
                st.inflight_blob
                    .insert(want, simnet::Signal::new(env.handle()));
                st.batch_pending.push((want, item.args.clone().into()));
                parked += 1;
            }
        }
        // Drain until we have covered at least as many items as we
        // parked (another handler may have taken ours — then its round
        // covers them and our signals still fire). A round can also pick
        // up loose single-blob misses parked by a collecting leader;
        // that leader finding the queue already empty is fine.
        let max_batch = self.cfg.fleet.max_batch.clamp(1, oncrpc::MAX_BATCH_ITEMS);
        let mut taken = 0usize;
        while taken < parked {
            let round: Vec<(Digest, xdr::Bytes)> = {
                let mut st = self.state.lock();
                let take = st.batch_pending.len().min(max_batch);
                st.batch_pending.drain(..take).collect()
            };
            if round.is_empty() {
                break;
            }
            taken += round.len();
            self.send_blob_round(env, cred, &round);
        }
        // Phase 2: resolve each item through its ordinary per-item
        // handler (our own misses are now cached or in flight).
        let replies: Vec<oncrpc::BatchReplyItem> = items
            .iter()
            .map(|item| {
                let iargs: xdr::Bytes = item.args.clone().into();
                let msg = match item.proc {
                    chanproc::FETCH_BLOBS => self.handle_channel_blob(env, xid, cred, iargs),
                    chanproc::FETCH_CHUNK => self.handle_channel_chunk(env, xid, cred, iargs),
                    chanproc::FETCH_RECIPE => self.handle_channel_recipe(env, xid, cred, iargs),
                    _ => self.forward(
                        env,
                        xid,
                        cred,
                        CHANNEL_PROGRAM,
                        CHANNEL_V1,
                        item.proc,
                        iargs,
                    ),
                };
                match msg {
                    RpcMessage::Reply {
                        body:
                            ReplyBody::Accepted {
                                stat: AcceptStat::Success,
                                results,
                                ..
                            },
                        ..
                    } => oncrpc::BatchReplyItem {
                        stat: oncrpc::BATCH_OK,
                        result: results.to_vec(),
                    },
                    _ => oncrpc::BatchReplyItem {
                        stat: oncrpc::BATCH_ITEM_FAILED,
                        result: Vec::new(),
                    },
                }
            })
            .collect();
        let body: xdr::Bytes = oncrpc::batch::encode_batch_reply(&replies).into();
        RpcMessage::success(xid, body)
    }
}

/// Parse READ3 success results into (data, eof).
fn parse_read_results(results: &[u8]) -> Option<(Vec<u8>, bool)> {
    let mut dec = Decoder::new(results);
    if dec.get_u32().ok()? != Status::Ok.as_u32() {
        return None;
    }
    let _attr = PostOpAttr::decode(&mut dec).ok()?;
    let _count = dec.get_u32().ok()?;
    let eof = dec.get_bool().ok()?;
    let data = dec.get_opaque_var().ok()?;
    Some((data, eof))
}

impl RpcHandler for Proxy {
    fn handle(&self, env: &Env, request: &xdr::Bytes) -> xdr::Bytes {
        let msg = match RpcMessage::decode_shared(request) {
            Ok(m) => m,
            Err(_) => {
                return xdr::to_bytes(&RpcMessage::accept_error(0, AcceptStat::GarbageArgs)).into()
            }
        };
        let (header, args) = match msg {
            RpcMessage::Call { header, args } => (header, args),
            RpcMessage::Reply { xid, .. } => {
                return xdr::to_bytes(&RpcMessage::accept_error(xid, AcceptStat::GarbageArgs))
                    .into()
            }
        };
        let CallHeader {
            xid,
            prog,
            vers,
            proc,
            cred,
            ..
        } = header;
        self.tel.calls.inc();
        if prog == NFS_PROGRAM {
            self.tel.nfs_proc_counter(proc).inc();
        }
        env.sleep(self.cfg.per_op_cpu);

        // Server-side proxies authenticate middleware sessions and map
        // them onto local shadow accounts.
        let cred = match &self.identity {
            Some(mapper) => match mapper.map(&cred, env.now().as_nanos()) {
                Ok(mapped) => mapped,
                Err(ProgramError::AuthError(code)) => {
                    return xdr::to_bytes(&RpcMessage::denied(xid, RejectStat::AuthError(code)))
                        .into()
                }
                Err(_) => {
                    return xdr::to_bytes(&RpcMessage::accept_error(xid, AcceptStat::SystemErr))
                        .into()
                }
            },
            None => cred,
        };

        let reply = if prog == CHANNEL_PROGRAM {
            self.handle_channel(env, xid, &cred, proc, args)
        } else if prog != NFS_PROGRAM || vers != NFS_V3 {
            // MOUNT and anything else passes straight through.
            self.forward(env, xid, &cred, prog, vers, proc, args)
        } else {
            match proc {
                proc3::READ => self.handle_read(env, xid, &cred, args),
                proc3::WRITE => self.handle_write(env, xid, &cred, args),
                proc3::GETATTR => self.handle_getattr(env, xid, &cred, args),
                proc3::COMMIT => self.handle_commit(env, xid, &cred, args),
                proc3::LOOKUP => self.handle_lookup(env, xid, &cred, args),
                _ => self.forward(env, xid, &cred, prog, vers, proc, args),
            }
        };
        xdr::to_bytes(&reply).into()
    }
}
