//! Per-proxy content-addressed store (CAS).
//!
//! Generalizes the zero-block map into "serve locally anything whose
//! bytes the near side already has": every block-cache frame and
//! file-cache chunk a proxy holds is indexed by its [`crate::digest`]
//! digest, and the file channel's recipe path
//! ([`crate::channel::ChannelClient::fetch_dedup`]) consults the index
//! before asking the WAN for a payload.
//!
//! ## Cost model
//!
//! Dedup saves *WAN transfer and origin work*, never local work: a
//! recipe hit means a chunk's payload does not cross the upstream link,
//! but the assembled file is still written to the local cache disk in
//! full ([`crate::file_cache::FileCache::install`] charges every byte —
//! CAS entries live in host memory, so a hit is no guarantee the
//! backing bytes are still on the cache disk) and every digest the
//! dedup paths compute is charged at the codec model's digest
//! throughput, on flush (dirty blocks and files) exactly as on fetch
//! (blob verification). Only the index operations themselves —
//! insert/lookup, O(1) map work dwarfed by the proxy's per-op CPU
//! charge — are free. Host-side, entries are kept codec-compressed to
//! bound real memory.
//!
//! Capacity is bounded (logical bytes indexed); eviction is
//! least-recently-touched, deterministic via a monotonic touch stamp.

use parking_lot::Mutex;
use simnet::{Counter, Telemetry};
use std::collections::BTreeMap;

use crate::codec;
use crate::digest::{digest, Digest};

/// Knobs for content-addressed redundancy elimination, carried by
/// [`crate::ProxyConfig`]. [`DedupTuning::off`] disables every dedup
/// path, reproducing pre-CAS behaviour byte-for-byte and
/// tick-for-tick (the equivalence tests and the `dedup_ablation` CI
/// baseline hold this to account).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupTuning {
    /// Master switch. When false the proxy never consults recipes,
    /// never skips acked writes, and never indexes frames.
    pub enabled: bool,
    /// CAS capacity in logical (uncompressed) bytes indexed.
    pub cas_bytes: u64,
}

impl Default for DedupTuning {
    fn default() -> Self {
        DedupTuning {
            enabled: true,
            // Comfortably holds the distinct chunks of a Fig 6 clone
            // fleet (8 × 320 MB memory states sharing a base) while
            // staying below the 8 GB proxy cache it indexes into.
            cas_bytes: 4 << 30,
        }
    }
}

impl DedupTuning {
    /// Dedup fully disabled: the pre-CAS data paths, byte-for-byte.
    pub fn off() -> Self {
        DedupTuning {
            enabled: false,
            cas_bytes: 0,
        }
    }
}

/// Telemetry for the dedup subsystem, registered per proxy under
/// `gvfs/<inst>.dedup.*`.
#[derive(Clone)]
pub struct DedupTel {
    /// Payload bytes that never crossed the upstream link because the
    /// receiver already held them (recipe hits + acked-write skips).
    pub bytes_avoided: Counter,
    /// Recipe records satisfied from the local CAS.
    pub recipe_hits: Counter,
    /// Payloads actually fetched via `FETCH_BLOBS`.
    pub blob_fetches: Counter,
    /// Upstream writes skipped because the acknowledged content already
    /// matches (flush block skips + unchanged file-upload skips).
    pub acked_skips: Counter,
}

impl DedupTel {
    /// Register under `gvfs/<inst>.dedup.*`.
    pub fn register(registry: &Telemetry, inst: &str) -> Self {
        DedupTel {
            bytes_avoided: registry.counter("gvfs", format!("{inst}.dedup.bytes_avoided")),
            recipe_hits: registry.counter("gvfs", format!("{inst}.dedup.recipe_hits")),
            blob_fetches: registry.counter("gvfs", format!("{inst}.dedup.blob_fetches")),
            acked_skips: registry.counter("gvfs", format!("{inst}.dedup.acked_skips")),
        }
    }

    /// An unregistered instance (tests, or callers without a registry).
    pub fn unregistered() -> Self {
        DedupTel {
            bytes_avoided: Counter::new(),
            recipe_hits: Counter::new(),
            blob_fetches: Counter::new(),
            acked_skips: Counter::new(),
        }
    }
}

struct Entry {
    /// Host-side codec-compressed payload (memory economy only; the
    /// simulated bytes live on the cache disk).
    packed: Vec<u8>,
    /// Logical (uncompressed) length.
    len: u32,
    /// Last-touch stamp (monotonic).
    stamp: u64,
}

struct Inner {
    map: BTreeMap<Digest, Entry>,
    /// stamp -> digest, for deterministic LRU eviction. Stamps are
    /// unique, so this is a total order of recency.
    lru: BTreeMap<u64, Digest>,
    /// Sum of logical lengths of resident entries.
    bytes: u64,
    stamp: u64,
}

/// The content-addressed store. Keys are always computed from the stored
/// bytes inside [`ContentStore::insert`], so the index can never claim a
/// digest it does not hold the preimage of.
pub struct ContentStore {
    inner: Mutex<Inner>,
    capacity: u64,
}

impl ContentStore {
    /// A store bounded at `capacity` logical bytes.
    pub fn new(capacity: u64) -> Self {
        ContentStore {
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                lru: BTreeMap::new(),
                bytes: 0,
                stamp: 0,
            }),
            capacity,
        }
    }

    /// Index `bytes`, returning their digest. Re-inserting existing
    /// content only refreshes its recency. Oversized payloads (larger
    /// than the whole store) are digested but not retained.
    pub fn insert(&self, bytes: &[u8]) -> Digest {
        let d = digest(bytes);
        if bytes.len() as u64 > self.capacity {
            return d;
        }
        let mut inner = self.inner.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        if let Some(e) = inner.map.get_mut(&d) {
            let old = e.stamp;
            e.stamp = stamp;
            inner.lru.remove(&old);
            inner.lru.insert(stamp, d);
            return d;
        }
        let packed = codec::compress(bytes);
        inner.bytes += bytes.len() as u64;
        inner.map.insert(
            d,
            Entry {
                packed,
                len: bytes.len() as u32,
                stamp,
            },
        );
        inner.lru.insert(stamp, d);
        // Evict least-recently-touched entries until back under capacity.
        while inner.bytes > self.capacity {
            let Some((&old_stamp, &victim)) = inner.lru.iter().next() else {
                break;
            };
            inner.lru.remove(&old_stamp);
            if let Some(e) = inner.map.remove(&victim) {
                debug_assert!(inner.bytes >= e.len as u64, "CAS byte accounting drifted");
                inner.bytes -= e.len as u64;
            }
        }
        d
    }

    /// Whether `d`'s preimage is resident (does not refresh recency).
    pub fn contains(&self, d: &Digest) -> bool {
        self.inner.lock().map.contains_key(d)
    }

    /// Fetch the preimage of `d`, refreshing its recency. Host-side
    /// only; see the module docs for why no simulation time is charged.
    pub fn get(&self, d: &Digest) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        let e = inner.map.get_mut(d)?;
        let old = e.stamp;
        e.stamp = stamp;
        let bytes = codec::decompress(&e.packed).ok()?;
        inner.lru.remove(&old);
        inner.lru.insert(stamp, *d);
        Some(bytes)
    }

    /// Logical bytes currently indexed.
    pub fn logical_bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Number of distinct digests indexed.
    pub fn entries(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trips_and_dedupes() {
        let cas = ContentStore::new(1 << 20);
        let a = vec![7u8; 4096];
        let d = cas.insert(&a);
        assert_eq!(d, digest(&a));
        assert!(cas.contains(&d));
        assert_eq!(cas.get(&d).unwrap(), a);
        // Re-insert: no double accounting.
        cas.insert(&a);
        assert_eq!(cas.entries(), 1);
        assert_eq!(cas.logical_bytes(), 4096);
    }

    #[test]
    fn capacity_evicts_least_recently_touched() {
        let cas = ContentStore::new(10_000);
        let a: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..4096u32).map(|i| (i + 1) as u8).collect();
        let c: Vec<u8> = (0..4096u32).map(|i| (i + 2) as u8).collect();
        let da = cas.insert(&a);
        let db = cas.insert(&b);
        // Touch `a` so `b` is the LRU victim.
        assert!(cas.get(&da).is_some());
        let dc = cas.insert(&c);
        assert!(cas.contains(&da), "recently touched entry evicted");
        assert!(!cas.contains(&db), "LRU entry not evicted");
        assert!(cas.contains(&dc));
        assert_eq!(cas.logical_bytes(), 8192);
    }

    #[test]
    fn oversized_payloads_are_not_retained() {
        let cas = ContentStore::new(100);
        let big = vec![1u8; 1000];
        let d = cas.insert(&big);
        assert_eq!(d, digest(&big));
        assert!(!cas.contains(&d));
        assert_eq!(cas.logical_bytes(), 0);
    }

    #[test]
    fn tuning_off_disables() {
        let t = DedupTuning::off();
        assert!(!t.enabled);
        assert!(DedupTuning::default().enabled);
    }
}
