//! Per-proxy content-addressed store (CAS).
//!
//! Generalizes the zero-block map into "serve locally anything whose
//! bytes the near side already has": every block-cache frame and
//! file-cache chunk a proxy holds is indexed by its [`crate::digest`]
//! digest, and the file channel's recipe path
//! ([`crate::channel::ChannelClient::fetch_dedup`]) consults the index
//! before asking the WAN for a payload.
//!
//! ## Cost model
//!
//! Dedup saves *WAN transfer and origin work*, never local work: a
//! recipe hit means a chunk's payload does not cross the upstream link,
//! but the assembled file is still written to the local cache disk in
//! full ([`crate::file_cache::FileCache::install`] charges every byte —
//! an *unpinned* CAS entry lives in host memory only, so a hit is no
//! guarantee the backing bytes are still on the cache disk; a *pinned*
//! entry, by contrast, is a residency guarantee taken by a
//! reference-backed file-cache entry, which is what lets the
//! copy-on-write install path charge zero disk for shared chunks —
//! DESIGN.md §5.9) and every digest the
//! dedup paths compute is charged at the codec model's digest
//! throughput, on flush (dirty blocks and files) exactly as on fetch
//! (blob verification). Only the index operations themselves —
//! insert/lookup, O(1) map work dwarfed by the proxy's per-op CPU
//! charge — are free. Host-side, entries are kept codec-compressed to
//! bound real memory.
//!
//! Capacity is bounded (logical bytes indexed); eviction is
//! least-recently-touched, deterministic via a monotonic touch stamp.

use parking_lot::Mutex;
use simnet::{Counter, Telemetry};
use std::collections::BTreeMap;

use crate::codec;
use crate::digest::{digest, Digest};

/// Knobs for content-addressed redundancy elimination, carried by
/// [`crate::ProxyConfig`]. [`DedupTuning::off`] disables every dedup
/// path, reproducing pre-CAS behaviour byte-for-byte and
/// tick-for-tick (the equivalence tests and the `dedup_ablation` CI
/// baseline hold this to account).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupTuning {
    /// Master switch. When false the proxy never consults recipes,
    /// never skips acked writes, and never indexes frames.
    pub enabled: bool,
    /// CAS capacity in logical (uncompressed) bytes indexed.
    pub cas_bytes: u64,
}

impl Default for DedupTuning {
    fn default() -> Self {
        DedupTuning {
            enabled: true,
            // Comfortably holds the distinct chunks of a Fig 6 clone
            // fleet (8 × 320 MB memory states sharing a base) while
            // staying below the 8 GB proxy cache it indexes into.
            cas_bytes: 4 << 30,
        }
    }
}

impl DedupTuning {
    /// Dedup fully disabled: the pre-CAS data paths, byte-for-byte.
    pub fn off() -> Self {
        DedupTuning {
            enabled: false,
            cas_bytes: 0,
        }
    }
}

/// Telemetry for the dedup subsystem, registered per proxy under
/// `gvfs/<inst>.dedup.*`.
#[derive(Clone)]
pub struct DedupTel {
    /// Payload bytes that never crossed the upstream link because the
    /// receiver already held them (recipe hits + acked-write skips).
    pub bytes_avoided: Counter,
    /// Recipe records satisfied from the local CAS.
    pub recipe_hits: Counter,
    /// Payloads actually fetched via `FETCH_BLOBS`.
    pub blob_fetches: Counter,
    /// Upstream writes skipped because the acknowledged content already
    /// matches (flush block skips + unchanged file-upload skips).
    pub acked_skips: Counter,
}

impl DedupTel {
    /// Register under `gvfs/<inst>.dedup.*`.
    pub fn register(registry: &Telemetry, inst: &str) -> Self {
        DedupTel {
            bytes_avoided: registry.counter("gvfs", format!("{inst}.dedup.bytes_avoided")),
            recipe_hits: registry.counter("gvfs", format!("{inst}.dedup.recipe_hits")),
            blob_fetches: registry.counter("gvfs", format!("{inst}.dedup.blob_fetches")),
            acked_skips: registry.counter("gvfs", format!("{inst}.dedup.acked_skips")),
        }
    }

    /// An unregistered instance (tests, or callers without a registry).
    pub fn unregistered() -> Self {
        DedupTel {
            bytes_avoided: Counter::new(),
            recipe_hits: Counter::new(),
            blob_fetches: Counter::new(),
            acked_skips: Counter::new(),
        }
    }
}

struct Entry {
    /// Host-side codec-compressed payload (memory economy only; the
    /// simulated bytes live on the cache disk).
    packed: Vec<u8>,
    /// Logical (uncompressed) length.
    len: u32,
    /// Last-touch stamp (monotonic).
    stamp: u64,
    /// Live references from reference-backed file-cache entries
    /// (copy-on-write clones, DESIGN.md §5.9). A pinned entry is the
    /// proxy's residency guarantee for recipe-served bytes, so LRU
    /// eviction must never drop it.
    pins: u32,
}

struct Inner {
    map: BTreeMap<Digest, Entry>,
    /// stamp -> digest, for deterministic LRU eviction. Stamps are
    /// unique, so this is a total order of recency.
    lru: BTreeMap<u64, Digest>,
    /// Sum of logical lengths of resident entries.
    bytes: u64,
    stamp: u64,
}

/// The content-addressed store. Keys are always computed from the stored
/// bytes inside [`ContentStore::insert`], so the index can never claim a
/// digest it does not hold the preimage of.
pub struct ContentStore {
    inner: Mutex<Inner>,
    capacity: u64,
    /// Incremented when an insert ends over capacity because every
    /// remaining eviction candidate is pinned (`cas.pin_blocked_evictions`
    /// when registered; unregistered otherwise).
    pin_blocked: Counter,
}

impl ContentStore {
    /// A store bounded at `capacity` logical bytes.
    pub fn new(capacity: u64) -> Self {
        ContentStore {
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                lru: BTreeMap::new(),
                bytes: 0,
                stamp: 0,
            }),
            capacity,
            pin_blocked: Counter::new(),
        }
    }

    /// Attach a registered counter surfacing pin-blocked evictions
    /// (builder-style, before the store is shared).
    pub fn with_pin_blocked_counter(mut self, counter: Counter) -> Self {
        self.pin_blocked = counter;
        self
    }

    /// Index `bytes`, returning their digest. Re-inserting existing
    /// content only refreshes its recency. Oversized payloads (larger
    /// than the whole store) are digested but not retained.
    pub fn insert(&self, bytes: &[u8]) -> Digest {
        self.insert_inner(bytes, false)
    }

    /// Index `bytes` and take a pin on them in one step, so capacity
    /// pressure from the insert itself cannot evict the entry before the
    /// caller's reference lands. Oversized payloads are digested but not
    /// retained (and therefore not pinned — callers must re-check with
    /// [`ContentStore::pin`]-style `contains` if they need the guarantee).
    pub fn insert_pinned(&self, bytes: &[u8]) -> Digest {
        self.insert_inner(bytes, true)
    }

    fn insert_inner(&self, bytes: &[u8], pin: bool) -> Digest {
        let d = digest(bytes);
        if bytes.len() as u64 > self.capacity {
            return d;
        }
        let mut inner = self.inner.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        if let Some(e) = inner.map.get_mut(&d) {
            let old = e.stamp;
            e.stamp = stamp;
            if pin {
                e.pins += 1;
            }
            inner.lru.remove(&old);
            inner.lru.insert(stamp, d);
            return d;
        }
        let packed = codec::compress(bytes);
        inner.bytes += bytes.len() as u64;
        inner.map.insert(
            d,
            Entry {
                packed,
                len: bytes.len() as u32,
                stamp,
                pins: u32::from(pin),
            },
        );
        inner.lru.insert(stamp, d);
        // Evict least-recently-touched *unpinned* entries until back
        // under capacity. Pinned entries are skipped — a live reference
        // file is still serving reads out of them — so under enough pin
        // pressure the store is allowed to overrun its capacity rather
        // than silently drop bytes a recipe still resolves through; that
        // condition is surfaced on the pin-blocked counter.
        let mut cursor = 0u64;
        while inner.bytes > self.capacity {
            let victim = inner
                .lru
                .range(cursor..)
                .find(|(_, d2)| inner.map.get(d2).is_none_or(|e| e.pins == 0))
                .map(|(&s, &d2)| (s, d2));
            let Some((old_stamp, victim)) = victim else {
                self.pin_blocked.inc();
                break;
            };
            cursor = old_stamp + 1;
            inner.lru.remove(&old_stamp);
            if let Some(e) = inner.map.remove(&victim) {
                debug_assert!(inner.bytes >= e.len as u64, "CAS byte accounting drifted");
                inner.bytes -= e.len as u64;
            }
        }
        d
    }

    /// Take a pin on `d`, preventing its eviction until a matching
    /// [`ContentStore::unpin`]. Succeeds only while the preimage is
    /// resident — a `true` return is the caller's residency guarantee.
    /// Pins nest: each successful `pin` needs its own `unpin`.
    pub fn pin(&self, d: &Digest) -> bool {
        let mut inner = self.inner.lock();
        match inner.map.get_mut(d) {
            Some(e) => {
                e.pins += 1;
                true
            }
            None => false,
        }
    }

    /// Release one pin on `d`. Unpinning makes the entry an ordinary LRU
    /// citizen again once its pin count reaches zero; it is not evicted
    /// eagerly.
    pub fn unpin(&self, d: &Digest) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.map.get_mut(d) {
            debug_assert!(e.pins > 0, "unpin without a matching pin");
            if e.pins > 0 {
                e.pins -= 1;
            }
        }
    }

    /// Logical bytes currently held under at least one pin.
    pub fn pinned_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .map
            .values()
            .filter(|e| e.pins > 0)
            .map(|e| e.len as u64)
            .sum()
    }

    /// Whether `d`'s preimage is resident (does not refresh recency).
    pub fn contains(&self, d: &Digest) -> bool {
        self.inner.lock().map.contains_key(d)
    }

    /// Logical length of `d`'s preimage if resident (no recency refresh).
    pub fn len_of(&self, d: &Digest) -> Option<u32> {
        self.inner.lock().map.get(d).map(|e| e.len)
    }

    /// Fetch the preimage of `d`, refreshing its recency. Host-side
    /// only; see the module docs for why no simulation time is charged.
    pub fn get(&self, d: &Digest) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        let e = inner.map.get_mut(d)?;
        let old = e.stamp;
        e.stamp = stamp;
        let bytes = codec::decompress(&e.packed).ok()?;
        inner.lru.remove(&old);
        inner.lru.insert(stamp, *d);
        Some(bytes)
    }

    /// Logical bytes currently indexed.
    pub fn logical_bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Number of distinct digests indexed.
    pub fn entries(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trips_and_dedupes() {
        let cas = ContentStore::new(1 << 20);
        let a = vec![7u8; 4096];
        let d = cas.insert(&a);
        assert_eq!(d, digest(&a));
        assert!(cas.contains(&d));
        assert_eq!(cas.get(&d).unwrap(), a);
        // Re-insert: no double accounting.
        cas.insert(&a);
        assert_eq!(cas.entries(), 1);
        assert_eq!(cas.logical_bytes(), 4096);
    }

    #[test]
    fn capacity_evicts_least_recently_touched() {
        let cas = ContentStore::new(10_000);
        let a: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..4096u32).map(|i| (i + 1) as u8).collect();
        let c: Vec<u8> = (0..4096u32).map(|i| (i + 2) as u8).collect();
        let da = cas.insert(&a);
        let db = cas.insert(&b);
        // Touch `a` so `b` is the LRU victim.
        assert!(cas.get(&da).is_some());
        let dc = cas.insert(&c);
        assert!(cas.contains(&da), "recently touched entry evicted");
        assert!(!cas.contains(&db), "LRU entry not evicted");
        assert!(cas.contains(&dc));
        assert_eq!(cas.logical_bytes(), 8192);
    }

    #[test]
    fn oversized_payloads_are_not_retained() {
        let cas = ContentStore::new(100);
        let big = vec![1u8; 1000];
        let d = cas.insert(&big);
        assert_eq!(d, digest(&big));
        assert!(!cas.contains(&d));
        assert_eq!(cas.logical_bytes(), 0);
    }

    #[test]
    fn tuning_off_disables() {
        let t = DedupTuning::off();
        assert!(!t.enabled);
        assert!(DedupTuning::default().enabled);
    }

    #[test]
    fn pin_refuses_missing_and_nests() {
        let cas = ContentStore::new(1 << 20);
        let a = vec![3u8; 1024];
        let d = cas.insert(&a);
        assert!(!cas.pin(&digest(b"absent")), "pin on a missing digest");
        assert!(cas.pin(&d));
        assert!(cas.pin(&d));
        assert_eq!(cas.pinned_bytes(), 1024);
        cas.unpin(&d);
        assert_eq!(cas.pinned_bytes(), 1024, "nested pin released too early");
        cas.unpin(&d);
        assert_eq!(cas.pinned_bytes(), 0);
    }

    #[test]
    fn eviction_skips_pinned_entries() {
        // The evict-while-referenced race: `a` is the LRU victim by
        // stamp order, but a live reference pins it; capacity pressure
        // must take the next unpinned entry instead.
        let cas = ContentStore::new(6000);
        let a = vec![1u8; 4096];
        let b = vec![2u8; 4096];
        let da = cas.insert(&a);
        assert!(cas.pin(&da));
        let db = cas.insert(&b);
        assert!(cas.contains(&da), "pinned LRU entry was evicted");
        assert!(!cas.contains(&db), "unpinned newer entry should have paid");
        assert_eq!(cas.logical_bytes(), 4096);
        assert_eq!(cas.pin_blocked.get(), 0);
        // Once unpinned, ordinary LRU pressure applies again.
        cas.unpin(&da);
        let dc = cas.insert(&vec![3u8; 4096]);
        assert!(!cas.contains(&da));
        assert!(cas.contains(&dc));
    }

    #[test]
    fn all_pinned_overruns_capacity_and_counts_blocked_evictions() {
        let cas = ContentStore::new(6000);
        let da = cas.insert_pinned(&vec![4u8; 4096]);
        let db = cas.insert_pinned(&vec![5u8; 4096]);
        // Nothing evictable: both entries stay, capacity is overrun, and
        // the condition is surfaced instead of silently dropping bytes.
        assert!(cas.contains(&da));
        assert!(cas.contains(&db));
        assert_eq!(cas.logical_bytes(), 8192);
        assert_eq!(cas.pin_blocked.get(), 1);
        assert_eq!(cas.pinned_bytes(), 8192);
    }

    #[test]
    fn insert_pinned_on_existing_content_adds_a_pin() {
        let cas = ContentStore::new(1 << 20);
        let a = vec![6u8; 2048];
        cas.insert(&a);
        let d = cas.insert_pinned(&a);
        assert_eq!(cas.entries(), 1);
        assert_eq!(cas.pinned_bytes(), 2048);
        cas.unpin(&d);
        assert_eq!(cas.pinned_bytes(), 0);
    }
}
