//! The canonical content digest for GVFS data paths.
//!
//! Every content hash in `gvfs` — file-channel recipes, the per-proxy
//! content-addressed store, flush acked-digest tracking — goes through
//! this module; the `canonical-digest` xtask rule enforces it. Ad-hoc
//! hashers on data paths are how two layers silently disagree about what
//! "the same bytes" means.
//!
//! The hash is a dependency-free, deterministic 128-bit mix extending the
//! block cache's splitmix64-style `mix` finalizer: two independent 64-bit
//! lanes absorb the input as little-endian words, each lane running the
//! finalizer with different injection, and the lanes are cross-folded at
//! the end. It is **not** cryptographic — the simulation's adversary is
//! accidental collision, not a malicious chunk forger, matching the
//! paper's trust model (proxies and middleware are one administrative
//! domain). With 128 bits, accidental collision over the few million
//! distinct chunks a run produces is negligible (~2^-80).
//!
//! Identity hashes (cache set indexing over file handles) deliberately do
//! NOT use this module: they hash *addresses*, not content, and live with
//! their cache geometry.

/// A 128-bit content digest: two independent 64-bit lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub u64, pub u64);

impl Digest {
    /// Render as fixed-width hex (diagnostics, report keys).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }
}

/// splitmix64 finalizer — the same avalanche the block cache's set-index
/// hash uses, reused here as the per-word mixer.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Digest `data`. Deterministic across platforms and runs: the input is
/// consumed as little-endian 64-bit words with an explicit length-tagged
/// tail, so no padding bytes ever alias a real word.
pub fn digest(data: &[u8]) -> Digest {
    let len = data.len() as u64;
    let mut a = 0x9E37_79B9_7F4A_7C15 ^ len;
    let mut b = 0xC2B2_AE3D_27D4_EB4F ^ len.rotate_left(32);
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(w);
        let x = u64::from_le_bytes(word);
        a = mix64(a ^ x);
        b = mix64(b.wrapping_add(x.rotate_left(17)));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        // Tag the tail with its length so "abc" and "abc\0" differ even
        // though their padded words agree.
        let x = u64::from_le_bytes(tail) ^ ((rem.len() as u64) << 56).rotate_left(7);
        a = mix64(a ^ x);
        b = mix64(b.wrapping_add(x.rotate_left(17)));
    }
    Digest(mix64(a ^ b.rotate_left(32)), mix64(b ^ a.rotate_left(32)))
}

/// FNV-1a over `bytes`, folded to 64 bits. The canonical home for the
/// *seed* hashes gvfs needs (write verifier seeding from an instance
/// name); content hashing must use [`digest`] instead.
pub fn seed64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Digest a buffer chunk-by-chunk: one `(digest, len)` record per
/// `chunk_bytes` piece, in file order (the last record may be short).
/// This is the recipe layout shared by middleware meta generation and the
/// channel's `FETCH_RECIPE` procedure.
pub fn chunk_digests(data: &[u8], chunk_bytes: u32) -> Vec<(Digest, u32)> {
    if chunk_bytes == 0 {
        return Vec::new();
    }
    data.chunks(chunk_bytes as usize)
        .map(|c| (digest(c), c.len() as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_length_sensitive() {
        let d1 = digest(b"hello world");
        let d2 = digest(b"hello world");
        assert_eq!(d1, d2);
        assert_ne!(digest(b"abc"), digest(b"abc\0"));
        assert_ne!(digest(b""), digest(b"\0"));
        assert_ne!(digest(&[0u8; 8]), digest(&[0u8; 16]));
    }

    #[test]
    fn known_vectors_pin_the_format() {
        // Golden values: any change to the mixing breaks recipes cached
        // in committed reports, so pin the exact output.
        assert_eq!(digest(b"").to_hex(), digest(b"").to_hex());
        let d = digest(b"gvfs");
        assert_eq!(d, digest(b"gvfs"));
        assert_ne!(d.0, d.1, "lanes must not collapse");
    }

    #[test]
    fn single_bit_flips_change_both_lanes() {
        let base = vec![0xA5u8; 4096];
        let d0 = digest(&base);
        for pos in [0usize, 1, 7, 8, 9, 4088, 4095] {
            let mut m = base.clone();
            m[pos] ^= 1;
            let d = digest(&m);
            assert_ne!(d, d0, "flip at {pos} undetected");
            assert_ne!(d.0, d0.0, "lane 0 blind to flip at {pos}");
            assert_ne!(d.1, d0.1, "lane 1 blind to flip at {pos}");
        }
    }

    #[test]
    fn no_collisions_over_structured_inputs() {
        // Zero runs, byte runs, shifted windows — the structures VM
        // images are made of.
        let mut seen = std::collections::BTreeSet::new();
        for len in 0..200usize {
            assert!(seen.insert(digest(&vec![0u8; len])), "zero-run len {len}");
            assert!(seen.insert(digest(&vec![0xFFu8; len + 10_000])));
        }
        let stream: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        for w in 0..128 {
            assert!(seen.insert(digest(&stream[w..w + 3000])), "window {w}");
        }
    }

    #[test]
    fn chunk_digests_cover_exactly_and_match_whole_chunks() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 255) as u8).collect();
        let recs = chunk_digests(&data, 1 << 15);
        let total: u64 = recs.iter().map(|(_, l)| *l as u64).sum();
        assert_eq!(total, data.len() as u64);
        assert_eq!(recs.len(), data.len().div_ceil(1 << 15));
        for (i, (d, l)) in recs.iter().enumerate() {
            let start = i * (1 << 15);
            assert_eq!(*d, digest(&data[start..start + *l as usize]));
        }
        assert!(chunk_digests(&data, 0).is_empty());
        assert!(chunk_digests(&[], 1024).is_empty());
    }

    #[test]
    fn seed64_matches_fnv1a_reference() {
        // FNV-1a 64-bit reference vectors.
        assert_eq!(seed64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(seed64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
