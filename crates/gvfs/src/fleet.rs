//! Fleet-scale tuning knobs: RPC batching/coalescing at proxy tiers and
//! the write-back queue safety cap.
//!
//! A fleet cloning run pushes hundreds of near-simultaneous clone
//! requests through a sharded proxy tree (origin → per-site shard
//! proxies → per-host client proxies). Two pressure points appear that
//! the single-user scenarios never exercise:
//!
//! * **Upstream round-trips.** Under bursty arrivals a shard proxy sees
//!   many concurrent `FETCH_BLOBS` misses for *different* digests of the
//!   same golden image within a few milliseconds. The per-digest
//!   single-flight already collapses duplicate digests; batching
//!   additionally coalesces *adjacent distinct* digests into one
//!   `FETCH_BLOBS_BATCH` envelope, paying one WAN round-trip (and one
//!   SSH-tunnel per-message cost) for up to [`FleetTuning::max_batch`]
//!   chunks.
//! * **Write-back queue growth.** Divergent clone writes that fail
//!   upstream park on the proxy's retry queue; with hundreds of writers
//!   and a saturated WAN the queue is unbounded. The cap bounds it with
//!   a deterministic shed-oldest policy surfaced via telemetry.
//!
//! Ablation discipline (same contract as
//! [`DedupTuning::off`](crate::cas::DedupTuning::off)): with
//! [`FleetTuning::off`] every data path behaves exactly as before this
//! module existed — byte-for-byte identical reports.

use simnet::SimDuration;

/// Fleet-scale batching and back-pressure knobs, set per proxy by
/// middleware (shard proxies batch toward the origin; client proxies
/// usually leave this off because their upstream hop is a LAN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTuning {
    /// Coalesce concurrent `FETCH_BLOBS` misses into batched
    /// `FETCH_BLOBS_BATCH` upstream calls. Requires dedup (the digest
    /// keyed reply cache is how batch members receive their payloads).
    pub batch_fetch: bool,
    /// Maximum sub-calls per upstream batch envelope. Bounded by
    /// [`oncrpc::MAX_BATCH_ITEMS`]; values ≤ 1 make each "batch" a
    /// single-item envelope (useful only for wire-format testing).
    pub max_batch: usize,
    /// How long a batch leader lingers after its own miss to let
    /// concurrent misses join the envelope. Virtual time; zero means the
    /// leader only picks up misses that arrived while it waited for the
    /// state lock.
    pub batch_window: SimDuration,
    /// Cap on parked write-back retry-queue entries; `0` = unbounded
    /// (the pre-fleet behaviour). When full, the oldest parked block is
    /// shed (counted in `wb_shed`, high-water mark in `wb_high_water`):
    /// under a sustained upstream outage bounded memory wins over
    /// durability of the oldest parked divergence bytes.
    pub wb_queue_cap: usize,
    /// Intra-region digest gossip: sibling shard proxies periodically
    /// exchange inventories of the blob digests they hold (seeded
    /// anti-entropy rounds over the LAN) and serve each other's blob
    /// misses peer-to-peer before falling back to the WAN. A cold golden
    /// image then crosses the WAN once per *region* instead of once per
    /// site. Requires dedup (the digest-keyed reply cache is both the
    /// inventory being gossiped and the store peer fetches serve from).
    pub gossip: bool,
    /// Virtual-time period between one shard's anti-entropy rounds
    /// (each round pushes the local inventory delta to one peer,
    /// round-robin, and pulls that peer's delta back).
    pub gossip_interval: SimDuration,
    /// Maximum digests carried per gossip message in either direction.
    /// Bounds the decode cost (lint: bounded-decode) and the LAN burst;
    /// a backlog simply drains over successive rounds.
    pub gossip_batch: usize,
}

impl FleetTuning {
    /// Fleet features fully disabled: the pre-fleet data paths,
    /// byte-for-byte. This is the default.
    pub fn off() -> Self {
        FleetTuning {
            batch_fetch: false,
            max_batch: 1,
            batch_window: SimDuration::ZERO,
            wb_queue_cap: 0,
            gossip: false,
            gossip_interval: SimDuration::ZERO,
            gossip_batch: 0,
        }
    }

    /// Batching preset for a shard proxy in a fleet run: up to 32 chunks
    /// per envelope, 2 ms collection window (a fraction of the WAN
    /// round-trip it saves), write-back queue capped at 4096 blocks.
    /// Gossip stays off — this is the PR 8/9 configuration, kept
    /// byte-for-byte so the committed fleet reports do not move.
    pub fn shard() -> Self {
        FleetTuning {
            batch_fetch: true,
            max_batch: 32,
            batch_window: SimDuration::from_millis(2),
            wb_queue_cap: 4096,
            gossip: false,
            gossip_interval: SimDuration::ZERO,
            gossip_batch: 0,
        }
    }

    /// [`FleetTuning::shard`] plus intra-region digest gossip: 100 ms
    /// anti-entropy period (tens of rounds inside one cold cloning
    /// wave), 512 digests per message (64 KiB chunks × 512 ≈ one golden
    /// image's working set crosses the inventory channel in a handful of
    /// rounds).
    pub fn region() -> Self {
        FleetTuning {
            gossip: true,
            gossip_interval: SimDuration::from_millis(100),
            gossip_batch: 512,
            ..FleetTuning::shard()
        }
    }

    /// Whether any knob differs from [`FleetTuning::off`] (used to skip
    /// the extra telemetry registration on legacy configurations, so
    /// pre-fleet snapshots stay identical).
    pub fn is_off(&self) -> bool {
        *self == FleetTuning::off()
    }
}

impl Default for FleetTuning {
    fn default() -> Self {
        FleetTuning::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        assert!(FleetTuning::default().is_off());
        assert_eq!(FleetTuning::default(), FleetTuning::off());
    }

    #[test]
    fn shard_preset_is_bounded_and_on() {
        let t = FleetTuning::shard();
        assert!(t.batch_fetch);
        assert!(!t.is_off());
        assert!(t.max_batch >= 2);
        assert!(t.max_batch <= oncrpc::MAX_BATCH_ITEMS);
        assert!(t.batch_window > SimDuration::ZERO);
        assert!(t.wb_queue_cap > 0);
        // The committed PR 8/9 fleet reports were produced under this
        // preset; gossip must stay out of it.
        assert!(!t.gossip);
    }

    #[test]
    fn region_preset_is_shard_plus_gossip() {
        let r = FleetTuning::region();
        let s = FleetTuning::shard();
        assert!(r.gossip);
        assert!(r.gossip_interval > SimDuration::ZERO);
        assert!(r.gossip_batch > 0);
        // Everything that is not gossip matches the shard preset, so a
        // gossip-ablation diff isolates exactly the gossip effect.
        assert_eq!(
            (r.batch_fetch, r.max_batch, r.batch_window, r.wb_queue_cap),
            (s.batch_fetch, s.max_batch, s.batch_window, s.wb_queue_cap)
        );
    }
}
