//! Cross-domain identity mapping (paper §3.1).
//!
//! GVFS sessions authenticate with middleware-issued, short-lived
//! credentials (`AUTH_GVFS`). The **server-side proxy** is responsible for
//! authenticating those requests and mapping them onto local logical user
//! accounts — shadow `AUTH_SYS` identities the unmodified kernel NFS
//! server understands. Unknown or expired sessions are rejected with an
//! RPC auth error before anything reaches the server.

use std::collections::HashMap;

use oncrpc::msg::auth_stat;
use oncrpc::{AuthGvfs, AuthSys, OpaqueAuth, ProgramError};
use parking_lot::Mutex;

/// The local account a session maps to.
#[derive(Debug, Clone)]
pub struct MappedAccount {
    /// Local shadow uid.
    pub uid: u32,
    /// Local shadow gid.
    pub gid: u32,
    /// Session expiry (simulation nanoseconds).
    pub expires_ns: u64,
}

/// Session registry held by a server-side proxy.
#[derive(Default)]
pub struct IdentityMapper {
    sessions: Mutex<HashMap<u64, MappedAccount>>,
}

impl IdentityMapper {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a session (middleware allocates the shadow account when
    /// it establishes the file system session).
    pub fn register(&self, session_id: u64, account: MappedAccount) {
        self.sessions.lock().insert(session_id, account);
    }

    /// Remove a session (logout / expiry sweep).
    pub fn revoke(&self, session_id: u64) {
        self.sessions.lock().remove(&session_id);
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Whether no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.sessions.lock().is_empty()
    }

    /// Validate a credential and produce the upstream `AUTH_SYS`
    /// credential for the kernel server.
    ///
    /// * `AUTH_GVFS` — must name a live, unexpired session.
    /// * anything else — rejected: a GVFS server-side proxy only accepts
    ///   middleware sessions (this is its security role).
    pub fn map(&self, cred: &OpaqueAuth, now_ns: u64) -> Result<OpaqueAuth, ProgramError> {
        let gvfs: AuthGvfs = cred
            .as_gvfs()
            .map_err(|_| ProgramError::AuthError(auth_stat::TOOWEAK))?;
        let sessions = self.sessions.lock();
        let account = sessions
            .get(&gvfs.session_id)
            .ok_or(ProgramError::AuthError(auth_stat::BADCRED))?;
        if account.expires_ns <= now_ns || gvfs.expires_at <= now_ns {
            return Err(ProgramError::AuthError(auth_stat::REJECTEDCRED));
        }
        let mut sys = AuthSys::new("gvfs-proxy", account.uid, account.gid);
        sys.stamp = (gvfs.session_id & 0xFFFF_FFFF) as u32;
        Ok(OpaqueAuth::sys(&sys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cred(session: u64, expires: u64) -> OpaqueAuth {
        OpaqueAuth::gvfs(&AuthGvfs {
            session_id: session,
            grid_user: "alice".into(),
            expires_at: expires,
        })
    }

    #[test]
    fn live_session_maps_to_shadow_account() {
        let m = IdentityMapper::new();
        m.register(
            7,
            MappedAccount {
                uid: 6001,
                gid: 6000,
                expires_ns: 1_000_000,
            },
        );
        let mapped = m.map(&cred(7, u64::MAX), 10).unwrap();
        let sys = mapped.as_sys().unwrap();
        assert_eq!(sys.uid, 6001);
        assert_eq!(sys.gid, 6000);
    }

    #[test]
    fn unknown_session_is_badcred() {
        let m = IdentityMapper::new();
        assert_eq!(
            m.map(&cred(9, u64::MAX), 0),
            Err(ProgramError::AuthError(auth_stat::BADCRED))
        );
    }

    #[test]
    fn expired_session_is_rejected() {
        let m = IdentityMapper::new();
        m.register(
            1,
            MappedAccount {
                uid: 1,
                gid: 1,
                expires_ns: 100,
            },
        );
        assert_eq!(
            m.map(&cred(1, u64::MAX), 100),
            Err(ProgramError::AuthError(auth_stat::REJECTEDCRED))
        );
        // Credential-side expiry is honored too.
        m.register(
            2,
            MappedAccount {
                uid: 1,
                gid: 1,
                expires_ns: u64::MAX,
            },
        );
        assert_eq!(
            m.map(&cred(2, 50), 60),
            Err(ProgramError::AuthError(auth_stat::REJECTEDCRED))
        );
    }

    #[test]
    fn non_gvfs_flavors_are_too_weak() {
        let m = IdentityMapper::new();
        assert_eq!(
            m.map(&OpaqueAuth::none(), 0),
            Err(ProgramError::AuthError(auth_stat::TOOWEAK))
        );
        assert_eq!(
            m.map(&OpaqueAuth::sys(&AuthSys::new("h", 0, 0)), 0),
            Err(ProgramError::AuthError(auth_stat::TOOWEAK))
        );
    }

    #[test]
    fn revoke_kills_session() {
        let m = IdentityMapper::new();
        m.register(
            3,
            MappedAccount {
                uid: 1,
                gid: 1,
                expires_ns: u64::MAX,
            },
        );
        assert!(m.map(&cred(3, u64::MAX), 0).is_ok());
        m.revoke(3);
        assert!(m.map(&cred(3, u64::MAX), 0).is_err());
    }
}
