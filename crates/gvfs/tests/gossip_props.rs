//! Intra-region digest gossip correctness (DESIGN.md §5.10): two shard
//! proxies exchanging CAS digest inventories and serving each other's
//! blob misses peer-to-peer must be *observationally invisible* — every
//! guest reads exactly the bytes it would have read with gossip off,
//! under the same packet-loss and WAN-outage schedules the recovery
//! suite uses — while actually moving cold bytes off the WAN. Gossip
//! churn must also never disturb pinned CoW chunks: a pin is a residency
//! guarantee a live reference file depends on, and no amount of
//! peer-serve traffic may evict or unpin it.

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gvfs::digest::digest;
use gvfs::{
    ChannelClient, CodecModel, ContentStore, DedupTel, DedupTuning, FileChannelServer, FleetTuning,
    Proxy, ProxyConfig, TransferTuning, WritePolicy,
};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RetryPolicy, RpcClient, WireSpec};
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{Env, Link, LinkFaultPlan, SimDuration, SimTime, Simulation};
use vfs::{Disk, DiskModel, Fs};

const CHUNK: u32 = 8 * 1024;

/// Guest-visible bytes read by the two cloners (slot 0 = cloner-a).
type ClonerOut = Mutex<(Option<Vec<u8>>, Option<Vec<u8>>)>;

fn ms(v: u64) -> SimTime {
    SimTime::from_nanos(v * 1_000_000)
}

/// Deterministic chunk payload for content version `v` (same family as
/// the batch-equivalence suite, so recipes carry duplicate digests).
fn chunk_payload(v: u8) -> Vec<u8> {
    (0..CHUNK as u64)
        .map(|i| (i.wrapping_mul(31).wrapping_add(v as u64 * 101) % 251) as u8)
        .collect()
}

fn build_file(versions: &[u8], tail: usize) -> Vec<u8> {
    let mut data = Vec::with_capacity(versions.len() * CHUNK as usize + tail);
    for &v in versions {
        data.extend_from_slice(&chunk_payload(v));
    }
    data.extend((0..tail as u64).map(|i| (i % 199) as u8));
    data
}

/// WAN fault schedule: probabilistic loss plus one outage window, ridden
/// out by [`RetryPolicy::wan`]. Gossip LAN hops stay clean — the PR 4
/// recovery suite's faults live on the WAN, and a lost gossip round is
/// already covered by the protocol (the cursor only advances on success).
#[derive(Clone, Copy)]
struct FaultPlan {
    drop_prob: f64,
    outage_start: u64,
    outage_len: u64,
    seed: u64,
}

impl FaultPlan {
    const CLEAN: FaultPlan = FaultPlan {
        drop_prob: 0.0,
        outage_start: 0,
        outage_len: 1,
        seed: 1,
    };

    fn install(&self, up: &Link, down: &Link) {
        up.install_faults(
            LinkFaultPlan::new(self.seed | 1)
                .drop_prob(self.drop_prob)
                .outage(
                    ms(self.outage_start),
                    ms(self.outage_start + self.outage_len),
                ),
        );
        down.install_faults(
            LinkFaultPlan::new(self.seed.wrapping_add(2) | 1)
                .drop_prob(self.drop_prob)
                .outage(
                    ms(self.outage_start),
                    ms(self.outage_start + self.outage_len),
                ),
        );
    }
}

struct PairOut {
    /// Reassembled contents at the site-A and site-B cloners.
    a: Vec<u8>,
    b: Vec<u8>,
    /// Peer-serve telemetry summed over both shards.
    peer_hits: u64,
    /// Bytes that crossed the (shared) origin WAN downlink.
    wan_down_bytes: u64,
    /// Digests pinned into shard B's CAS before the run that are still
    /// resident afterwards.
    pins_surviving: usize,
}

/// Two sibling shard proxies in one region, both upstream of the same
/// faulted origin WAN, each fronting one cloner on its own clean LAN.
/// Cloner A fetches at t=0 (cold, crosses the WAN); cloner B fetches
/// `stagger_ms` later — with gossip on and enough stagger, B's shard
/// learns A's inventory and serves the misses peer-to-peer. `pinned`
/// payloads are pinned into shard B's CAS up front to witness that
/// gossip and peer churn never disturb a pin.
fn run_pair(
    data: &[u8],
    gossip: bool,
    stagger_ms: u64,
    cas_bytes: u64,
    pinned: &[Vec<u8>],
    faults: FaultPlan,
) -> PairOut {
    let sim = Simulation::new();
    let h = sim.handle();
    let fs = Arc::new(Mutex::new(Fs::new(0)));
    let disk = Disk::new(&h, DiskModel::server_array());
    let chan_server = FileChannelServer::new(fs.clone(), disk, CodecModel::default(), true);
    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    faults.install(&wan_up, &wan_down);
    let wan = oncrpc::endpoint(&h, wan_up, wan_down, WireSpec::ssh_tunnel(50e6));
    wan.listener.serve(
        "origin",
        Dispatcher::new().register(chan_server).into_handler(),
        8,
    );

    let fh = {
        let mut f = fs.lock();
        let root = f.root();
        let fh = f.create(root, "img", 0o644, 0).unwrap();
        f.write(fh, 0, data, 0).unwrap();
        fh
    };

    let cred = OpaqueAuth::sys(&AuthSys::new("fleet", 1, 1));
    let fleet = if gossip {
        FleetTuning::region()
    } else {
        FleetTuning::shard()
    };
    let mk_shard = |name: &str| {
        let upstream =
            RpcClient::new(wan.channel.clone(), cred.clone()).with_policy(RetryPolicy::wan());
        let proxy = Proxy::new(
            ProxyConfig {
                name: name.into(),
                write_policy: WritePolicy::WriteThrough,
                meta_handling: false,
                per_op_cpu: SimDuration::from_micros(40),
                read_only_share: true,
                transfer: TransferTuning::default(),
                dedup: DedupTuning {
                    enabled: true,
                    cas_bytes,
                },
                fleet,
                cow: gvfs::CowTuning::off(),
            },
            upstream,
        )
        .into_handler();
        let lan_up = Link::new(
            &h,
            format!("{name}-lan-up"),
            1e9,
            SimDuration::from_micros(100),
        );
        let lan_down = Link::new(
            &h,
            format!("{name}-lan-down"),
            1e9,
            SimDuration::from_micros(100),
        );
        let lan = oncrpc::endpoint(&h, lan_up, lan_down, WireSpec::plain());
        lan.listener.serve(name, proxy.clone(), 8);
        (proxy, lan.channel)
    };
    let (shard_a, chan_a) = mk_shard("shardA");
    let (shard_b, chan_b) = mk_shard("shardB");

    let pinned_digests: Vec<_> = pinned
        .iter()
        .map(|p| {
            shard_b
                .content_store()
                .expect("dedup on implies a CAS")
                .insert_pinned(p)
        })
        .collect();

    // Region wiring (no-ops when the proxies were built gossip-off).
    shard_a.set_gossip_peers(0, vec![(1, RpcClient::new(chan_b.clone(), cred.clone()))]);
    shard_b.set_gossip_peers(1, vec![(0, RpcClient::new(chan_a.clone(), cred.clone()))]);

    let done = Arc::new(AtomicUsize::new(0));
    if gossip {
        let (a2, b2, done2) = (shard_a.clone(), shard_b.clone(), done.clone());
        sim.spawn("gossip-driver", move |env: Env| {
            while done2.load(Ordering::Acquire) < 2 {
                env.sleep(SimDuration::from_millis(20));
                a2.gossip_round(&env);
                b2.gossip_round(&env);
            }
        });
    }

    let out: Arc<ClonerOut> = Arc::new(Mutex::new((None, None)));
    for (name, chan, delay_ms, slot) in [
        ("cloner-a", chan_a, 0u64, 0usize),
        ("cloner-b", chan_b, stagger_ms, 1),
    ] {
        let chan = ChannelClient::new(
            RpcClient::new(chan, cred.clone()).with_policy(RetryPolicy::wan()),
            CodecModel::default(),
        );
        let (out2, done2) = (out.clone(), done.clone());
        sim.spawn(name, move |env: Env| {
            env.sleep(SimDuration::from_millis(delay_ms));
            let cas = ContentStore::new(1 << 30);
            let dtel = DedupTel::unregistered();
            let df = chan
                .fetch_dedup_batched(&env, fh, None, CHUNK, 4, 8, &cas, &dtel, None)
                .unwrap();
            let mut o = out2.lock();
            if slot == 0 {
                o.0 = Some(df.contents);
            } else {
                o.1 = Some(df.contents);
            }
            done2.fetch_add(1, Ordering::Release);
        });
    }
    sim.run();

    let snapshot = h.telemetry().snapshot();
    let cas_b = shard_b.content_store().expect("dedup on implies a CAS");
    let pins_surviving = pinned_digests.iter().filter(|d| cas_b.contains(d)).count();
    let mut o = out.lock();
    PairOut {
        a: o.0.take().expect("cloner A must complete"),
        b: o.1.take().expect("cloner B must complete"),
        peer_hits: snapshot.counter_sum("gvfs", ".gossip.peer_hits"),
        wan_down_bytes: snapshot.counter_sum("link", "wan-down.bytes"),
        pins_surviving,
    }
}

proptest! {
    /// Under arbitrary chunk layouts, arrival staggers and WAN
    /// loss/outage schedules, both cloners read exactly the file bytes
    /// whether their shards gossip or not — digest-verified peer serving
    /// is pure transport, never content — and chunks pinned into a
    /// shard's CAS before the run are still resident after all the
    /// gossip and peer-serve churn.
    #[test]
    fn gossip_is_invisible_to_guests_under_faults(
        versions in proptest::collection::vec(0u8..5, 2..10),
        tail in 0usize..(CHUNK as usize),
        stagger_ms in 0u64..3000,
        drop_pct in 0u32..3,
        outage_start in 0u64..1500,
        outage_len in 1u64..2000,
        fault_seed in any::<u64>(),
    ) {
        let data = build_file(&versions, tail);
        let pinned: Vec<Vec<u8>> = (100u8..102).map(chunk_payload).collect();
        let faults = FaultPlan {
            drop_prob: drop_pct as f64 / 100.0,
            outage_start,
            outage_len,
            seed: fault_seed,
        };
        let cap = DedupTuning::default().cas_bytes;
        let off = run_pair(&data, false, stagger_ms, cap, &pinned, faults);
        let on = run_pair(&data, true, stagger_ms, cap, &pinned, faults);
        prop_assert_eq!(&off.a, &data);
        prop_assert_eq!(&off.b, &data);
        prop_assert_eq!(&on.a, &data);
        prop_assert_eq!(&on.b, &data);
        prop_assert_eq!(digest(&on.b), digest(&data));
        // Gossip-off shards must never peer-serve.
        prop_assert_eq!(off.peer_hits, 0);
        prop_assert_eq!(on.pins_surviving, pinned.len());
        prop_assert_eq!(off.pins_surviving, pinned.len());
    }
}

/// Fault-free sanity for the property above: with a stagger comfortably
/// past the gossip interval, the second site's misses really are served
/// by its sibling — peer hits happen and WAN-down traffic drops — so the
/// proptest's equivalence is not vacuously comparing two identical
/// origin-only runs.
#[test]
fn gossip_serves_second_site_from_peer() {
    let versions: Vec<u8> = (0..8).map(|i| (i % 4) as u8).collect();
    let data = build_file(&versions, 777);
    let cap = DedupTuning::default().cas_bytes;
    let off = run_pair(&data, false, 2_000, cap, &[], FaultPlan::CLEAN);
    let on = run_pair(&data, true, 2_000, cap, &[], FaultPlan::CLEAN);
    assert_eq!(off.a, data);
    assert_eq!(on.b, data);
    assert!(
        on.peer_hits >= 1,
        "stagger past the interval must peer-serve"
    );
    assert!(
        on.wan_down_bytes < off.wan_down_bytes,
        "peer serving must shed WAN-down bytes ({} vs {})",
        on.wan_down_bytes,
        off.wan_down_bytes
    );
}

/// Pins survive *capacity pressure* caused by peer and gossip traffic:
/// with a CAS so small that the file's chunks force evictions, the
/// pinned entries are skipped (the store may overrun instead) and are
/// still resident and re-pinnable after the run.
#[test]
fn gossip_churn_never_evicts_pinned_chunks() {
    let versions: Vec<u8> = (0..10).map(|i| (i % 5) as u8).collect();
    let data = build_file(&versions, 123);
    let pinned: Vec<Vec<u8>> = (100u8..103).map(chunk_payload).collect();
    // Room for the pins plus ~2 file chunks: every further insert must
    // evict something, and it must never be a pin.
    let cap = (pinned.len() as u64 + 2) * CHUNK as u64;
    let on = run_pair(&data, true, 1_500, cap, &pinned, FaultPlan::CLEAN);
    assert_eq!(on.a, data);
    assert_eq!(on.b, data);
    assert_eq!(
        on.pins_surviving,
        pinned.len(),
        "a pin is a residency guarantee"
    );
}
