//! Regression: the per-request record paths (RPC client, proxy
//! dispatch, NFS server) must not touch the telemetry registry once
//! their handles are registered. Every get-or-register resolution takes
//! a global lock and formats a `String` key, so a resolution inside the
//! hot path turns the registry mutex into a per-event serialization
//! point. Debug builds count resolutions; this test drives a warm-up
//! burst through the full client → proxy → server chain, then asserts
//! the count stays flat across a second, larger burst of the same
//! operation mix.

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use gvfs::{
    BlockCache, BlockCacheConfig, DedupTuning, Proxy, ProxyConfig, TransferTuning, WritePolicy,
};
use nfs3::{MountServer, Nfs3Client, Nfs3Server, ServerConfig};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RpcClient, WireSpec};
use parking_lot::Mutex;
use simnet::{Env, Link, SimDuration, Simulation};
use vfs::{Disk, DiskModel};

#[test]
fn record_paths_stay_registry_free_after_warmup() {
    let sim = Simulation::new();
    let h = sim.handle();

    let server_disk = Disk::new(&h, DiskModel::server_array());
    let (fs, server) = Nfs3Server::with_new_fs(&h, server_disk, ServerConfig::default());
    let mount = MountServer::new(fs.clone(), vec!["/".to_string()]);
    let handler = Dispatcher::new()
        .register(server)
        .register(mount)
        .into_handler();

    let up = Link::from_mbps(&h, "wan-up", 25.0, SimDuration::from_millis(5));
    let down = Link::from_mbps(&h, "wan-down", 25.0, SimDuration::from_millis(5));
    let ep = oncrpc::endpoint(&h, up, down, WireSpec::ssh_tunnel(50e6));
    ep.listener.serve("nfsd", handler, 8);

    let cred = OpaqueAuth::sys(&AuthSys::new("tel", 1, 1));
    let cache_disk = Disk::new(&h, DiskModel::scsi_2004());
    let proxy = Proxy::new(
        ProxyConfig {
            name: "tel-proxy".into(),
            write_policy: WritePolicy::WriteThrough,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning {
                read_ahead: 0,
                ..TransferTuning::default()
            },
            dedup: DedupTuning::off(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        RpcClient::new(ep.channel, cred.clone()),
    )
    .with_block_cache(Arc::new(BlockCache::new(
        &h,
        cache_disk,
        BlockCacheConfig::with_capacity(256 << 20, 64, 16, 32 * 1024),
    )))
    .into_handler();

    let fh = {
        let mut f = fs.lock();
        let root = f.root();
        let h = f.create(root, "data.img", 0o644, 0).unwrap();
        f.setattr(h, Some(64 * 32 * 1024), None, 0).unwrap();
        h
    };

    let lo_up = Link::new(&h, "lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(&h, "lo-down", 1e9, SimDuration::from_micros(20));
    let lo = oncrpc::endpoint(&h, lo_up, lo_down, WireSpec::plain());
    lo.listener.serve("proxy", proxy, 8);
    let nfs = Nfs3Client::new(RpcClient::new(lo.channel, cred));

    let resolutions = Arc::new(Mutex::new((0u64, 0u64)));
    let resolutions2 = resolutions.clone();
    sim.spawn("client", move |env: Env| {
        // One operation mix, reused for both bursts: GETATTR + READ +
        // WRITE covers the RPC client proc histograms and rare-counter
        // paths, the proxy's per-proc counters, and the server's
        // per-proc counters for each procedure involved.
        let burst = |env: &Env, rounds: u64| {
            for i in 0..rounds {
                nfs.getattr(env, fh).unwrap();
                nfs.read(env, fh, (i % 64) * 32 * 1024, 32 * 1024).unwrap();
                let data = vec![(i % 251) as u8; 4096];
                nfs.write(
                    env,
                    fh,
                    (i % 64) * 32 * 1024,
                    data,
                    nfs3::proto::StableHow::FileSync,
                )
                .unwrap();
            }
        };
        // Warm-up: registers every metric this mix can touch.
        burst(&env, 4);
        let before = env.telemetry().debug_resolutions();
        // The measured burst must not resolve anything new.
        burst(&env, 32);
        let after = env.telemetry().debug_resolutions();
        *resolutions2.lock() = (before, after);
    });
    sim.run();

    let (before, after) = *resolutions.lock();
    // In release builds debug_resolutions() is a constant 0 and the
    // assertion is vacuous; debug builds (the default for `cargo test`)
    // count every registry get-or-register.
    assert_eq!(
        before,
        after,
        "hot record path resolved {} metric handle(s) through the \
         registry during the measured burst; cache the handles at \
         construction instead",
        after - before
    );
}
