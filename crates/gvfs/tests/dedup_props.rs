//! Dedup correctness under failure: the content-addressed flush paths
//! must never skip a byte the server does not durably hold, under
//! arbitrary packet loss, WAN outages and server restarts — and the
//! server must end byte-identical to a run with dedup fully off.
//! Plus the digest-keyed second-level blob cache: distinct files
//! sharing content coalesce onto one upstream fetch per chunk.

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use gvfs::digest::chunk_digests;
use gvfs::{
    BlockCache, BlockCacheConfig, ChannelClient, CodecModel, ContentStore, DedupTel, DedupTuning,
    FileChannelServer, Proxy, ProxyConfig, TransferTuning, WritePolicy,
};
use nfs3::{MountServer, Nfs3Client, Nfs3Server, ServerConfig};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RetryPolicy, RpcClient, WireSpec};
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{Env, Link, LinkFaultPlan, SimDuration, SimTime, Simulation};
use vfs::{Disk, DiskModel, Fs, Handle};

const BS: u64 = 32 * 1024;
const BLOCKS: u64 = 8;

fn ms(v: u64) -> SimTime {
    SimTime::from_nanos(v * 1_000_000)
}

struct Rig {
    fs: Arc<Mutex<Fs>>,
    server: Arc<Nfs3Server>,
    proxy: Arc<Proxy>,
    nfs: Nfs3Client,
    cred: OpaqueAuth,
    wan_up: Link,
    wan_down: Link,
}

/// A write-back client proxy over a faultable WAN (the fault_recovery
/// rig, parameterized on dedup).
fn build_rig(sim: &Simulation, dedup: DedupTuning) -> Rig {
    let h = sim.handle();
    let server_disk = Disk::new(&h, DiskModel::server_array());
    let (fs, server) = Nfs3Server::with_new_fs(&h, server_disk, ServerConfig::default());
    let mount = MountServer::new(fs.clone(), vec!["/".to_string()]);
    let handler = Dispatcher::new()
        .register(server.clone())
        .register(mount)
        .into_handler();

    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let ep = oncrpc::endpoint(
        &h,
        wan_up.clone(),
        wan_down.clone(),
        WireSpec::ssh_tunnel(50e6),
    );
    ep.listener.serve("nfsd", handler, 8);

    let cred = OpaqueAuth::sys(&AuthSys::new("dedup", 1, 1));
    let upstream = RpcClient::new(ep.channel, cred.clone()).with_policy(RetryPolicy::wan());
    let cache_disk = Disk::new(&h, DiskModel::scsi_2004());
    let proxy = Proxy::new(
        ProxyConfig {
            name: "dedup-proxy".into(),
            write_policy: WritePolicy::WriteBack,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning {
                read_ahead: 0,
                ..TransferTuning::default()
            },
            dedup,
        },
        upstream,
    )
    .with_block_cache(Arc::new(BlockCache::new(
        &h,
        cache_disk,
        BlockCacheConfig::with_capacity(256 << 20, 64, 16, BS as u32),
    )))
    .into_handler();

    let lo_up = Link::new(&h, "lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(&h, "lo-down", 1e9, SimDuration::from_micros(20));
    let lo = oncrpc::endpoint(&h, lo_up, lo_down, WireSpec::plain());
    lo.listener.serve("proxy", proxy.clone(), 8);
    let nfs = Nfs3Client::new(RpcClient::new(lo.channel, cred.clone()));

    Rig {
        fs,
        server,
        proxy,
        nfs,
        cred,
        wan_up,
        wan_down,
    }
}

fn seed_file(fs: &Arc<Mutex<Fs>>, name: &str) -> Handle {
    let mut f = fs.lock();
    let root = f.root();
    let fh = f.create(root, name, 0o644, 0).unwrap();
    f.setattr(fh, Some(BLOCKS * BS), None, 0).unwrap();
    fh
}

/// Deterministic payload for block `b`, content version `v`.
fn payload(b: u64, v: u8) -> Vec<u8> {
    (0..BS as u32)
        .map(|i| (i as u64 * 31 + b * 17 + v as u64 * 101).wrapping_rem(249) as u8)
        .collect()
}

/// One full run: play `rounds` of writes+flush through a rig under the
/// given fault schedule, drain after the faults clear, return the final
/// server bytes and the proxy's acked-skip count.
#[allow(clippy::too_many_arguments)]
fn run_schedule(
    dedup: DedupTuning,
    rounds: &[Vec<(u64, u8)>],
    drop_prob: f64,
    outage_start: u64,
    outage_len: u64,
    restarts: &[u64],
    fault_seed: u64,
) -> (Vec<u8>, u64) {
    let sim = Simulation::new();
    let rig = build_rig(&sim, dedup);
    let fh = seed_file(&rig.fs, "vm.img");
    rig.wan_up.install_faults(
        LinkFaultPlan::new(fault_seed | 1)
            .drop_prob(drop_prob)
            .outage(ms(outage_start), ms(outage_start + outage_len)),
    );
    rig.wan_down.install_faults(
        LinkFaultPlan::new(fault_seed.wrapping_add(2) | 1)
            .drop_prob(drop_prob)
            .outage(ms(outage_start), ms(outage_start + outage_len)),
    );
    let server = rig.server.clone();
    let mut restart_times = restarts.to_vec();
    restart_times.sort_unstable();
    let restarts2 = restart_times.clone();
    sim.spawn("chaos", move |env: Env| {
        for t in restarts2 {
            let now = env.now();
            env.sleep(ms(t).saturating_since(now));
            server.restart(env.now().as_nanos());
        }
    });
    // Quiet point: after the outage is over and the last restart fired
    // (loss alone is ridden out by the retransmission policy).
    let quiet = (outage_start + outage_len).max(restart_times.last().copied().unwrap_or(0)) + 500;
    let (nfs, proxy, cred) = (rig.nfs, rig.proxy.clone(), rig.cred.clone());
    let rounds2 = rounds.to_vec();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh2, _) = nfs.lookup(&env, root, "vm.img").unwrap();
        assert_eq!(fh2, fh);
        for round in &rounds2 {
            for &(b, v) in round {
                nfs.write(
                    &env,
                    fh2,
                    b * BS,
                    payload(b, v),
                    nfs3::proto::StableHow::Unstable,
                )
                .unwrap();
            }
            nfs.commit(&env, fh2).unwrap();
            // Mid-fault flushes may fail blocks; they stay queued.
            let _ = proxy.flush(&env, &cred);
        }
        let now = env.now();
        env.sleep(ms(quiet).saturating_since(now));
        let mut drained = false;
        for _ in 0..8 {
            let report = proxy.flush(&env, &cred);
            if report.failed_blocks == 0 && report.failed_files == 0 {
                drained = true;
                break;
            }
        }
        assert!(drained, "flush must drain once the faults clear");
    });
    sim.run();
    let skips = rig.proxy.stats().dedup_acked_skips;
    let mut f = rig.fs.lock();
    let (bytes, _) = f.read(fh, 0, (BLOCKS * BS) as usize, 0).unwrap();
    (bytes, skips)
}

proptest! {
    /// Under arbitrary loss / outage / restart schedules and arbitrary
    /// re-dirty patterns (including rewrites of identical content — the
    /// acked-skip bait), the dedup'd flush leaves the server
    /// byte-identical to the dedup-off flush, and both match the last
    /// version written per block. A restart between flushes rotates the
    /// server's write verifier, so a skip validated against a stale
    /// verifier would corrupt the off/on equivalence — this is the
    /// executable form of "no acknowledged byte is ever dedup-skipped
    /// incorrectly".
    #[test]
    fn dedup_flush_matches_plain_flush_under_faults(
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u64..BLOCKS, 0u8..2), 1..8),
            1..4,
        ),
        drop_pct in 0u32..3,
        outage_start in 500u64..4000,
        outage_len in 1u64..4000,
        restarts in proptest::collection::vec(500u64..10_000, 0..3),
        fault_seed in any::<u64>(),
    ) {
        let drop_prob = drop_pct as f64 / 100.0;
        let (plain, plain_skips) = run_schedule(
            DedupTuning::off(), &rounds, drop_prob, outage_start, outage_len,
            &restarts, fault_seed,
        );
        let (deduped, _) = run_schedule(
            DedupTuning::default(), &rounds, drop_prob, outage_start, outage_len,
            &restarts, fault_seed,
        );
        prop_assert_eq!(plain_skips, 0);
        // Expected: the last version written per block; zero elsewhere.
        let mut expect = vec![0u8; (BLOCKS * BS) as usize];
        let mut last = [None::<u8>; BLOCKS as usize];
        for round in &rounds {
            for &(b, v) in round {
                last[b as usize] = Some(v);
            }
        }
        for (b, v) in last.iter().enumerate() {
            if let Some(v) = v {
                let lo = b * BS as usize;
                expect[lo..lo + BS as usize].copy_from_slice(&payload(b as u64, *v));
            }
        }
        prop_assert_eq!(&plain, &expect);
        prop_assert_eq!(&deduped, &expect);
    }
}

/// Deterministic acked-skip behaviour: re-dirtying a block with bytes
/// the server already acknowledged is skipped (counted, no WRITE); a
/// server restart invalidates the acked digests and the next flush
/// resends for real.
#[test]
fn unchanged_redirty_skips_and_restart_invalidates() {
    let sim = Simulation::new();
    let rig = build_rig(&sim, DedupTuning::default());
    let fh = seed_file(&rig.fs, "vm.img");
    let server = rig.server.clone();
    let proxy = rig.proxy.clone();
    let (nfs, cred) = (rig.nfs, rig.cred.clone());
    let fs = rig.fs.clone();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh2, _) = nfs.lookup(&env, root, "vm.img").unwrap();
        let dirty_all = |env: &Env| {
            for b in 0..BLOCKS {
                nfs.write(
                    env,
                    fh2,
                    b * BS,
                    payload(b, 1),
                    nfs3::proto::StableHow::Unstable,
                )
                .unwrap();
            }
            nfs.commit(env, fh2).unwrap();
        };
        dirty_all(&env);
        let r1 = proxy.flush(&env, &cred);
        assert_eq!(r1.blocks, BLOCKS);
        assert_eq!(proxy.stats().dedup_acked_skips, 0);

        // Same bytes again: every block skips, nothing crosses the WAN.
        dirty_all(&env);
        let r2 = proxy.flush(&env, &cred);
        assert_eq!(r2.blocks, 0, "unchanged blocks must not be re-sent");
        assert_eq!(r2.failed_blocks, 0);
        assert_eq!(proxy.stats().dedup_acked_skips, BLOCKS);
        assert_eq!(proxy.stats().dedup_bytes_avoided, BLOCKS * BS);

        // Restart rotates the write verifier: the acked digests are no
        // longer trustworthy, so the same bait must be re-sent.
        server.restart(env.now().as_nanos());
        dirty_all(&env);
        let r3 = proxy.flush(&env, &cred);
        assert_eq!(
            r3.blocks, BLOCKS,
            "restart must invalidate acked digests: {r3:?}"
        );
        assert_eq!(r3.failed_blocks, 0);
        assert_eq!(proxy.stats().dedup_acked_skips, BLOCKS, "no new skips");

        // Server ends byte-exact either way.
        let mut f = fs.lock();
        for b in 0..BLOCKS {
            let (data, _) = f.read(fh, b * BS, BS as usize, 0).unwrap();
            assert_eq!(data, payload(b, 1), "block {b} corrupt");
        }
    });
    sim.run();
}

/// The digest-keyed second-level blob cache: two downstream clients
/// fetch two *different files* with identical content through a shared
/// LAN proxy concurrently. Every chunk crosses the upstream link once —
/// requests for a digest already in flight wait on the first fetch
/// (single-flight on content, not on file handle).
#[test]
fn shared_proxy_coalesces_blob_fetches_on_digest() {
    const CHUNK: u32 = 64 * 1024;
    const LEN: usize = 5 * CHUNK as usize + 9000;

    let sim = Simulation::new();
    let h = sim.handle();
    let fs = Arc::new(Mutex::new(Fs::new(0)));
    let disk = Disk::new(&h, DiskModel::server_array());
    let chan_server = FileChannelServer::new(fs.clone(), disk, CodecModel::default(), true);
    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let wan = oncrpc::endpoint(&h, wan_up, wan_down, WireSpec::ssh_tunnel(50e6));
    wan.listener.serve(
        "chan-server",
        Dispatcher::new().register(chan_server).into_handler(),
        8,
    );

    let data: Vec<u8> = (0..LEN as u64)
        .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 23) as u8)
        .collect();
    let (f1, f2) = {
        let mut f = fs.lock();
        let root = f.root();
        let a = f.create(root, "img-a", 0o644, 0).unwrap();
        f.write(a, 0, &data, 0).unwrap();
        let b = f.create(root, "img-b", 0o644, 0).unwrap();
        f.write(b, 0, &data, 0).unwrap();
        (a, b)
    };
    let distinct = chunk_digests(&data, CHUNK)
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
        .len() as u64;

    let cred = OpaqueAuth::sys(&AuthSys::new("lan", 1, 1));
    let upstream = RpcClient::new(wan.channel, cred.clone()).with_policy(RetryPolicy::wan());
    let lan_proxy = Proxy::new(
        ProxyConfig {
            name: "lan-share".into(),
            write_policy: WritePolicy::WriteThrough,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: true,
            transfer: TransferTuning::default(),
            dedup: DedupTuning::default(),
        },
        upstream,
    )
    .into_handler();
    let lan_up = Link::new(&h, "lan-up", 1e9, SimDuration::from_micros(100));
    let lan_down = Link::new(&h, "lan-down", 1e9, SimDuration::from_micros(100));
    let lan = oncrpc::endpoint(&h, lan_up, lan_down, WireSpec::plain());
    lan.listener.serve("lan-share", lan_proxy.clone(), 8);

    let mut joins = Vec::new();
    for (i, fh) in [(0, f1), (1, f2)] {
        let chan = ChannelClient::new(
            RpcClient::new(lan.channel.clone(), cred.clone()),
            CodecModel::default(),
        );
        let want = data.clone();
        joins.push(sim.spawn(format!("cloner-{i}"), move |env: Env| {
            let cas = ContentStore::new(1 << 30);
            let dtel = DedupTel::unregistered();
            let df = chan
                .fetch_dedup(&env, fh, None, CHUNK, 4, &cas, &dtel, None)
                .unwrap();
            assert_eq!(df.contents, want, "client {i} got wrong bytes");
        }));
    }
    let _ = joins;
    sim.run();

    let st = lan_proxy.stats();
    // Upstream forwards: one FETCH_RECIPE per file (distinct handles)
    // plus exactly one FETCH_BLOBS per distinct chunk digest — the
    // second file's chunks all ride the first file's fetches.
    assert_eq!(
        st.forwarded,
        2 + distinct,
        "expected digest-coalesced forwards (distinct={distinct}): {st:?}"
    );
    assert!(
        st.dedup_recipe_hits >= distinct,
        "second client must be served from the digest cache: {st:?}"
    );
}
