//! Dedup correctness under failure: the content-addressed flush paths
//! must never skip a byte the server does not durably hold, under
//! arbitrary packet loss, WAN outages and server restarts — and the
//! server must end byte-identical to a run with dedup fully off.
//! Plus the digest-keyed second-level blob cache: distinct files
//! sharing content coalesce onto one upstream fetch per chunk.

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use gvfs::channel::chanproc;
use gvfs::digest::{chunk_digests, digest};
use gvfs::{
    BlockCache, BlockCacheConfig, ChannelClient, CodecModel, ContentStore, DedupTel, DedupTuning,
    Digest, FileCache, FileChannelServer, FileKey, Proxy, ProxyConfig, TransferTuning, WritePolicy,
    CHANNEL_PROGRAM, CHANNEL_V1,
};
use nfs3::{Fh3, MountServer, Nfs3Client, Nfs3Server, ServerConfig};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RetryPolicy, RpcClient, WireSpec};
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{Env, Link, LinkFaultPlan, SimDuration, SimTime, Simulation};
use vfs::{Disk, DiskModel, Fs, Handle};
use xdr::{Encode, Encoder};

const BS: u64 = 32 * 1024;
const BLOCKS: u64 = 8;

fn ms(v: u64) -> SimTime {
    SimTime::from_nanos(v * 1_000_000)
}

struct Rig {
    fs: Arc<Mutex<Fs>>,
    server: Arc<Nfs3Server>,
    proxy: Arc<Proxy>,
    nfs: Nfs3Client,
    cred: OpaqueAuth,
    wan_up: Link,
    wan_down: Link,
}

/// A write-back client proxy over a faultable WAN (the fault_recovery
/// rig, parameterized on dedup).
fn build_rig(sim: &Simulation, dedup: DedupTuning) -> Rig {
    build_rig_with(
        sim,
        dedup,
        TransferTuning {
            read_ahead: 0,
            ..TransferTuning::default()
        },
        RetryPolicy::wan(),
    )
}

fn build_rig_with(
    sim: &Simulation,
    dedup: DedupTuning,
    transfer: TransferTuning,
    policy: RetryPolicy,
) -> Rig {
    let h = sim.handle();
    let server_disk = Disk::new(&h, DiskModel::server_array());
    let (fs, server) = Nfs3Server::with_new_fs(&h, server_disk, ServerConfig::default());
    let mount = MountServer::new(fs.clone(), vec!["/".to_string()]);
    let handler = Dispatcher::new()
        .register(server.clone())
        .register(mount)
        .into_handler();

    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let ep = oncrpc::endpoint(
        &h,
        wan_up.clone(),
        wan_down.clone(),
        WireSpec::ssh_tunnel(50e6),
    );
    ep.listener.serve("nfsd", handler, 8);

    let cred = OpaqueAuth::sys(&AuthSys::new("dedup", 1, 1));
    let upstream = RpcClient::new(ep.channel, cred.clone()).with_policy(policy);
    let cache_disk = Disk::new(&h, DiskModel::scsi_2004());
    let proxy = Proxy::new(
        ProxyConfig {
            name: "dedup-proxy".into(),
            write_policy: WritePolicy::WriteBack,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer,
            dedup,
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        upstream,
    )
    .with_block_cache(Arc::new(BlockCache::new(
        &h,
        cache_disk,
        BlockCacheConfig::with_capacity(256 << 20, 64, 16, BS as u32),
    )))
    .into_handler();

    let lo_up = Link::new(&h, "lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(&h, "lo-down", 1e9, SimDuration::from_micros(20));
    let lo = oncrpc::endpoint(&h, lo_up, lo_down, WireSpec::plain());
    lo.listener.serve("proxy", proxy.clone(), 8);
    let nfs = Nfs3Client::new(RpcClient::new(lo.channel, cred.clone()));

    Rig {
        fs,
        server,
        proxy,
        nfs,
        cred,
        wan_up,
        wan_down,
    }
}

fn seed_file(fs: &Arc<Mutex<Fs>>, name: &str) -> Handle {
    let mut f = fs.lock();
    let root = f.root();
    let fh = f.create(root, name, 0o644, 0).unwrap();
    f.setattr(fh, Some(BLOCKS * BS), None, 0).unwrap();
    fh
}

/// Deterministic payload for block `b`, content version `v`.
fn payload(b: u64, v: u8) -> Vec<u8> {
    (0..BS as u32)
        .map(|i| (i as u64 * 31 + b * 17 + v as u64 * 101).wrapping_rem(249) as u8)
        .collect()
}

/// One full run: play `rounds` of writes+flush through a rig under the
/// given fault schedule, drain after the faults clear, return the final
/// server bytes and the proxy's acked-skip count.
#[allow(clippy::too_many_arguments)]
fn run_schedule(
    dedup: DedupTuning,
    rounds: &[Vec<(u64, u8)>],
    drop_prob: f64,
    outage_start: u64,
    outage_len: u64,
    restarts: &[u64],
    fault_seed: u64,
) -> (Vec<u8>, u64) {
    let sim = Simulation::new();
    let rig = build_rig(&sim, dedup);
    let fh = seed_file(&rig.fs, "vm.img");
    rig.wan_up.install_faults(
        LinkFaultPlan::new(fault_seed | 1)
            .drop_prob(drop_prob)
            .outage(ms(outage_start), ms(outage_start + outage_len)),
    );
    rig.wan_down.install_faults(
        LinkFaultPlan::new(fault_seed.wrapping_add(2) | 1)
            .drop_prob(drop_prob)
            .outage(ms(outage_start), ms(outage_start + outage_len)),
    );
    let server = rig.server.clone();
    let mut restart_times = restarts.to_vec();
    restart_times.sort_unstable();
    let restarts2 = restart_times.clone();
    sim.spawn("chaos", move |env: Env| {
        for t in restarts2 {
            let now = env.now();
            env.sleep(ms(t).saturating_since(now));
            server.restart(env.now().as_nanos());
        }
    });
    // Quiet point: after the outage is over and the last restart fired
    // (loss alone is ridden out by the retransmission policy).
    let quiet = (outage_start + outage_len).max(restart_times.last().copied().unwrap_or(0)) + 500;
    let (nfs, proxy, cred) = (rig.nfs, rig.proxy.clone(), rig.cred.clone());
    let rounds2 = rounds.to_vec();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh2, _) = nfs.lookup(&env, root, "vm.img").unwrap();
        assert_eq!(fh2, fh);
        for round in &rounds2 {
            for &(b, v) in round {
                nfs.write(
                    &env,
                    fh2,
                    b * BS,
                    payload(b, v),
                    nfs3::proto::StableHow::Unstable,
                )
                .unwrap();
            }
            nfs.commit(&env, fh2).unwrap();
            // Mid-fault flushes may fail blocks; they stay queued.
            let _ = proxy.flush(&env, &cred);
        }
        let now = env.now();
        env.sleep(ms(quiet).saturating_since(now));
        let mut drained = false;
        for _ in 0..8 {
            let report = proxy.flush(&env, &cred);
            if report.failed_blocks == 0 && report.failed_files == 0 {
                drained = true;
                break;
            }
        }
        assert!(drained, "flush must drain once the faults clear");
    });
    sim.run();
    let skips = rig.proxy.stats().dedup_acked_skips;
    let mut f = rig.fs.lock();
    let (bytes, _) = f.read(fh, 0, (BLOCKS * BS) as usize, 0).unwrap();
    (bytes, skips)
}

proptest! {
    /// Under arbitrary loss / outage / restart schedules and arbitrary
    /// re-dirty patterns (including rewrites of identical content — the
    /// acked-skip bait), the dedup'd flush leaves the server
    /// byte-identical to the dedup-off flush, and both match the last
    /// version written per block. A restart between flushes rotates the
    /// server's write verifier, so a skip validated against a stale
    /// verifier would corrupt the off/on equivalence — this is the
    /// executable form of "no acknowledged byte is ever dedup-skipped
    /// incorrectly".
    #[test]
    fn dedup_flush_matches_plain_flush_under_faults(
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u64..BLOCKS, 0u8..2), 1..8),
            1..4,
        ),
        drop_pct in 0u32..3,
        outage_start in 500u64..4000,
        outage_len in 1u64..4000,
        restarts in proptest::collection::vec(500u64..10_000, 0..3),
        fault_seed in any::<u64>(),
    ) {
        let drop_prob = drop_pct as f64 / 100.0;
        let (plain, plain_skips) = run_schedule(
            DedupTuning::off(), &rounds, drop_prob, outage_start, outage_len,
            &restarts, fault_seed,
        );
        let (deduped, _) = run_schedule(
            DedupTuning::default(), &rounds, drop_prob, outage_start, outage_len,
            &restarts, fault_seed,
        );
        prop_assert_eq!(plain_skips, 0);
        // Expected: the last version written per block; zero elsewhere.
        let mut expect = vec![0u8; (BLOCKS * BS) as usize];
        let mut last = [None::<u8>; BLOCKS as usize];
        for round in &rounds {
            for &(b, v) in round {
                last[b as usize] = Some(v);
            }
        }
        for (b, v) in last.iter().enumerate() {
            if let Some(v) = v {
                let lo = b * BS as usize;
                expect[lo..lo + BS as usize].copy_from_slice(&payload(b as u64, *v));
            }
        }
        prop_assert_eq!(&plain, &expect);
        prop_assert_eq!(&deduped, &expect);
    }
}

/// Deterministic acked-skip behaviour: re-dirtying a block with bytes
/// the server already acknowledged is skipped (counted, no WRITE); a
/// server restart invalidates the acked digests and the next flush
/// resends for real.
#[test]
fn unchanged_redirty_skips_and_restart_invalidates() {
    let sim = Simulation::new();
    let rig = build_rig(&sim, DedupTuning::default());
    let fh = seed_file(&rig.fs, "vm.img");
    let server = rig.server.clone();
    let proxy = rig.proxy.clone();
    let (nfs, cred) = (rig.nfs, rig.cred.clone());
    let fs = rig.fs.clone();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh2, _) = nfs.lookup(&env, root, "vm.img").unwrap();
        let dirty_all = |env: &Env| {
            for b in 0..BLOCKS {
                nfs.write(
                    env,
                    fh2,
                    b * BS,
                    payload(b, 1),
                    nfs3::proto::StableHow::Unstable,
                )
                .unwrap();
            }
            nfs.commit(env, fh2).unwrap();
        };
        dirty_all(&env);
        let r1 = proxy.flush(&env, &cred);
        assert_eq!(r1.blocks, BLOCKS);
        assert_eq!(proxy.stats().dedup_acked_skips, 0);

        // Same bytes again: every block skips, nothing crosses the WAN.
        dirty_all(&env);
        let r2 = proxy.flush(&env, &cred);
        assert_eq!(r2.blocks, 0, "unchanged blocks must not be re-sent");
        assert_eq!(r2.failed_blocks, 0);
        assert_eq!(proxy.stats().dedup_acked_skips, BLOCKS);
        assert_eq!(proxy.stats().dedup_bytes_avoided, BLOCKS * BS);

        // Restart rotates the write verifier: the acked digests are no
        // longer trustworthy, so the same bait must be re-sent.
        server.restart(env.now().as_nanos());
        dirty_all(&env);
        let r3 = proxy.flush(&env, &cred);
        assert_eq!(
            r3.blocks, BLOCKS,
            "restart must invalidate acked digests: {r3:?}"
        );
        assert_eq!(r3.failed_blocks, 0);
        assert_eq!(proxy.stats().dedup_acked_skips, BLOCKS, "no new skips");

        // Server ends byte-exact either way.
        let mut f = fs.lock();
        for b in 0..BLOCKS {
            let (data, _) = f.read(fh, b * BS, BS as usize, 0).unwrap();
            assert_eq!(data, payload(b, 1), "block {b} corrupt");
        }
    });
    sim.run();
}

/// The digest-keyed second-level blob cache: two downstream clients
/// fetch two *different files* with identical content through a shared
/// LAN proxy concurrently. Every chunk crosses the upstream link once —
/// requests for a digest already in flight wait on the first fetch
/// (single-flight on content, not on file handle).
#[test]
fn shared_proxy_coalesces_blob_fetches_on_digest() {
    const CHUNK: u32 = 64 * 1024;
    const LEN: usize = 5 * CHUNK as usize + 9000;

    let sim = Simulation::new();
    let h = sim.handle();
    let fs = Arc::new(Mutex::new(Fs::new(0)));
    let disk = Disk::new(&h, DiskModel::server_array());
    let chan_server = FileChannelServer::new(fs.clone(), disk, CodecModel::default(), true);
    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let wan = oncrpc::endpoint(&h, wan_up, wan_down, WireSpec::ssh_tunnel(50e6));
    wan.listener.serve(
        "chan-server",
        Dispatcher::new().register(chan_server).into_handler(),
        8,
    );

    let data: Vec<u8> = (0..LEN as u64)
        .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 23) as u8)
        .collect();
    let (f1, f2) = {
        let mut f = fs.lock();
        let root = f.root();
        let a = f.create(root, "img-a", 0o644, 0).unwrap();
        f.write(a, 0, &data, 0).unwrap();
        let b = f.create(root, "img-b", 0o644, 0).unwrap();
        f.write(b, 0, &data, 0).unwrap();
        (a, b)
    };
    let distinct = chunk_digests(&data, CHUNK)
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
        .len() as u64;

    let cred = OpaqueAuth::sys(&AuthSys::new("lan", 1, 1));
    let upstream = RpcClient::new(wan.channel, cred.clone()).with_policy(RetryPolicy::wan());
    let lan_proxy = Proxy::new(
        ProxyConfig {
            name: "lan-share".into(),
            write_policy: WritePolicy::WriteThrough,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: true,
            transfer: TransferTuning::default(),
            dedup: DedupTuning::default(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        upstream,
    )
    .into_handler();
    let lan_up = Link::new(&h, "lan-up", 1e9, SimDuration::from_micros(100));
    let lan_down = Link::new(&h, "lan-down", 1e9, SimDuration::from_micros(100));
    let lan = oncrpc::endpoint(&h, lan_up, lan_down, WireSpec::plain());
    lan.listener.serve("lan-share", lan_proxy.clone(), 8);

    let mut joins = Vec::new();
    for (i, fh) in [(0, f1), (1, f2)] {
        let chan = ChannelClient::new(
            RpcClient::new(lan.channel.clone(), cred.clone()),
            CodecModel::default(),
        );
        let want = data.clone();
        joins.push(sim.spawn(format!("cloner-{i}"), move |env: Env| {
            let cas = ContentStore::new(1 << 30);
            let dtel = DedupTel::unregistered();
            let df = chan
                .fetch_dedup(&env, fh, None, CHUNK, 4, &cas, &dtel, None)
                .unwrap();
            assert_eq!(df.contents, want, "client {i} got wrong bytes");
        }));
    }
    let _ = joins;
    sim.run();

    let st = lan_proxy.stats();
    // Upstream forwards: one FETCH_RECIPE per file (distinct handles)
    // plus exactly one FETCH_BLOBS per distinct chunk digest — the
    // second file's chunks all ride the first file's fetches.
    assert_eq!(
        st.forwarded,
        2 + distinct,
        "expected digest-coalesced forwards (distinct={distinct}): {st:?}"
    );
    assert!(
        st.dedup_recipe_hits >= distinct,
        "second client must be served from the digest cache: {st:?}"
    );
}

/// A tight retransmission policy so fault-window tests fail RPCs in
/// seconds instead of `RetryPolicy::wan()`'s ~135 s.
fn tight_policy() -> RetryPolicy {
    RetryPolicy {
        first_timeout: SimDuration::from_secs(1),
        max_timeout: SimDuration::from_secs(2),
        max_attempts: 2,
        jitter_frac: 0.0,
    }
}

/// A-B-A regression (block path): an UNSTABLE WRITE whose reply is lost
/// still mutates the server, so the durable ack recorded for the block
/// must die the moment the write is *issued*, not only when it visibly
/// succeeds. Schedule: flush v0 durably (ack recorded); during a
/// reply-direction outage flush v1 — the WRITE applies upstream but the
/// proxy only sees timeouts; revert the block to v0; heal; flush. The
/// final flush must RESEND v0: the pre-outage ack can no longer vouch
/// for what the server holds, which is v1.
#[test]
fn lost_reply_write_invalidates_acked_digest() {
    let sim = Simulation::new();
    let rig = build_rig_with(
        &sim,
        DedupTuning::default(),
        TransferTuning {
            read_ahead: 0,
            flush_retry_rounds: 0,
            ..TransferTuning::default()
        },
        tight_policy(),
    );
    let fh = seed_file(&rig.fs, "vm.img");
    // Replies (only) vanish from t=5 s to t=20 s: requests keep landing
    // on the server, so its state moves while the proxy sees failures.
    rig.wan_down
        .install_faults(LinkFaultPlan::new(7).outage(ms(5_000), ms(20_000)));
    let proxy = rig.proxy.clone();
    let (nfs, cred) = (rig.nfs, rig.cred.clone());
    let fs = rig.fs.clone();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh2, _) = nfs.lookup(&env, root, "vm.img").unwrap();
        let write0 = |env: &Env, v: u8| {
            nfs.write(env, fh2, 0, payload(0, v), nfs3::proto::StableHow::Unstable)
                .unwrap();
            nfs.commit(env, fh2).unwrap();
        };
        // v0 durable: the (digest, verifier) ack is recorded.
        write0(&env, 0);
        let r1 = proxy.flush(&env, &cred);
        assert_eq!(r1.blocks, 1, "healthy flush: {r1:?}");

        // Mid-outage: v1's WRITE reaches the server, every reply is
        // lost, the flush parks the block as failed.
        let now = env.now();
        env.sleep(ms(6_000).saturating_since(now));
        write0(&env, 1);
        let r2 = proxy.flush(&env, &cred);
        assert_eq!(r2.blocks, 0, "outage flush must not complete: {r2:?}");
        assert_eq!(r2.failed_blocks, 1, "outage flush must park v1: {r2:?}");

        // Revert to v0 — the A-B-A bait: identical to the acked bytes,
        // different from what the server now (silently) holds.
        write0(&env, 0);

        let now = env.now();
        env.sleep(ms(21_000).saturating_since(now));
        let r3 = proxy.flush(&env, &cred);
        assert_eq!(r3.failed_blocks, 0, "healed flush must drain: {r3:?}");
        assert_eq!(
            r3.blocks, 1,
            "v0 must be re-sent, not skipped — the server holds v1: {r3:?}"
        );
        assert_eq!(
            proxy.stats().dedup_acked_skips,
            0,
            "no skip may validate against the dead ack"
        );
        let mut f = fs.lock();
        let (data, _) = f.read(fh, 0, BS as usize, 0).unwrap();
        assert_eq!(data, payload(0, 0), "server must end on v0");
    });
    sim.run();
}

/// Torn-upload regression (file path): a failed chunked upload may have
/// durably applied its leading chunks upstream. The synced digest must
/// be cleared before the attempt begins, so a VM rewriting the
/// pre-upload bytes can never match a stale digest and skip the repair
/// upload — leaving the torn file upstream forever.
#[test]
fn failed_upload_clears_synced_digest_and_repairs_torn_file() {
    const CHUNK: u32 = 64 * 1024;
    const LEN: usize = 6 * CHUNK as usize;

    let sim = Simulation::new();
    let h = sim.handle();
    let server_disk = Disk::new(&h, DiskModel::server_array());
    let (fs, server) = Nfs3Server::with_new_fs(&h, server_disk, ServerConfig::default());
    let mount = MountServer::new(fs.clone(), vec!["/".to_string()]);
    let chan_disk = Disk::new(&h, DiskModel::server_array());
    let chan_server = FileChannelServer::new(fs.clone(), chan_disk, CodecModel::default(), true);
    let handler = Dispatcher::new()
        .register(server)
        .register(mount)
        .register(chan_server)
        .into_handler();

    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let ep = oncrpc::endpoint(
        &h,
        wan_up.clone(),
        wan_down.clone(),
        WireSpec::ssh_tunnel(50e6),
    );
    ep.listener.serve("origin", handler, 8);
    // Both directions die after the first upload chunk (or two) lands,
    // and stay dead through the tight policy's retransmits.
    wan_up.install_faults(LinkFaultPlan::new(11).outage(ms(5_250), ms(30_000)));
    wan_down.install_faults(LinkFaultPlan::new(13).outage(ms(5_250), ms(30_000)));

    let cred = OpaqueAuth::sys(&AuthSys::new("dedup", 1, 1));
    let upstream = RpcClient::new(ep.channel.clone(), cred.clone()).with_policy(tight_policy());
    let chan = ChannelClient::new(
        RpcClient::new(ep.channel, cred.clone()).with_policy(tight_policy()),
        CodecModel::default(),
    );
    let cache_disk = Disk::new(&h, DiskModel::scsi_2004());
    let fc = Arc::new(FileCache::new(cache_disk, 256 << 20));
    let proxy = Proxy::new(
        ProxyConfig {
            name: "upload-proxy".into(),
            write_policy: WritePolicy::WriteBack,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning {
                chunk_bytes: CHUNK,
                channel_window: 2,
                read_ahead: 0,
                flush_retry_rounds: 0,
                ..TransferTuning::default()
            },
            dedup: DedupTuning::default(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        upstream,
    )
    .with_file_channel(fc.clone(), chan)
    .into_handler();

    let lo_up = Link::new(&h, "lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(&h, "lo-down", 1e9, SimDuration::from_micros(20));
    let lo = oncrpc::endpoint(&h, lo_up, lo_down, WireSpec::plain());
    lo.listener.serve("proxy", proxy.clone(), 8);
    let nfs = Nfs3Client::new(RpcClient::new(lo.channel, cred.clone()));

    // Pseudo-random (incompressible) so every chunk really occupies the
    // WAN; version B differs from A in every chunk.
    let gen = |salt: u64| -> Vec<u8> {
        (0..LEN as u64)
            .map(|i| {
                let x = i.wrapping_add(salt.wrapping_mul(0x5851_F42D_4C95_7F2D));
                (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 23) as u8
            })
            .collect()
    };
    let a = gen(1);
    let b = gen(2);
    let fh = {
        let mut f = fs.lock();
        let root = f.root();
        let fh = f.create(root, "vm.mem", 0o644, 0).unwrap();
        f.write(fh, 0, &a, 0).unwrap();
        fh
    };
    let key = FileKey {
        fileid: fh.fileid,
        generation: fh.generation,
    };

    let fs2 = fs.clone();
    sim.spawn("client", move |env: Env| {
        // The proxy holds A already (a prior fetch, modelled directly):
        // resident and synced at digest(A).
        fc.install(&env, key, &a);
        assert_eq!(fc.synced_digest(key), Some(digest(&a)));

        let root = nfs.mount(&env, "/").unwrap();
        let (fh2, _) = nfs.lookup(&env, root, "vm.mem").unwrap();

        // The VM rewrites the file to B; the flush upload dies part-way
        // into the outage, leaving a torn (part-B) file upstream.
        nfs.write(&env, fh2, 0, b, nfs3::proto::StableHow::Unstable)
            .unwrap();
        let now = env.now();
        env.sleep(ms(5_000).saturating_since(now));
        let r1 = proxy.flush(&env, &cred);
        assert_eq!(r1.files, 0, "upload must not complete: {r1:?}");
        assert_eq!(r1.failed_files, 1, "upload must fail mid-outage: {r1:?}");
        assert_eq!(
            fc.synced_digest(key),
            None,
            "a failed upload must leave the synced digest cleared"
        );
        {
            let mut f = fs2.lock();
            let (got, _) = f.read(fh, 0, LEN, 0).unwrap();
            assert_ne!(got, a, "rig: at least one B chunk must land (torn)");
        }

        // The VM rewrites the original bytes A — the stale-digest bait.
        nfs.write(&env, fh2, 0, a.clone(), nfs3::proto::StableHow::Unstable)
            .unwrap();
        let now = env.now();
        env.sleep(ms(31_000).saturating_since(now));
        let r2 = proxy.flush(&env, &cred);
        assert_eq!(r2.failed_files, 0, "healed flush must drain: {r2:?}");
        assert_eq!(r2.files, 1, "repair upload must run, not skip: {r2:?}");
        assert_eq!(
            proxy.stats().dedup_acked_skips,
            0,
            "nothing may skip against the cleared digest"
        );
        assert_eq!(
            fc.synced_digest(key),
            Some(digest(&a)),
            "completed repair reinstates the synced digest"
        );
        let mut f = fs2.lock();
        let (got, _) = f.read(fh, 0, LEN, 0).unwrap();
        assert_eq!(got, a, "server must hold A after the repair upload");
    });
    sim.run();
}

/// A FETCH_BLOBS reply may only be cached under a digest if its payload
/// actually hashes to that digest: the origin serves by byte range and
/// ignores the digest field, so a request carrying a wrong digest (e.g.
/// recipe drift while the file is rewritten) must not poison the shared
/// digest-keyed cache for every downstream client.
#[test]
fn blob_cache_rejects_payload_digest_mismatch() {
    const CHUNK: u32 = 64 * 1024;

    let sim = Simulation::new();
    let h = sim.handle();
    let fs = Arc::new(Mutex::new(Fs::new(0)));
    let disk = Disk::new(&h, DiskModel::server_array());
    let chan_server = FileChannelServer::new(fs.clone(), disk, CodecModel::default(), true);
    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let wan = oncrpc::endpoint(&h, wan_up, wan_down, WireSpec::ssh_tunnel(50e6));
    wan.listener.serve(
        "chan-server",
        Dispatcher::new().register(chan_server).into_handler(),
        8,
    );

    let data: Vec<u8> = (0..CHUNK as u64)
        .map(|i| (i.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 17) as u8)
        .collect();
    let fh = {
        let mut f = fs.lock();
        let root = f.root();
        let fh = f.create(root, "img", 0o644, 0).unwrap();
        f.write(fh, 0, &data, 0).unwrap();
        fh
    };

    let cred = OpaqueAuth::sys(&AuthSys::new("lan", 1, 1));
    let upstream = RpcClient::new(wan.channel, cred.clone()).with_policy(RetryPolicy::wan());
    let lan_proxy = Proxy::new(
        ProxyConfig {
            name: "lan-share".into(),
            write_policy: WritePolicy::WriteThrough,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: true,
            transfer: TransferTuning::default(),
            dedup: DedupTuning::default(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        upstream,
    )
    .into_handler();
    let lan_up = Link::new(&h, "lan-up", 1e9, SimDuration::from_micros(100));
    let lan_down = Link::new(&h, "lan-down", 1e9, SimDuration::from_micros(100));
    let lan = oncrpc::endpoint(&h, lan_up, lan_down, WireSpec::plain());
    lan.listener.serve("lan-share", lan_proxy.clone(), 8);

    let right = digest(&data);
    let wrong = digest(b"a digest from a stale recipe");
    assert_ne!(right, wrong);

    let rpc = RpcClient::new(lan.channel, cred);
    let proxy2 = lan_proxy.clone();
    sim.spawn("client", move |env: Env| {
        let fetch = |env: &Env, d: Digest| -> Vec<u8> {
            let mut enc = Encoder::new();
            Fh3(fh).encode(&mut enc);
            enc.put_u64(0);
            enc.put_u32(CHUNK);
            enc.put_u64(d.0);
            enc.put_u64(d.1);
            rpc.call_dl(
                env,
                CHANNEL_PROGRAM,
                CHANNEL_V1,
                chanproc::FETCH_BLOBS,
                &enc.into_bytes(),
            )
            .unwrap()
            .to_vec()
        };
        // Wrong digest: the origin happily serves the range, but the
        // proxy must not cache the reply under it — both requests
        // forward upstream.
        let r1 = fetch(&env, wrong);
        assert_eq!(proxy2.stats().forwarded, 1);
        let r2 = fetch(&env, wrong);
        assert_eq!(
            proxy2.stats().forwarded,
            2,
            "a reply that fails digest verification must not be cached"
        );
        assert_eq!(r1, r2, "pass-through replies must still reach the client");
        // Right digest: first forwards (and now caches), second is
        // served locally.
        let _ = fetch(&env, right);
        assert_eq!(proxy2.stats().forwarded, 3);
        let _ = fetch(&env, right);
        assert_eq!(
            proxy2.stats().forwarded,
            3,
            "a verified reply must be served from the digest cache"
        );
    });
    sim.run();
}
