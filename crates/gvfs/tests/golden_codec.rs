//! Golden-vector suite pinning the GZRL codec stream format.
//!
//! The fixture under `tests/golden/codec.hex` was generated from
//! `gvfs::codec::compress` as it stood before the zero-copy refactor and
//! the u32-boundary fix; every input here is far below the 4 GiB record
//! boundary, so the fixed encoder must keep producing identical streams.
//! Regenerate (only on an intentional format change) with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p gvfs --test golden_codec
//! ```

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gvfs::codec::{compress, decompress};

const FIXTURE: &str = include_str!("golden/codec.hex");

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn prng_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut s = seed;
    while out.len() < len {
        s = splitmix64(s);
        out.extend_from_slice(&s.to_be_bytes());
    }
    out.truncate(len);
    out
}

/// Inputs the fixture pins: every record shape the format has (zero runs,
/// byte runs, literals), run lengths straddling the MIN_RUN threshold, and
/// a memory-image-like mix. Append-only.
fn golden_inputs() -> Vec<Vec<u8>> {
    let mut inputs: Vec<Vec<u8>> = vec![
        Vec::new(),
        b"hello world".to_vec(),
        (0..=255u8).collect(),
        vec![0u8; 15], // zero run just below MIN_RUN: stays literal
        vec![0u8; 16], // exactly MIN_RUN: becomes a zero-run record
        vec![0u8; 4096],
        vec![0xABu8; 15],
        vec![0xABu8; 16],
        vec![0xABu8; 4096],
    ];
    // Memory-image-like: zero pages interleaved with sparse content.
    let mut img = vec![0u8; 16_384];
    for i in 0..16 {
        let off = i * 1024;
        for j in 0..(64 + i * 7) {
            img[off + j] = ((i * 31 + j * 7) % 251) as u8;
        }
    }
    inputs.push(img);
    // Runs embedded mid-literal, tail literal after a run.
    let mut mixed = b"prefix-".to_vec();
    mixed.extend_from_slice(&[0x5A; 100]);
    mixed.extend_from_slice(b"-mid-");
    mixed.extend_from_slice(&[0x00; 33]);
    mixed.extend_from_slice(b"-tail");
    inputs.push(mixed);
    // Incompressible PRNG data (no 16-byte runs in practice).
    inputs.push(prng_bytes(0x5EED, 2048));
    inputs
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn from_hex(line: &str) -> Vec<u8> {
    (0..line.len())
        .step_by(2)
        .map(|k| u8::from_str_radix(&line[k..k + 2], 16).unwrap())
        .collect()
}

fn render_fixture() -> String {
    let mut out = String::new();
    for input in golden_inputs() {
        out.push_str(&to_hex(&compress(&input)));
        out.push('\n');
    }
    out
}

#[test]
fn golden_streams_are_byte_identical() {
    let rendered = render_fixture();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/codec.hex");
        std::fs::write(path, &rendered).unwrap();
        return;
    }
    let expected: Vec<&str> = FIXTURE.lines().collect();
    let actual: Vec<String> = rendered.lines().map(str::to_owned).collect();
    assert_eq!(expected.len(), actual.len(), "golden stream count drifted");
    for (i, (exp, act)) in expected.iter().zip(actual.iter()).enumerate() {
        assert_eq!(
            *exp, act,
            "compressed stream of golden input #{i} drifted from the pinned format"
        );
    }
}

#[test]
fn golden_streams_decompress_to_original_inputs() {
    let inputs = golden_inputs();
    for (i, line) in FIXTURE.lines().enumerate() {
        let decoded = decompress(&from_hex(line))
            .unwrap_or_else(|e| panic!("golden stream #{i} failed to decompress: {e:?}"));
        assert_eq!(
            decoded, inputs[i],
            "golden stream #{i} decompressed to different bytes"
        );
    }
}
