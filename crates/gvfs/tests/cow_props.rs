//! Copy-on-write reference-install correctness (DESIGN.md §5.9): a
//! clone whose golden image installs as a *reference file* (recipe of
//! digests resolved against the proxy's CAS) must be indistinguishable
//! from one installed as a materialized byte copy — byte-identical
//! guest-visible reads before and after divergence, and a byte-identical
//! origin after flush — including under packet loss and WAN outages.

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use gvfs::{
    ChannelClient, CodecModel, CowTuning, DedupTuning, FileCache, FileChannelServer,
    FileChannelSpec, Middleware, Proxy, ProxyConfig, TransferTuning, WritePolicy,
};
use nfs3::{MountServer, Nfs3Client, Nfs3Server, ServerConfig};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RetryPolicy, RpcClient, WireSpec};
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{Env, Link, LinkFaultPlan, SimDuration, SimTime, Simulation};
use vfs::{Disk, DiskModel, Fs, Handle};

const CHUNK: u32 = 32 * 1024;
const BLOCKS: u64 = 8;
const LEN: u64 = BLOCKS * CHUNK as u64;

fn ms(v: u64) -> SimTime {
    SimTime::from_nanos(v * 1_000_000)
}

struct Rig {
    fs: Arc<Mutex<Fs>>,
    proxy: Arc<Proxy>,
    nfs: Nfs3Client,
    cred: OpaqueAuth,
    wan_up: Link,
    wan_down: Link,
}

/// A meta-handling write-back client proxy with a file channel over a
/// faultable WAN (the cloning data path, parameterized on CoW). Dedup is
/// on in both lanes so the comparison isolates the reference install
/// from the CAS itself.
fn build_rig(sim: &Simulation, cow: CowTuning) -> Rig {
    let h = sim.handle();
    let server_disk = Disk::new(&h, DiskModel::server_array());
    let (fs, server) = Nfs3Server::with_new_fs(&h, server_disk, ServerConfig::default());
    let mount = MountServer::new(fs.clone(), vec!["/".to_string()]);
    let chan_disk = Disk::new(&h, DiskModel::server_array());
    let chan_server = FileChannelServer::new(fs.clone(), chan_disk, CodecModel::default(), true);
    let handler = Dispatcher::new()
        .register(server)
        .register(mount)
        .register(chan_server)
        .into_handler();

    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let ep = oncrpc::endpoint(
        &h,
        wan_up.clone(),
        wan_down.clone(),
        WireSpec::ssh_tunnel(50e6),
    );
    ep.listener.serve("origin", handler, 8);

    let cred = OpaqueAuth::sys(&AuthSys::new("cow", 1, 1));
    let upstream = RpcClient::new(ep.channel.clone(), cred.clone()).with_policy(RetryPolicy::wan());
    let chan = ChannelClient::new(
        RpcClient::new(ep.channel, cred.clone()).with_policy(RetryPolicy::wan()),
        CodecModel::default(),
    );
    let cache_disk = Disk::new(&h, DiskModel::scsi_2004());
    let fc = Arc::new(FileCache::new(cache_disk, 256 << 20));
    let proxy = Proxy::new(
        ProxyConfig {
            name: "cow-proxy".into(),
            write_policy: WritePolicy::WriteBack,
            meta_handling: true,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning {
                chunk_bytes: CHUNK,
                read_ahead: 0,
                ..TransferTuning::default()
            },
            dedup: DedupTuning::default(),
            fleet: gvfs::FleetTuning::off(),
            cow,
        },
        upstream,
    )
    .with_file_channel(fc, chan)
    .into_handler();

    let lo_up = Link::new(&h, "lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(&h, "lo-down", 1e9, SimDuration::from_micros(20));
    let lo = oncrpc::endpoint(&h, lo_up, lo_down, WireSpec::plain());
    lo.listener.serve("proxy", proxy.clone(), 8);
    let nfs = Nfs3Client::new(RpcClient::new(lo.channel, cred.clone()));

    Rig {
        fs,
        proxy,
        nfs,
        cred,
        wan_up,
        wan_down,
    }
}

/// Deterministic payload for block `b`, content version `v` (v=0 is the
/// golden image; no 32 KiB block is all-zero, so the zero-map plays no
/// part in either lane).
fn payload(b: u64, v: u8) -> Vec<u8> {
    (0..CHUNK)
        .map(|i| (i as u64 * 31 + b * 17 + v as u64 * 101).wrapping_rem(249) as u8)
        .collect()
}

/// Seed the golden image on the origin and publish its middleware meta
/// (content map + channel spec) so the proxy's first READ installs it
/// through the file channel.
fn seed_golden(fs: &Arc<Mutex<Fs>>) -> Handle {
    let mut f = fs.lock();
    let root = f.root();
    let fh = f.create(root, "golden.vmss", 0o644, 0).unwrap();
    for b in 0..BLOCKS {
        f.write(fh, b * CHUNK as u64, &payload(b, 0), 0).unwrap();
    }
    drop(f);
    {
        let mut f = fs.lock();
        Middleware::generate_meta(
            &mut f,
            "",
            "golden.vmss",
            CHUNK,
            true,
            Some(FileChannelSpec {
                compress: true,
                writeback: false,
            }),
        )
        .unwrap();
    }
    fh
}

/// One full clone-lifecycle run under a fault schedule: install via
/// first read, diverge some blocks, read the guest view again, flush
/// once the faults clear. Returns (guest view before writes, guest view
/// after writes, final origin bytes, cow ref installs).
fn run_schedule(
    cow: CowTuning,
    rounds: &[Vec<(u64, u8)>],
    drop_prob: f64,
    outage_start: u64,
    outage_len: u64,
    fault_seed: u64,
) -> (Vec<u8>, Vec<u8>, Vec<u8>, u64) {
    let sim = Simulation::new();
    let rig = build_rig(&sim, cow);
    let fh = seed_golden(&rig.fs);
    rig.wan_up.install_faults(
        LinkFaultPlan::new(fault_seed | 1)
            .drop_prob(drop_prob)
            .outage(ms(outage_start), ms(outage_start + outage_len)),
    );
    rig.wan_down.install_faults(
        LinkFaultPlan::new(fault_seed.wrapping_add(2) | 1)
            .drop_prob(drop_prob)
            .outage(ms(outage_start), ms(outage_start + outage_len)),
    );
    // Quiet point: past the outage (loss alone is ridden out by the
    // retransmission policy).
    let quiet = outage_start + outage_len + 500;
    let out = Arc::new(Mutex::new((Vec::new(), Vec::new())));
    let out2 = out.clone();
    let (nfs, proxy, cred) = (rig.nfs, rig.proxy.clone(), rig.cred.clone());
    let rounds2 = rounds.to_vec();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh2, _) = nfs.lookup(&env, root, "golden.vmss").unwrap();
        assert_eq!(fh2, fh);
        let read_all = |env: &Env| {
            let mut got = Vec::new();
            let mut off = 0u64;
            while off < LEN {
                let r = nfs.read(env, fh2, off, CHUNK).unwrap();
                off += r.data.len() as u64;
                got.extend_from_slice(&r.data);
            }
            got
        };
        // Clone install: the first read pulls the image through the
        // channel (reference install with CoW on, materialized with it
        // off) — the pre-divergence guest view.
        let before = read_all(&env);
        // Divergence: each round breaks sharing for the blocks it
        // touches; mid-fault flushes may fail and stay queued.
        for round in &rounds2 {
            for &(b, v) in round {
                nfs.write(
                    &env,
                    fh2,
                    b * CHUNK as u64,
                    payload(b, v),
                    nfs3::proto::StableHow::Unstable,
                )
                .unwrap();
            }
            nfs.commit(&env, fh2).unwrap();
            let _ = proxy.flush(&env, &cred);
        }
        let after = read_all(&env);
        let now = env.now();
        env.sleep(ms(quiet).saturating_since(now));
        let mut drained = false;
        for _ in 0..8 {
            let report = proxy.flush(&env, &cred);
            if report.failed_blocks == 0 && report.failed_files == 0 {
                drained = true;
                break;
            }
        }
        assert!(drained, "flush must drain once the faults clear");
        *out2.lock() = (before, after);
    });
    let h = sim.handle();
    sim.run();
    let installs = h
        .telemetry()
        .snapshot()
        .counter_sum("gvfs", ".cow.ref_installs");
    let (before, after) = std::mem::take(&mut *out.lock());
    let mut f = rig.fs.lock();
    let (server, _) = f.read(fh, 0, LEN as usize, 0).unwrap();
    (before, after, server, installs)
}

/// The golden bytes overlaid with the last version written per block.
fn expected_after(rounds: &[Vec<(u64, u8)>]) -> Vec<u8> {
    let mut last = [0u8; BLOCKS as usize];
    for round in rounds {
        for &(b, v) in round {
            last[b as usize] = v;
        }
    }
    let mut bytes = Vec::with_capacity(LEN as usize);
    for (b, v) in last.iter().enumerate() {
        bytes.extend_from_slice(&payload(b as u64, *v));
    }
    bytes
}

proptest! {
    /// Under arbitrary divergence patterns and loss / outage schedules,
    /// a CoW reference install is observationally identical to a full
    /// materialized install: the guest reads the same bytes before and
    /// after diverging, and the origin holds the same bytes after the
    /// flush drains — which must equal the last version written per
    /// block. This is the executable form of "a reference file is a
    /// cache entry, not a different file".
    #[test]
    fn cow_clone_matches_full_install(
        rounds in proptest::collection::vec(
            proptest::collection::vec((0u64..BLOCKS, 1u8..3), 1..6),
            1..3,
        ),
        drop_pct in 0u32..3,
        outage_start in 500u64..3000,
        outage_len in 1u64..3000,
        fault_seed in any::<u64>(),
    ) {
        let drop_prob = drop_pct as f64 / 100.0;
        let (full_before, full_after, full_server, full_installs) = run_schedule(
            CowTuning::off(), &rounds, drop_prob, outage_start, outage_len, fault_seed,
        );
        let (cow_before, cow_after, cow_server, _) = run_schedule(
            CowTuning::on(), &rounds, drop_prob, outage_start, outage_len, fault_seed,
        );
        prop_assert_eq!(full_installs, 0);
        prop_assert_eq!(&cow_before, &full_before);
        prop_assert_eq!(&cow_after, &full_after);
        prop_assert_eq!(&cow_server, &full_server);
        // Both lanes must also be *right*, not just agree.
        let golden: Vec<u8> = (0..BLOCKS).flat_map(|b| payload(b, 0)).collect();
        prop_assert_eq!(&full_before, &golden);
        let expect = expected_after(&rounds);
        prop_assert_eq!(&full_after, &expect);
        prop_assert_eq!(&full_server, &expect);
    }
}

/// Fault-free sanity for the property above: the CoW lane really serves
/// through a reference install (one per image, not a materialized copy),
/// so the proptest's equivalence is not vacuously comparing two
/// materialized lanes.
#[test]
fn cow_lane_actually_installs_a_reference() {
    let rounds = vec![vec![(2u64, 1u8), (5, 2)]];
    let (_, after, server, installs) = run_schedule(CowTuning::on(), &rounds, 0.0, 500, 1, 99);
    assert_eq!(
        installs, 1,
        "first read must install the image as a reference"
    );
    let expect = expected_after(&rounds);
    assert_eq!(after, expect);
    assert_eq!(server, expect);
}
