//! Equivalence: the windowed write-back flush must push exactly the same
//! `(file, offset, bytes)` set upstream as the serial flush, report the
//! same totals, and leave the server file byte-identical — parallelism
//! may only change *when* WRITEs happen, never *what* is written.

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeSet;
use std::sync::Arc;

use gvfs::{
    BlockCache, BlockCacheConfig, DedupTuning, FlushReport, Proxy, ProxyConfig, TransferTuning,
    WritePolicy,
};
use nfs3::{args::WriteArgs, MountServer, Nfs3Client, Nfs3Server, ServerConfig, NFS_PROGRAM};
use oncrpc::{transport::RpcHandler, AuthSys, Dispatcher, OpaqueAuth, RpcClient, WireSpec};
use parking_lot::Mutex;
use simnet::{Env, Link, SimDuration, Simulation};
use vfs::{Disk, DiskModel};

/// One WRITE observed at the server: (fileid, generation, offset, data).
type WriteRec = (u64, u64, u64, Vec<u8>);
type WriteLog = Arc<Mutex<BTreeSet<WriteRec>>>;

/// Run one dirty-cache flush with the given window and return what the
/// server saw: the WRITE set, the flush report, and the file contents.
fn run_flush(flush_window: usize) -> (BTreeSet<WriteRec>, FlushReport, Vec<u8>) {
    let sim = Simulation::new();
    let h = sim.handle();

    let server_disk = Disk::new(&h, DiskModel::server_array());
    let (fs, server) = Nfs3Server::with_new_fs(&h, server_disk, ServerConfig::default());
    let mount = MountServer::new(fs.clone(), vec!["/".to_string()]);
    let inner = Dispatcher::new()
        .register(server)
        .register(mount)
        .into_handler();
    let log: WriteLog = Arc::new(Mutex::new(BTreeSet::new()));
    let log2 = log.clone();
    let recording: Arc<dyn RpcHandler> = Arc::new(move |env: &Env, req: &[u8]| {
        if let Ok(oncrpc::RpcMessage::Call { header, args }) = xdr::from_bytes(req) {
            if header.prog == NFS_PROGRAM && header.proc == nfs3::proto::proc3::WRITE {
                if let Ok(w) = xdr::from_bytes::<WriteArgs>(&args) {
                    log2.lock()
                        .insert((w.file.0.fileid, w.file.0.generation, w.offset, w.data));
                }
            }
        }
        inner.handle(env, &req.into()).to_vec()
    });

    let up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let ep = oncrpc::endpoint(&h, up, down, WireSpec::ssh_tunnel(50e6));
    ep.listener.serve("nfsd", recording, 8);

    let cred = OpaqueAuth::sys(&AuthSys::new("flush", 1, 1));
    let cache_disk = Disk::new(&h, DiskModel::scsi_2004());
    let proxy = Proxy::new(
        ProxyConfig {
            name: "flush-proxy".into(),
            write_policy: WritePolicy::WriteBack,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning {
                flush_window,
                read_ahead: 0,
                ..TransferTuning::default()
            },
            // Exact WRITE/COMMIT interleavings are pinned here.
            dedup: DedupTuning::off(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        RpcClient::new(ep.channel, cred.clone()),
    )
    .with_block_cache(Arc::new(BlockCache::new(
        &h,
        cache_disk,
        BlockCacheConfig::with_capacity(256 << 20, 64, 16, 32 * 1024),
    )))
    .into_handler();

    // Seed two files on the server so the flush covers several files with
    // several blocks each (deterministic per-file commit ordering).
    let fhs = {
        let mut f = fs.lock();
        let root = f.root();
        let a = f.create(root, "a.img", 0o644, 0).unwrap();
        let b = f.create(root, "b.img", 0o644, 0).unwrap();
        f.setattr(a, Some(20 * 32 * 1024), None, 0).unwrap();
        // b gets a size that clips its last dirty block mid-way.
        f.setattr(b, Some(12 * 32 * 1024 + 1000), None, 0).unwrap();
        [a, b]
    };

    let lo_up = Link::new(&h, "lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(&h, "lo-down", 1e9, SimDuration::from_micros(20));
    let lo = oncrpc::endpoint(&h, lo_up, lo_down, WireSpec::plain());
    lo.listener.serve("proxy", proxy.clone(), 8);
    let nfs = Nfs3Client::new(RpcClient::new(lo.channel, cred.clone()));

    let out: Arc<Mutex<Option<FlushReport>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let proxy2 = proxy.clone();
    sim.spawn("client", move |env: Env| {
        // Dirty a spread of distinct-content blocks across both files
        // (write-back absorbs them into the cache).
        for (fi, fh) in fhs.iter().enumerate() {
            let blocks: u64 = if fi == 0 { 20 } else { 13 };
            for b in 0..blocks {
                let data: Vec<u8> = (0..32 * 1024u32)
                    .map(|i| ((i as u64 + b * 7 + fi as u64 * 131) % 251) as u8)
                    .collect();
                nfs.write(
                    &env,
                    *fh,
                    b * 32 * 1024,
                    data,
                    nfs3::proto::StableHow::Unstable,
                )
                .unwrap();
            }
            nfs.commit(&env, *fh).unwrap();
        }
        let report = proxy2.flush(&env, &cred);
        *out2.lock() = Some(report);
    });
    sim.run();

    let writes = log.lock().clone();
    let report = out.lock().unwrap();
    let contents = {
        let mut f = fs.lock();
        let (mut data, _) = f.read(fhs[0], 0, 20 * 32 * 1024, 0).unwrap();
        let (more, _) = f.read(fhs[1], 0, 12 * 32 * 1024 + 1000, 0).unwrap();
        data.extend(more);
        data
    };
    (writes, report, contents)
}

#[test]
fn windowed_flush_is_equivalent_to_serial() {
    let (serial_writes, serial_report, serial_contents) = run_flush(1);
    let (win_writes, win_report, win_contents) = run_flush(8);

    // The serial run actually flushed something non-trivial.
    assert_eq!(serial_report.blocks, 33);
    assert_eq!(serial_report.failed_blocks, 0);
    assert!(!serial_writes.is_empty());

    // Same (file, offset, bytes) set, same report, same server bytes.
    assert_eq!(serial_writes, win_writes);
    assert_eq!(serial_report, win_report);
    assert_eq!(serial_contents, win_contents);
}
