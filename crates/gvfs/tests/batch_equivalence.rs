//! Batched multi-digest FETCH_BLOBS equivalence: a `FETCH_BLOBS_BATCH`
//! envelope must be *byte*-equivalent to the N sequential `FETCH_BLOBS`
//! round-trips it replaces — under the fault schedules of the recovery
//! suite (packet loss + WAN outages ridden out by the retransmission
//! policy), both directly against the origin and through a batching
//! shard proxy. The origin charges contiguous recipe-ordered records as
//! streaming continuations instead of fresh seeks; that is a *timing*
//! model only and must never leak into payload bytes.

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use gvfs::digest::digest;
use gvfs::{
    ChannelClient, CodecModel, ContentStore, DedupTel, DedupTuning, FileChannelServer, FleetTuning,
    Proxy, ProxyConfig, TransferTuning, WritePolicy,
};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RetryPolicy, RpcClient, WireSpec};
use parking_lot::Mutex;
use proptest::prelude::*;
use simnet::{Env, Link, LinkFaultPlan, SimDuration, SimTime, Simulation};
use vfs::{Disk, DiskModel, Fs};

const CHUNK: u32 = 8 * 1024;

fn ms(v: u64) -> SimTime {
    SimTime::from_nanos(v * 1_000_000)
}

/// Deterministic chunk payload for content version `v`. Versions repeat
/// across the file, so the recipe carries duplicate digests and the
/// planner exercises its duplicate-group slots alongside fresh misses.
fn chunk_payload(v: u8) -> Vec<u8> {
    (0..CHUNK as u64)
        .map(|i| (i.wrapping_mul(31).wrapping_add(v as u64 * 101) % 251) as u8)
        .collect()
}

/// A file of versioned chunks plus a short tail (so the last record is
/// not chunk-aligned).
fn build_file(versions: &[u8], tail: usize) -> Vec<u8> {
    let mut data = Vec::with_capacity(versions.len() * CHUNK as usize + tail);
    for &v in versions {
        data.extend_from_slice(&chunk_payload(v));
    }
    data.extend((0..tail as u64).map(|i| (i % 199) as u8));
    data
}

/// WAN fault schedule: probabilistic loss plus one outage window. The
/// clients ride on [`RetryPolicy::wan`], whose retransmit budget far
/// exceeds the longest schedule generated here, so every fetch must
/// eventually succeed — the property is about the *bytes* it returns.
#[derive(Clone, Copy)]
struct FaultPlan {
    drop_prob: f64,
    outage_start: u64,
    outage_len: u64,
    seed: u64,
}

impl FaultPlan {
    fn install(&self, up: &Link, down: &Link) {
        up.install_faults(
            LinkFaultPlan::new(self.seed | 1)
                .drop_prob(self.drop_prob)
                .outage(
                    ms(self.outage_start),
                    ms(self.outage_start + self.outage_len),
                ),
        );
        down.install_faults(
            LinkFaultPlan::new(self.seed.wrapping_add(2) | 1)
                .drop_prob(self.drop_prob)
                .outage(
                    ms(self.outage_start),
                    ms(self.outage_start + self.outage_len),
                ),
        );
    }
}

/// One fetch run: an origin channel server behind a faulted WAN, an
/// optional shard proxy (dedup + the given fleet tuning) in between, and
/// a single client doing `fetch_dedup_batched` with the given envelope
/// size. Returns the reassembled contents and, when a shard was present,
/// its `(envelopes, sub-calls)` batch counters.
fn run_fetch(
    data: &[u8],
    batch: usize,
    window: usize,
    shard: Option<FleetTuning>,
    faults: FaultPlan,
) -> (Vec<u8>, (u64, u64)) {
    let sim = Simulation::new();
    let h = sim.handle();
    let fs = Arc::new(Mutex::new(Fs::new(0)));
    let disk = Disk::new(&h, DiskModel::server_array());
    let chan_server = FileChannelServer::new(fs.clone(), disk, CodecModel::default(), true);
    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    faults.install(&wan_up, &wan_down);
    let wan = oncrpc::endpoint(&h, wan_up, wan_down, WireSpec::ssh_tunnel(50e6));
    wan.listener.serve(
        "origin",
        Dispatcher::new().register(chan_server).into_handler(),
        8,
    );

    let fh = {
        let mut f = fs.lock();
        let root = f.root();
        let fh = f.create(root, "img", 0o644, 0).unwrap();
        f.write(fh, 0, data, 0).unwrap();
        fh
    };

    let cred = OpaqueAuth::sys(&AuthSys::new("fleet", 1, 1));
    // The channel the client ends up talking to: the WAN directly, or a
    // shard proxy one clean LAN hop closer.
    let (client_channel, shard_proxy) = match shard {
        None => (wan.channel, None),
        Some(fleet) => {
            let upstream =
                RpcClient::new(wan.channel, cred.clone()).with_policy(RetryPolicy::wan());
            let proxy = Proxy::new(
                ProxyConfig {
                    name: "shard".into(),
                    write_policy: WritePolicy::WriteThrough,
                    meta_handling: false,
                    per_op_cpu: SimDuration::from_micros(40),
                    read_only_share: true,
                    transfer: TransferTuning::default(),
                    dedup: DedupTuning::default(),
                    fleet,
                    cow: gvfs::CowTuning::off(),
                },
                upstream,
            )
            .into_handler();
            let lan_up = Link::new(&h, "lan-up", 1e9, SimDuration::from_micros(100));
            let lan_down = Link::new(&h, "lan-down", 1e9, SimDuration::from_micros(100));
            let lan = oncrpc::endpoint(&h, lan_up, lan_down, WireSpec::plain());
            lan.listener.serve("shard", proxy.clone(), 8);
            (lan.channel, Some(proxy))
        }
    };

    let chan = ChannelClient::new(
        RpcClient::new(client_channel, cred).with_policy(RetryPolicy::wan()),
        CodecModel::default(),
    );
    let got: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let got2 = got.clone();
    sim.spawn("cloner", move |env: Env| {
        let cas = ContentStore::new(1 << 30);
        let dtel = DedupTel::unregistered();
        let df = chan
            .fetch_dedup_batched(&env, fh, None, CHUNK, window, batch, &cas, &dtel, None)
            .unwrap();
        *got2.lock() = Some(df.contents);
    });
    sim.run();
    let batch_stats = shard_proxy.map(|p| p.fleet_batch_stats()).unwrap_or((0, 0));
    let contents = got.lock().take().expect("fetch must complete");
    (contents, batch_stats)
}

proptest! {
    /// Under arbitrary chunk-version layouts (duplicates included),
    /// envelope sizes, pipeline windows and loss/outage schedules, the
    /// batched fetch returns exactly the bytes of the sequential fetch —
    /// and both are exactly the file — whether the envelopes hit the
    /// origin directly or are unpacked, deduped and re-batched by a
    /// shard proxy.
    #[test]
    fn batched_fetch_matches_sequential_under_faults(
        versions in proptest::collection::vec(0u8..5, 2..12),
        tail in 0usize..(CHUNK as usize),
        window in 1usize..5,
        batch in 2usize..40,
        drop_pct in 0u32..3,
        outage_start in 0u64..1500,
        outage_len in 1u64..2000,
        fault_seed in any::<u64>(),
    ) {
        let data = build_file(&versions, tail);
        let faults = FaultPlan {
            drop_prob: drop_pct as f64 / 100.0,
            outage_start,
            outage_len,
            seed: fault_seed,
        };
        let (sequential, _) = run_fetch(&data, 1, window, None, faults);
        let (batched, _) = run_fetch(&data, batch, window, None, faults);
        let (via_shard, (envelopes, items)) =
            run_fetch(&data, batch, window, Some(FleetTuning::shard()), faults);
        prop_assert_eq!(digest(&sequential), digest(&data));
        prop_assert_eq!(&sequential, &data);
        prop_assert_eq!(&batched, &data);
        prop_assert_eq!(&via_shard, &data);
        // The shard really took the envelope path: at least one upstream
        // round for the cold misses, never more sub-calls than rounds
        // could carry.
        prop_assert!(envelopes >= 1, "shard must issue batched rounds");
        prop_assert!(items >= envelopes);
    }
}

/// Contiguous-span accounting at the origin (adjacent records charged as
/// streaming continuations) is timing-only: every envelope split point
/// yields identical bytes, and a batch bigger than the whole recipe
/// degenerates to one envelope without error.
#[test]
fn envelope_split_points_do_not_change_bytes() {
    let versions: Vec<u8> = (0..10).map(|i| (i % 4) as u8).collect();
    let data = build_file(&versions, 1234);
    let clean = FaultPlan {
        drop_prob: 0.0,
        outage_start: 0,
        outage_len: 1,
        seed: 1,
    };
    let (baseline, _) = run_fetch(&data, 1, 4, None, clean);
    assert_eq!(baseline, data);
    for batch in [2, 3, 5, 7, 64] {
        let (got, _) = run_fetch(&data, batch, 4, None, clean);
        assert_eq!(got, baseline, "batch={batch} changed payload bytes");
        let (via_shard, (envelopes, _)) =
            run_fetch(&data, batch, 4, Some(FleetTuning::shard()), clean);
        assert_eq!(via_shard, baseline, "batch={batch} via shard changed bytes");
        assert!(envelopes >= 1);
    }
}
