//! Property-based invariants for the GVFS data structures.

use gvfs::block_cache::{BlockCache, BlockCacheConfig, Tag};
use gvfs::meta::{generate_content_map, ContentMap, MetaFile, ZeroMap};
use gvfs::{codec, Digest, FileChannelSpec};
use gvfs::{ChannelClient, CodecModel, ContentStore, DedupTel, FileChannelServer};
use gvfs::{FileCache, FileKey};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RpcClient, WireSpec};
use proptest::prelude::*;
use simnet::{Link, SimDuration, Simulation};
use std::sync::Arc;
use vfs::{Disk, DiskModel, Fs};

proptest! {
    /// `bytes_stored` tracks the exact sum of resident frame payloads
    /// through arbitrary interleavings of insert (including overwrites
    /// and evictions — the tiny geometry forces them constantly),
    /// growing partial updates, flushes, and clears.
    #[test]
    fn block_cache_byte_accounting_never_drifts(
        ops in proptest::collection::vec(
            (0u8..6, 1u64..4, 0u64..16, 0usize..1025, any::<bool>()),
            1..200,
        )
    ) {
        let sim = Simulation::new();
        let h = sim.handle();
        let disk = Disk::new(&h, DiskModel::scsi_2004());
        // 2 banks × 2 sets × 2-way, 1 KB blocks: 8 frames total, so a
        // few dozen inserts guarantee heavy eviction traffic.
        let cache = std::sync::Arc::new(BlockCache::new(
            &h,
            disk,
            BlockCacheConfig {
                banks: 2,
                sets_per_bank: 2,
                assoc: 2,
                block_size: 1024,
            },
        ));
        let c = cache.clone();
        sim.spawn("ops", move |env| {
            for (op, file, block, len, dirty) in ops {
                let tag = Tag {
                    fileid: file,
                    generation: 1,
                    block,
                };
                match op {
                    // insert: weighted double so the cache stays full
                    0 | 1 => {
                        let _ = c.insert(&env, tag, vec![0xA5; len.min(1024)], dirty);
                    }
                    2 => {
                        let _ = c.lookup(&env, tag);
                    }
                    3 => {
                        let off = len.min(1023);
                        let n = (1024 - off).min(97);
                        let _ = c.update(&env, tag, off, &vec![7u8; n], dirty);
                    }
                    4 => {
                        let _ = c.take_dirty(&env);
                    }
                    5 => c.clear(),
                    _ => unreachable!(),
                }
                c.validate_accounting();
            }
        });
        sim.run();
        cache.validate_accounting();
    }

    /// `FileCache::bytes_stored` tracks the exact sum of disk-resident
    /// payloads — full files plus the *private overlay* of
    /// reference-backed files — through arbitrary interleavings of full
    /// installs, reference installs, CoW-breaking and extending writes,
    /// whole-file and chunk-wise dirty takes, sync-state flips, and
    /// clears, with a capacity small enough to force evictions. This is
    /// the PR 9 shared/private-split audit: in particular a
    /// `take_dirty_contents` + `clear_synced` cycle on a partially
    /// diverged reference must neither double-charge nor under-charge.
    #[test]
    fn file_cache_byte_accounting_never_drifts(
        ops in proptest::collection::vec(
            (0u8..9, 1u64..5, 0u64..4096, 1usize..1200, any::<bool>()),
            1..200,
        )
    ) {
        let sim = Simulation::new();
        let h = sim.handle();
        let disk = Disk::new(&h, DiskModel::scsi_2004());
        // Small enough that a handful of installs forces evictions.
        let cache = Arc::new(FileCache::new(disk, 4096));
        let cas = Arc::new(ContentStore::new(1 << 20));
        let cas2 = cas.clone();
        let c = cache.clone();
        sim.spawn("ops", move |env| {
            let cas = cas2;
            for (op, file, off, len, flag) in ops {
                let key = FileKey { fileid: file, generation: 1 };
                match op {
                    // install: weighted double so eviction stays busy
                    0 | 1 => {
                        let data: Vec<u8> =
                            (0..len as u64).map(|i| (i * file) as u8).collect();
                        c.install(&env, key, &data);
                    }
                    2 => {
                        // Reference install: chunk aperiodic content onto
                        // the CAS with one pin per record occurrence,
                        // exactly as the proxy recipe path does.
                        let data: Vec<u8> = (0..(len as u64) * 3)
                            .map(|i| {
                                ((i + file).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32)
                                    as u8
                            })
                            .collect();
                        let recipe: Vec<(Digest, u32)> = data
                            .chunks(512)
                            .map(|chunk| {
                                (cas.insert_pinned(chunk), chunk.len() as u32)
                            })
                            .collect();
                        c.install_reference(&env, key, cas.clone(), 512, recipe, 0);
                    }
                    3 => {
                        // May land inside the file (CoW break on a
                        // reference) or past its end (extension →
                        // materialization).
                        let _ = c.write(&env, key, off, &vec![0xC0; len.min(700)]);
                    }
                    4 => {
                        let _ = c.read(&env, key, off, len as u32);
                    }
                    5 => {
                        let _ = c.take_dirty_contents(&env, key);
                    }
                    6 => {
                        let _ = c.take_dirty_chunks(&env, key);
                    }
                    7 => {
                        if flag {
                            c.mark_dirty(key);
                        } else {
                            c.clear_synced(key);
                        }
                    }
                    8 => c.clear(),
                    _ => unreachable!(),
                }
                c.validate_accounting();
            }
        });
        sim.run();
        cache.validate_accounting();
        // Every pin the cache still holds is accounted by a live
        // reference entry; a cleared cache would leave zero.
        cache.clear();
        cache.validate_accounting();
        prop_assert_eq!(cas.pinned_bytes(), 0);
    }

    /// Chunked FETCH reassembles byte-identically to the monolithic
    /// fetch, and chunked UPLOAD lands byte-identically on the server,
    /// for arbitrary contents across chunk-size / window combinations
    /// (including chunk sizes that don't divide the file length and
    /// windows larger than the chunk count).
    #[test]
    fn chunked_channel_round_trips(
        len in 0usize..200_000,
        seed in any::<u64>(),
        chunk_kib in 1u32..48,
        window in 1usize..8,
    ) {
        let sim = Simulation::new();
        let h = sim.handle();
        let fs = Arc::new(parking_lot::Mutex::new(Fs::new(0)));
        let disk = Disk::new(&h, DiskModel::server_array());
        let server = FileChannelServer::new(fs.clone(), disk, CodecModel::default(), true);
        let up = Link::from_mbps(&h, "up", 1000.0, SimDuration::from_micros(100));
        let down = Link::from_mbps(&h, "down", 1000.0, SimDuration::from_micros(100));
        let ep = oncrpc::endpoint(&h, up, down, WireSpec::plain());
        ep.listener
            .serve("chan", Dispatcher::new().register(server).into_handler(), 4);
        let rpc = RpcClient::new(ep.channel, OpaqueAuth::sys(&AuthSys::new("c", 1, 1)));
        let chan = ChannelClient::new(rpc, CodecModel::default());

        let mul = seed | 1;
        let data: Vec<u8> = (0..len as u64).map(|i| (i.wrapping_mul(mul) >> 5) as u8).collect();
        let reversed: Vec<u8> = data.iter().rev().copied().collect();
        let fh = {
            let mut f = fs.lock();
            let root = f.root();
            let h = f.create(root, "img", 0o644, 0).unwrap();
            f.write(h, 0, &data, 0).unwrap();
            h
        };
        let fs2 = fs.clone();
        sim.spawn("client", move |env| {
            let chunk = chunk_kib << 10;
            let (got, _) = chan.fetch_chunked(&env, fh, chunk, window, None).unwrap();
            assert_eq!(got, data, "fetch chunk={chunk} window={window}");
            chan.upload_chunked(&env, fh, &reversed, true, chunk, window, None).unwrap();
            let mut f = fs2.lock();
            assert_eq!(f.size(fh).unwrap() as usize, reversed.len());
            if !reversed.is_empty() {
                let (back, _) = f.read(fh, 0, reversed.len(), 0).unwrap();
                assert_eq!(back, reversed, "upload chunk={chunk} window={window}");
            }
        });
        sim.run();
    }

    /// The recipe/blob dedup fetch reassembles byte-identically to what
    /// the monolithic chunked fetch would return, for arbitrary contents,
    /// chunk boundaries (including ones that don't divide the length),
    /// window sizes, CAS pre-population (cold / partially warm), and
    /// with the recipe either hinted from meta-data or fetched via
    /// `FETCH_RECIPE`. A repeat fetch moves zero fresh bytes.
    #[test]
    fn dedup_fetch_matches_chunked_fetch(
        len in 0usize..200_000,
        seed in any::<u64>(),
        chunk_kib in 1u32..48,
        window in 1usize..8,
        warm_mask in any::<u64>(),
        hint in any::<bool>(),
    ) {
        let sim = Simulation::new();
        let h = sim.handle();
        let fs = Arc::new(parking_lot::Mutex::new(Fs::new(0)));
        let disk = Disk::new(&h, DiskModel::server_array());
        let server = FileChannelServer::new(fs.clone(), disk, CodecModel::default(), true);
        let up = Link::from_mbps(&h, "up", 1000.0, SimDuration::from_micros(100));
        let down = Link::from_mbps(&h, "down", 1000.0, SimDuration::from_micros(100));
        let ep = oncrpc::endpoint(&h, up, down, WireSpec::plain());
        ep.listener
            .serve("chan", Dispatcher::new().register(server).into_handler(), 4);
        let rpc = RpcClient::new(ep.channel, OpaqueAuth::sys(&AuthSys::new("c", 1, 1)));
        let chan = ChannelClient::new(rpc, CodecModel::default());

        let mul = seed | 1;
        let data: Vec<u8> = (0..len as u64).map(|i| (i.wrapping_mul(mul) >> 5) as u8).collect();
        let chunk = chunk_kib << 10;
        let (fh, cmap) = {
            let mut f = fs.lock();
            let root = f.root();
            let hdl = f.create(root, "img", 0o644, 0).unwrap();
            f.write(hdl, 0, &data, 0).unwrap();
            let cmap = generate_content_map(&mut f, hdl, chunk).unwrap();
            (hdl, cmap)
        };
        // Pre-populate the CAS with an arbitrary subset of the chunks.
        let cas = ContentStore::new(1 << 30);
        for (i, ch) in data.chunks(chunk as usize).enumerate() {
            if warm_mask >> (i % 64) & 1 == 1 {
                cas.insert(ch);
            }
        }
        sim.spawn("client", move |env| {
            let dtel = DedupTel::unregistered();
            let hint_map = if hint { Some(&cmap) } else { None };
            let df = chan
                .fetch_dedup(&env, fh, hint_map, chunk, window, &cas, &dtel, None)
                .unwrap();
            assert_eq!(df.contents, data, "chunk={chunk} window={window}");
            assert!(df.fresh_bytes <= len as u64);
            // Every byte either crossed the wire or was avoided.
            assert_eq!(df.fresh_bytes + dtel.bytes_avoided.get(), len as u64);
            // Every chunk is now CAS-resident: a second fetch is pure hits.
            let df2 = chan
                .fetch_dedup(&env, fh, hint_map, chunk, window, &cas, &dtel, None)
                .unwrap();
            assert_eq!(df2.contents, data);
            assert_eq!(df2.fresh_bytes, 0);
            assert_eq!(df2.wire, 0);
        });
        sim.run();
    }

    /// The codec is lossless on arbitrary byte strings.
    #[test]
    fn codec_round_trips_arbitrary_data(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = codec::compress(&data);
        prop_assert_eq!(codec::decompress(&c).unwrap(), data);
    }

    /// The codec is lossless on run-heavy data (the adversarial case for
    /// run-length encoders: runs crossing record boundaries).
    #[test]
    fn codec_round_trips_runny_data(runs in proptest::collection::vec((any::<u8>(), 1usize..2000), 1..40)) {
        let mut data = Vec::new();
        for (b, n) in runs {
            data.extend(std::iter::repeat_n(b, n));
        }
        let c = codec::compress(&data);
        prop_assert_eq!(codec::decompress(&c).unwrap(), data);
    }

    /// Compressing mostly-zero data always shrinks it substantially.
    #[test]
    fn codec_shrinks_zero_dominated_data(
        len in 10_000usize..100_000,
        sites in proptest::collection::vec((0usize..10_000, any::<u8>()), 0..50),
    ) {
        let mut data = vec![0u8; len];
        for (pos, b) in sites {
            data[pos % len] = b;
        }
        let c = codec::compress(&data);
        prop_assert!(c.len() < len / 4 + 1024, "{} -> {}", len, c.len());
    }

    /// Truncating a compressed stream never panics and never yields
    /// wrong-length output claimed as success.
    #[test]
    fn codec_rejects_truncations(data in proptest::collection::vec(any::<u8>(), 1..5_000), cut in 0.0f64..1.0) {
        let c = codec::compress(&data);
        let keep = ((c.len() as f64) * cut) as usize;
        if keep < c.len() {
            if let Ok(out) = codec::decompress(&c[..keep]) {
                // Only acceptable if the truncation kept everything needed.
                prop_assert_eq!(out, data);
            }
        }
    }

    /// MetaFile serialization round-trips for arbitrary zero maps.
    #[test]
    fn meta_file_round_trips(
        file_size in 0u64..1 << 40,
        nblocks in 0u64..5_000,
        zeros in proptest::collection::vec(any::<u64>(), 0..200),
        compress in any::<bool>(),
        writeback in any::<bool>(),
        with_channel in any::<bool>(),
        with_map in any::<bool>(),
        with_cmap in any::<bool>(),
        cmap_recs in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), 0u32..1 << 21),
            0..60,
        ),
    ) {
        let zero_map = if with_map {
            let mut zm = ZeroMap::new(32 * 1024, nblocks);
            for z in &zeros {
                if nblocks > 0 {
                    zm.set_zero(z % nblocks);
                }
            }
            Some(zm)
        } else {
            None
        };
        let content_map = with_cmap.then(|| {
            let records: Vec<(Digest, u32)> = cmap_recs
                .iter()
                .map(|&(a, b, l)| (Digest(a, b), l))
                .collect();
            ContentMap {
                chunk_bytes: 1 << 20,
                total: records.iter().map(|(_, l)| *l as u64).sum(),
                records,
            }
        });
        let m = MetaFile {
            file_size,
            zero_map,
            channel: with_channel.then_some(FileChannelSpec { compress, writeback }),
            content_map,
        };
        prop_assert_eq!(MetaFile::from_bytes(&m.to_bytes()), Some(m));
    }

    /// Arbitrary bytes never panic the meta parser.
    #[test]
    fn meta_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = MetaFile::from_bytes(&data);
    }

    /// A zero map's range query agrees with per-block queries.
    #[test]
    fn zero_map_range_agrees_with_blocks(
        nblocks in 1u64..400,
        zeros in proptest::collection::vec(any::<u64>(), 0..100),
        start in 0u64..500,
        len in 0u32..20_000,
    ) {
        let bs = 128u32;
        let mut zm = ZeroMap::new(bs, nblocks);
        for z in &zeros {
            zm.set_zero(z % nblocks);
        }
        let offset = start * 7;
        let range = zm.range_is_zero(offset, len);
        let blockwise = if len == 0 {
            true
        } else {
            let first = offset / bs as u64;
            let last = (offset + len as u64 - 1) / bs as u64;
            (first..=last).all(|b| zm.is_zero(b))
        };
        prop_assert_eq!(range, blockwise);
    }
}
