//! Failure-domain integration tests: the proxy chain must survive WAN
//! packet loss, a multi-second WAN outage killed mid-flush, and a server
//! restart that discards unstable writes — without losing a single
//! acknowledged byte. Reads keep being served from the caches while the
//! WAN is down (degraded mode), and misses fail cleanly instead of
//! hanging forever.

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use gvfs::{
    BlockCache, BlockCacheConfig, DedupTuning, FlushReport, Proxy, ProxyConfig, TransferTuning,
    WritePolicy,
};
use nfs3::{MountServer, Nfs3Client, Nfs3Server, ServerConfig};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RetryPolicy, RpcClient, WireSpec};
use parking_lot::Mutex;
use simnet::{Env, Link, LinkFaultPlan, SimDuration, SimTime, Simulation};
use vfs::{Disk, DiskModel, Fs, Handle};

const BS: u64 = 32 * 1024;
const BLOCKS: u64 = 32;

fn secs(s: u64) -> SimTime {
    SimTime::from_nanos(s * 1_000_000_000)
}

struct Rig {
    fs: Arc<Mutex<Fs>>,
    server: Arc<Nfs3Server>,
    proxy: Arc<Proxy>,
    /// Client stub below the proxy (loopback, no faults).
    nfs: Nfs3Client,
    cred: OpaqueAuth,
    wan_up: Link,
    wan_down: Link,
}

/// A write-back client proxy talking to an NFSv3 server over a lossy
/// WAN, with a WAN-sized retransmission policy on the upstream stub.
fn build_rig(sim: &Simulation) -> Rig {
    let h = sim.handle();
    let server_disk = Disk::new(&h, DiskModel::server_array());
    let (fs, server) = Nfs3Server::with_new_fs(&h, server_disk, ServerConfig::default());
    let mount = MountServer::new(fs.clone(), vec!["/".to_string()]);
    let handler = Dispatcher::new()
        .register(server.clone())
        .register(mount)
        .into_handler();

    let wan_up = Link::from_mbps(&h, "wan-up", 6.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 14.0, SimDuration::from_millis(17));
    let ep = oncrpc::endpoint(
        &h,
        wan_up.clone(),
        wan_down.clone(),
        WireSpec::ssh_tunnel(50e6),
    );
    ep.listener.serve("nfsd", handler, 8);

    let cred = OpaqueAuth::sys(&AuthSys::new("fault", 1, 1));
    let upstream = RpcClient::new(ep.channel, cred.clone()).with_policy(RetryPolicy::wan());
    let cache_disk = Disk::new(&h, DiskModel::scsi_2004());
    let proxy = Proxy::new(
        ProxyConfig {
            name: "fault-proxy".into(),
            write_policy: WritePolicy::WriteBack,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning {
                read_ahead: 0,
                ..TransferTuning::default()
            },
            // These tests pin exact write/commit counts per fault
            // schedule; the dedup'd flush path has its own suite.
            dedup: DedupTuning::off(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        upstream,
    )
    .with_block_cache(Arc::new(BlockCache::new(
        &h,
        cache_disk,
        BlockCacheConfig::with_capacity(256 << 20, 64, 16, BS as u32),
    )))
    .into_handler();

    let lo_up = Link::new(&h, "lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(&h, "lo-down", 1e9, SimDuration::from_micros(20));
    let lo = oncrpc::endpoint(&h, lo_up, lo_down, WireSpec::plain());
    lo.listener.serve("proxy", proxy.clone(), 8);
    let nfs = Nfs3Client::new(RpcClient::new(lo.channel, cred.clone()));

    Rig {
        fs,
        server,
        proxy,
        nfs,
        cred,
        wan_up,
        wan_down,
    }
}

/// Seed a server file of `BLOCKS` blocks and return its handle.
fn seed_file(fs: &Arc<Mutex<Fs>>, name: &str) -> Handle {
    let mut f = fs.lock();
    let root = f.root();
    let fh = f.create(root, name, 0o644, 0).unwrap();
    f.setattr(fh, Some(BLOCKS * BS), None, 0).unwrap();
    fh
}

/// The deterministic payload for block `b`.
fn block_data(b: u64) -> Vec<u8> {
    (0..BS as u32)
        .map(|i| ((i as u64 + b * 17) % 251) as u8)
        .collect()
}

/// Dirty all `BLOCKS` blocks through the proxy (absorbed locally).
fn dirty_all(env: &Env, nfs: &Nfs3Client, fh: Handle) {
    for b in 0..BLOCKS {
        nfs.write(
            env,
            fh,
            b * BS,
            block_data(b),
            nfs3::proto::StableHow::Unstable,
        )
        .unwrap();
    }
    nfs.commit(env, fh).unwrap();
}

fn assert_server_bytes_exact(fs: &Arc<Mutex<Fs>>, fh: Handle) {
    let mut f = fs.lock();
    for b in 0..BLOCKS {
        let (data, _) = f.read(fh, b * BS, BS as usize, 0).unwrap();
        assert_eq!(data, block_data(b), "block {b} corrupt on server");
    }
}

/// A 10-second WAN outage plus 2% packet loss lands in the middle of
/// the write-back flush. The retransmission policy rides both out: the
/// flush drains losslessly, with zero failed blocks and byte-exact
/// server state.
#[test]
fn flush_rides_out_wan_outage_losslessly() {
    let sim = Simulation::new();
    let rig = build_rig(&sim);
    let fh = seed_file(&rig.fs, "redo.img");
    // Outage [5s, 15s) with 2% background loss in both directions.
    rig.wan_up.install_faults(
        LinkFaultPlan::new(11)
            .drop_prob(0.02)
            .outage(secs(5), secs(15)),
    );
    rig.wan_down.install_faults(
        LinkFaultPlan::new(12)
            .drop_prob(0.02)
            .outage(secs(5), secs(15)),
    );

    let tel = sim.handle().telemetry().clone();
    let out: Arc<Mutex<Option<FlushReport>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let (nfs, proxy, cred) = (rig.nfs, rig.proxy.clone(), rig.cred.clone());
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh2, _) = nfs.lookup(&env, root, "redo.img").unwrap();
        assert_eq!(fh2, fh);
        dirty_all(&env, &nfs, fh);
        // Start the flush right as the outage begins.
        let now = env.now();
        env.sleep(secs(5).saturating_since(now));
        let report = proxy.flush(&env, &cred);
        *out2.lock() = Some(report);
    });
    sim.run();

    let report = out.lock().unwrap();
    assert_eq!(report.failed_blocks, 0, "no block may be lost: {report:?}");
    assert_eq!(report.blocks, BLOCKS);
    assert_eq!(report.block_bytes, BLOCKS * BS);
    assert_eq!(rig.proxy.wb_queue_len(), 0);
    assert_server_bytes_exact(&rig.fs, fh);
    // The outage was actually felt: calls retransmitted and/or timed out.
    let retrans = tel.counter("rpc", "client.nfs3.retransmits").get();
    assert!(retrans > 0, "expected retransmissions, got {retrans}");
}

/// The server restarts in the middle of the flush, discarding its
/// unstable writes and rotating its write verifier. The proxy detects
/// the WRITE/COMMIT verifier mismatch and resends the discarded blocks
/// in a retry round — the server ends byte-exact.
#[test]
fn server_restart_mid_flush_resends_discarded_blocks() {
    let sim = Simulation::new();
    let rig = build_rig(&sim);
    let fh = seed_file(&rig.fs, "vm.img");

    let server = rig.server.clone();
    sim.spawn("chaos", move |env: Env| {
        // 1 MB over a 6 Mb/s uplink takes >1s; restart mid-stream.
        env.sleep(SimDuration::from_millis(5600));
        server.restart(env.now().as_nanos());
    });

    let out: Arc<Mutex<Option<FlushReport>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let (nfs, proxy, cred) = (rig.nfs, rig.proxy.clone(), rig.cred.clone());
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh2, _) = nfs.lookup(&env, root, "vm.img").unwrap();
        assert_eq!(fh2, fh);
        dirty_all(&env, &nfs, fh);
        let now = env.now();
        env.sleep(secs(5).saturating_since(now));
        let report = proxy.flush(&env, &cred);
        *out2.lock() = Some(report);
    });
    sim.run();

    let report = out.lock().unwrap();
    assert_eq!(report.failed_blocks, 0, "no block may be lost: {report:?}");
    assert_eq!(report.blocks, BLOCKS);
    let stats = rig.proxy.stats();
    assert!(
        stats.verf_mismatches >= 1,
        "restart must surface as a verifier mismatch: {stats:?}"
    );
    assert!(stats.flush_retry_rounds >= 1);
    assert_server_bytes_exact(&rig.fs, fh);
}

/// Degraded mode: while the WAN is down, reads that hit the proxy's
/// block cache keep being served locally; a miss fails with a clean
/// error instead of hanging forever.
#[test]
fn cache_hits_serve_during_outage_and_misses_fail_cleanly() {
    let sim = Simulation::new();
    let rig = build_rig(&sim);
    let warm = seed_file(&rig.fs, "warm.img");
    let cold = seed_file(&rig.fs, "cold.img");
    {
        let mut f = rig.fs.lock();
        f.write(warm, 0, &block_data(0), 0).unwrap();
        f.write(cold, 0, &block_data(1), 0).unwrap();
    }
    // WAN dies at t=5s and never recovers.
    rig.wan_up
        .install_faults(LinkFaultPlan::new(21).outage(secs(5), secs(1_000_000)));
    rig.wan_down
        .install_faults(LinkFaultPlan::new(22).outage(secs(5), secs(1_000_000)));

    let proxy = rig.proxy.clone();
    let (nfs, fs) = (rig.nfs, rig.fs.clone());
    sim.spawn("client", move |env: Env| {
        let _ = &fs;
        let root = nfs.mount(&env, "/").unwrap();
        let (wfh, _) = nfs.lookup(&env, root, "warm.img").unwrap();
        let (cfh, _) = nfs.lookup(&env, root, "cold.img").unwrap();
        // Warm the block cache before the outage.
        let r = nfs.read(&env, wfh, 0, BS as u32).unwrap();
        assert_eq!(r.data, block_data(0));
        let now = env.now();
        env.sleep(secs(6).saturating_since(now));
        // WAN is down. The warm block is served from the cache...
        let forwarded_before = proxy.stats().forwarded;
        let r = nfs.read(&env, wfh, 0, BS as u32).unwrap();
        assert_eq!(r.data, block_data(0));
        assert_eq!(
            proxy.stats().forwarded,
            forwarded_before,
            "cache hit must not touch the dead WAN"
        );
        // ...while the cold miss fails cleanly after the retry budget.
        let err = nfs.read(&env, cfh, 0, BS as u32);
        assert!(err.is_err(), "miss during outage must error, got {err:?}");
    });
    sim.run();
}
