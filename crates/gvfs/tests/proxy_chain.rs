//! Integration tests: full GVFS proxy chains over simulated WAN links.
//!
//! Topology under test (Figure 2 of the paper):
//!
//! ```text
//! kernel NFS client → client-side proxy (block/file caches, meta-data)
//!   → [optional LAN second-level proxy] → server-side proxy (identity)
//!   → kernel NFS server
//! ```

// Test-harness code: clippy's allow-unwrap-in-tests only covers
// #[test]-marked fns, not integration-test helpers like seed_file.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use gvfs::{
    BlockCache, BlockCacheConfig, ChannelClient, CodecModel, DedupTuning, FileCache,
    FileChannelServer, FileChannelSpec, GvfsSession, IdentityMapper, Middleware, Proxy,
    ProxyConfig, TransferTuning, WritePolicy,
};
use nfs3::{KernelClient, KernelConfig, MountServer, Nfs3Client, Nfs3Server, ServerConfig};
use oncrpc::{Dispatcher, OpaqueAuth, RpcClient, WireSpec};
use parking_lot::Mutex;
use simnet::{Env, Link, SimDuration, SimHandle, Simulation};
use vfs::{Disk, DiskModel, FileIo, Fs};

/// Everything a test needs from a wired GVFS deployment.
struct Rig {
    fs: Arc<Mutex<Fs>>,
    server: Arc<Nfs3Server>,
    proxy: Arc<Proxy>,
    session_cred: OpaqueAuth,
    client_rpc: RpcClient,
    wan_up: Link,
    wan_down: Link,
}

/// Build: server endpoint on a WAN link; server-side proxy with identity
/// mapping; client-side proxy with block + file caches on a local
/// endpoint; a kernel-facing RPC client authenticated with a middleware
/// credential.
fn build_rig(sim: &Simulation, write_policy: WritePolicy, meta_handling: bool) -> Rig {
    let h: SimHandle = sim.handle();

    // --- image server machine -------------------------------------------
    let server_disk = Disk::new(&h, DiskModel::server_array());
    let (fs, server) = Nfs3Server::with_new_fs(&h, server_disk.clone(), ServerConfig::default());
    let mount = MountServer::new(fs.clone(), vec!["/".to_string()]);
    let chan_server = FileChannelServer::new(fs.clone(), server_disk, CodecModel::default(), true);

    // Loopback on the server machine: kernel server listens here.
    let lo_up = Link::new(&h, "srv-lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(&h, "srv-lo-down", 1e9, SimDuration::from_micros(20));
    let srv_ep = oncrpc::endpoint(&h, lo_up, lo_down, WireSpec::plain());
    srv_ep.listener.serve(
        "nfsd",
        Dispatcher::new()
            .register(server.clone())
            .register(mount)
            .register(chan_server)
            .into_handler(),
        8,
    );

    // Server-side proxy: accepts WAN traffic, maps identities, forwards
    // to the kernel server via loopback.
    let mapper = Arc::new(IdentityMapper::new());
    let srv_proxy = Proxy::new(
        ProxyConfig {
            name: "server-proxy".into(),
            write_policy: WritePolicy::WriteThrough,
            meta_handling: false,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning::default(),
            dedup: DedupTuning::off(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        RpcClient::new(srv_ep.channel, OpaqueAuth::none()),
    )
    .with_identity(mapper.clone())
    .into_handler();

    let wan_up = Link::from_mbps(&h, "wan-up", 25.0, SimDuration::from_millis(17));
    let wan_down = Link::from_mbps(&h, "wan-down", 25.0, SimDuration::from_millis(17));
    let wan_ep = oncrpc::endpoint(
        &h,
        wan_up.clone(),
        wan_down.clone(),
        WireSpec::ssh_tunnel(50e6),
    );
    wan_ep.listener.serve("server-proxy", srv_proxy, 8);

    // --- compute server machine -----------------------------------------
    let mw = Middleware::new();
    let (session_id, cred) = mw.establish_session(&mapper, "alice", 0, u64::MAX / 2);

    let cache_disk = Disk::new(&h, DiskModel::scsi_2004());
    let block_cache = Arc::new(BlockCache::new(
        &h,
        cache_disk.clone(),
        BlockCacheConfig::with_capacity(2 << 30, 64, 16, 32 * 1024),
    ));
    let file_cache = Arc::new(FileCache::new(cache_disk, 4 << 30));
    let upstream = RpcClient::new(wan_ep.channel, cred.clone());
    let chan_client = ChannelClient::new(upstream.clone(), CodecModel::default());
    let client_proxy = Proxy::new(
        ProxyConfig {
            name: "client-proxy".into(),
            write_policy,
            meta_handling,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            // These tests pin exact hit/miss and wire-byte counts, so
            // keep read-ahead off; chunking stays on (1 MiB files are a
            // single chunk, preserving the channel-fetch assertions).
            transfer: TransferTuning {
                read_ahead: 0,
                ..TransferTuning::default()
            },
            // These tests pin exact wire-byte counts for the plain
            // chunked channel; dedup'd fetches are covered separately.
            dedup: DedupTuning::off(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        },
        upstream,
    )
    .with_block_cache(block_cache)
    .with_file_channel(file_cache, chan_client)
    .into_handler();
    let proxy = client_proxy.clone();

    // Kernel client talks to the local proxy over loopback.
    let cl_up = Link::new(&h, "cl-lo-up", 1e9, SimDuration::from_micros(20));
    let cl_down = Link::new(&h, "cl-lo-down", 1e9, SimDuration::from_micros(20));
    let proxy_ep = oncrpc::endpoint(&h, cl_up, cl_down, WireSpec::plain());
    proxy_ep.listener.serve("client-proxy", client_proxy, 8);

    let client_rpc = RpcClient::new(proxy_ep.channel, cred.clone());
    let _session = GvfsSession::new(session_id, cred.clone(), proxy.clone(), Some(mapper));

    Rig {
        fs,
        server,
        proxy,
        session_cred: cred,
        client_rpc,
        wan_up,
        wan_down,
    }
}

/// Pre-populate a file on the image server without simulation cost.
fn seed_file(fs: &Arc<Mutex<Fs>>, path: &str, contents: &[u8], size: Option<u64>) -> vfs::Handle {
    let mut f = fs.lock();
    let (dir_path, name) = match path.rfind('/') {
        Some(i) => (&path[..i], &path[i + 1..]),
        None => ("", path),
    };
    let dir = f.resolve(dir_path).unwrap();
    let h = f.create(dir, name, 0o644, 0).unwrap();
    if let Some(s) = size {
        f.setattr(h, Some(s), None, 0).unwrap();
    }
    f.write(h, 0, contents, 0).unwrap();
    h
}

#[test]
fn end_to_end_identity_mapping_and_read_through_chain() {
    let sim = Simulation::new();
    let rig = build_rig(&sim, WritePolicy::WriteBack, true);
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
    seed_file(&rig.fs, "data.bin", &payload, None);
    let nfs = Nfs3Client::new(rig.client_rpc.clone());
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh, _) = nfs.lookup(&env, root, "data.bin").unwrap();
        let mut got = Vec::new();
        let mut off = 0;
        loop {
            let r = nfs.read(&env, fh, off, 32 * 1024).unwrap();
            off += r.data.len() as u64;
            got.extend_from_slice(&r.data);
            if r.eof {
                break;
            }
        }
        assert_eq!(got, payload);
    });
    sim.run();
}

#[test]
fn bad_session_is_rejected_at_server_proxy() {
    let sim = Simulation::new();
    let rig = build_rig(&sim, WritePolicy::WriteBack, true);
    let bogus = OpaqueAuth::gvfs(&oncrpc::AuthGvfs {
        session_id: 999_999,
        grid_user: "mallory".into(),
        expires_at: u64::MAX,
    });
    let nfs = Nfs3Client::new(rig.client_rpc.with_cred(bogus));
    sim.spawn("client", move |env: Env| match nfs.mount(&env, "/") {
        Err(nfs3::NfsError::Rpc(oncrpc::RpcError::Denied(_))) => {}
        other => panic!("expected denial, got {other:?}"),
    });
    sim.run();
}

#[test]
fn second_read_hits_proxy_disk_cache_and_skips_wan() {
    let sim = Simulation::new();
    let rig = build_rig(&sim, WritePolicy::WriteBack, true);
    let payload = vec![0x5Au8; 1 << 20];
    seed_file(&rig.fs, "vm.vmdk", &payload, None);
    let nfs = Nfs3Client::new(rig.client_rpc.clone());
    let proxy = rig.proxy.clone();
    let wan_up = rig.wan_up.clone();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh, _) = nfs.lookup(&env, root, "vm.vmdk").unwrap();
        let read_all = |env: &Env| {
            let mut off = 0;
            loop {
                let r = nfs.read(env, fh, off, 32 * 1024).unwrap();
                off += r.data.len() as u64;
                if r.eof {
                    break;
                }
            }
        };
        let t0 = env.now();
        read_all(&env);
        let cold = env.now() - t0;
        let wan_msgs_after_cold = wan_up.total_messages();

        let t1 = env.now();
        read_all(&env);
        let warm = env.now() - t1;
        // No new WAN traffic for the warm pass.
        assert_eq!(wan_up.total_messages(), wan_msgs_after_cold);
        assert!(
            warm.as_secs_f64() < cold.as_secs_f64() / 5.0,
            "warm {warm} vs cold {cold}"
        );
        let st = proxy.stats();
        assert_eq!(st.reads, 64);
        let bc = proxy.block_cache().unwrap().stats();
        assert_eq!(bc.hits, 32);
        assert_eq!(bc.misses, 32);
    });
    sim.run();
}

#[test]
fn zero_map_filters_wan_reads_for_memory_state() {
    let sim = Simulation::new();
    let rig = build_rig(&sim, WritePolicy::WriteBack, true);
    // 8 MB memory state, only the first 64 KB non-zero (post-boot-like).
    let data = vec![0xEEu8; 64 * 1024];
    seed_file(&rig.fs, "vm.vmss", &data, Some(8 << 20));
    // Middleware pre-processing: zero map only (no file channel) to
    // exercise the block path with filtering.
    {
        let mut fs = rig.fs.lock();
        Middleware::generate_meta(&mut fs, "", "vm.vmss", 32 * 1024, true, None).unwrap();
    }
    let nfs = Nfs3Client::new(rig.client_rpc.clone());
    let proxy = rig.proxy.clone();
    let server = rig.server.clone();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh, attr) = nfs.lookup(&env, root, "vm.vmss").unwrap();
        assert_eq!(attr.unwrap().size, 8 << 20);
        server.reset_stats();
        let mut got = Vec::new();
        let mut off = 0;
        loop {
            let r = nfs.read(&env, fh, off, 32 * 1024).unwrap();
            off += r.data.len() as u64;
            got.extend_from_slice(&r.data);
            if r.eof {
                break;
            }
        }
        assert_eq!(got.len(), 8 << 20);
        assert_eq!(&got[..64 * 1024], &data[..]);
        assert!(got[64 * 1024..].iter().all(|&b| b == 0));
        // 256 total client reads; only the 2 non-zero blocks reach the server.
        let st = proxy.stats();
        assert_eq!(st.reads, 256);
        assert_eq!(st.zero_filtered, 254);
        assert_eq!(server.stats().reads, 2);
    });
    sim.run();
}

#[test]
fn file_channel_installs_whole_file_and_serves_locally() {
    let sim = Simulation::new();
    let rig = build_rig(&sim, WritePolicy::WriteBack, true);
    // 4 MB memory state with sparse nonzero content.
    let mut content = vec![0u8; 4 << 20];
    for i in 0..64 {
        content[i * 65536] = (i + 1) as u8;
    }
    seed_file(&rig.fs, "golden.vmss", &content, None);
    {
        let mut fs = rig.fs.lock();
        Middleware::generate_meta(
            &mut fs,
            "",
            "golden.vmss",
            32 * 1024,
            true,
            Some(FileChannelSpec {
                compress: true,
                writeback: false,
            }),
        )
        .unwrap();
    }
    let nfs = Nfs3Client::new(rig.client_rpc.clone());
    let proxy = rig.proxy.clone();
    let wan_down = rig.wan_down.clone();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh, _) = nfs.lookup(&env, root, "golden.vmss").unwrap();
        let mut got = Vec::new();
        let mut off = 0;
        loop {
            let r = nfs.read(&env, fh, off, 32 * 1024).unwrap();
            off += r.data.len() as u64;
            got.extend_from_slice(&r.data);
            if r.eof {
                break;
            }
        }
        assert_eq!(got, content);
        let st = proxy.stats();
        assert_eq!(st.channel_fetches, 1);
        assert_eq!(st.file_cache_reads, 128);
        // WAN carried ~compressed bytes, far below the 4 MB original.
        assert!(
            wan_down.total_bytes() < 1 << 20,
            "wan carried {}",
            wan_down.total_bytes()
        );
        assert!(st.channel_wire_bytes < 1 << 20);
    });
    sim.run();
}

#[test]
fn write_back_absorbs_writes_and_flushes_on_signal() {
    let sim = Simulation::new();
    let rig = build_rig(&sim, WritePolicy::WriteBack, true);
    seed_file(&rig.fs, "redo.log", b"", None);
    let nfs = Nfs3Client::new(rig.client_rpc.clone());
    let proxy = rig.proxy.clone();
    let fs = rig.fs.clone();
    let server = rig.server.clone();
    let cred = rig.session_cred.clone();
    let wan_up = rig.wan_up.clone();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh, _) = nfs.lookup(&env, root, "redo.log").unwrap();
        server.reset_stats();
        let wan_before = wan_up.total_bytes();
        // 1 MB of redo-log writes through the proxy.
        let chunk = vec![0x7Bu8; 32 * 1024];
        for i in 0..32u64 {
            nfs.write(
                &env,
                fh,
                i * 32 * 1024,
                chunk.clone(),
                nfs3::proto::StableHow::Unstable,
            )
            .unwrap();
        }
        nfs.commit(&env, fh).unwrap();
        // Nothing reached the server; barely any WAN bytes moved.
        assert_eq!(server.stats().writes, 0);
        assert!(wan_up.total_bytes() - wan_before < 64 * 1024);
        // GETATTR through the proxy reflects the absorbed size.
        let attr = nfs.getattr(&env, fh).unwrap();
        assert_eq!(attr.size, 1 << 20);
        // Middleware signals write-back.
        let report = proxy.flush(&env, &cred);
        assert_eq!(report.blocks, 32);
        assert_eq!(report.block_bytes, 1 << 20);
        // Server now has the data, byte-exact.
        let mut f = fs.lock();
        let (data, _) = f.read(fh, 0, 1 << 20, 0).unwrap();
        assert_eq!(data.len(), 1 << 20);
        assert!(data.iter().all(|&b| b == 0x7B));
    });
    sim.run();
}

#[test]
fn write_through_policy_forwards_writes_immediately() {
    let sim = Simulation::new();
    let rig = build_rig(&sim, WritePolicy::WriteThrough, true);
    seed_file(&rig.fs, "out.dat", b"", None);
    let nfs = Nfs3Client::new(rig.client_rpc.clone());
    let server = rig.server.clone();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh, _) = nfs.lookup(&env, root, "out.dat").unwrap();
        server.reset_stats();
        nfs.write(
            &env,
            fh,
            0,
            vec![1u8; 32 * 1024],
            nfs3::proto::StableHow::Unstable,
        )
        .unwrap();
        assert_eq!(server.stats().writes, 1);
    });
    sim.run();
}

#[test]
fn telemetry_registry_reconciles_with_stats_views_and_bytes_moved() {
    let sim = Simulation::new();
    let tel = sim.handle().telemetry().clone();
    tel.set_trace(true);
    let rig = build_rig(&sim, WritePolicy::WriteBack, true);
    let payload: Vec<u8> = (0..512 * 1024u32).map(|i| (i % 251) as u8).collect();
    seed_file(&rig.fs, "disk.img", &payload, None);
    let nfs = Nfs3Client::new(rig.client_rpc.clone());
    let proxy = rig.proxy.clone();
    let wan_down = rig.wan_down.clone();
    let expected_len = payload.len();
    sim.spawn("client", move |env: Env| {
        let root = nfs.mount(&env, "/").unwrap();
        let (fh, _) = nfs.lookup(&env, root, "disk.img").unwrap();
        let read_all = |env: &Env| {
            let mut total = 0usize;
            let mut off = 0;
            loop {
                let r = nfs.read(env, fh, off, 32 * 1024).unwrap();
                off += r.data.len() as u64;
                total += r.data.len();
                if r.eof {
                    break;
                }
            }
            total
        };
        assert_eq!(read_all(&env), expected_len); // cold: fills block cache
        assert_eq!(read_all(&env), expected_len); // warm: hits block cache
        nfs.write(
            &env,
            fh,
            0,
            vec![9u8; 32 * 1024],
            nfs3::proto::StableHow::Unstable,
        )
        .unwrap();
    });
    sim.run();

    let snap = tel.snapshot();

    // The ProxyStats view and the registry are the same cells: every
    // field must agree exactly.
    let st = proxy.stats();
    for (suffix, view) in [
        ("calls", st.calls),
        ("reads", st.reads),
        ("writes", st.writes),
        ("forwarded", st.forwarded),
        ("zero_filtered", st.zero_filtered),
        ("file_cache_reads", st.file_cache_reads),
        ("channel_fetches", st.channel_fetches),
        ("channel_wire_bytes", st.channel_wire_bytes),
        ("writes_absorbed", st.writes_absorbed),
        ("blocks_written_back", st.blocks_written_back),
    ] {
        assert_eq!(
            snap.counter("gvfs", &format!("client-proxy.{suffix}")),
            view,
            "client-proxy.{suffix} disagrees with ProxyStats"
        );
    }
    assert!(st.reads >= 32, "expected two full passes of reads");

    // Same for the block cache.
    let bc = proxy.block_cache().unwrap().stats();
    assert_eq!(snap.counter("gvfs", "block-cache.hits"), bc.hits);
    assert_eq!(snap.counter("gvfs", "block-cache.misses"), bc.misses);
    assert_eq!(
        snap.counter("gvfs", "block-cache.insertions"),
        bc.insertions
    );
    assert_eq!(snap.counter("gvfs", "block-cache.evictions"), bc.evictions);
    assert!(bc.hits >= 16, "warm pass must hit the cache");

    // And the NFS server.
    let sv = rig.server.stats();
    assert_eq!(snap.counter("nfs3", "nfs3-server.reads"), sv.reads);
    assert_eq!(snap.counter("nfs3", "nfs3-server.writes"), sv.writes);
    assert_eq!(
        snap.counter("nfs3", "nfs3-server.proc.READ"),
        sv.reads,
        "per-procedure counter must match the server stats view"
    );

    // Per-link byte counters reconcile with the Link views and with the
    // data that actually moved: the cold pass pulled the whole file over
    // the WAN downlink (plus reply framing overhead).
    assert_eq!(
        snap.counter("link", "wan-down.bytes"),
        wan_down.total_bytes()
    );
    assert!(
        wan_down.total_bytes() >= expected_len as u64,
        "cold read must move at least the file over the WAN: {} < {}",
        wan_down.total_bytes(),
        expected_len
    );

    // RPC layer: the proxy forwarded exactly its `forwarded` count of
    // client-side calls upstream over the nfs3 program.
    assert!(snap.counter("rpc", "client.nfs3.calls") > 0);
    assert!(snap.counter("rpc", "served.calls") > 0);

    // Tracing was on: the ring holds link transfer events.
    assert!(
        snap.events.iter().any(|e| e.layer == "link"),
        "expected link transfer trace events, got {} events",
        snap.events.len()
    );
}

#[test]
fn kernel_client_end_to_end_through_proxy_chain() {
    // The full stack: KernelClient (FileIo) over the proxy chain.
    let sim = Simulation::new();
    let rig = build_rig(&sim, WritePolicy::WriteBack, true);
    {
        let mut f = rig.fs.lock();
        let root = f.root();
        f.mkdir(root, "vm", 0o755, 0).unwrap();
    }
    let nfs = Nfs3Client::new(rig.client_rpc.clone());
    sim.spawn("client", move |env: Env| {
        let kc = KernelClient::mount(&env, nfs, "/", KernelConfig::default()).unwrap();
        let h = kc.create_path(&env, "vm/scratch.dat").unwrap();
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 199) as u8).collect();
        kc.write(&env, h, 0, &data).unwrap();
        kc.close(&env, h).unwrap();
        kc.invalidate_caches();
        let back = kc.read(&env, h, 0, 200_000).unwrap();
        assert_eq!(back, data);
    });
    sim.run();
}
