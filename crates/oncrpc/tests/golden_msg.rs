//! Golden-vector suite pinning the RPC message wire format.
//!
//! The fixture under `tests/golden/rpc_msg.hex` was generated from the
//! encoder as it stood before the zero-copy refactor; these tests assert
//! the refactored encoder/decoder still produce byte-identical wire
//! images. Regenerate (only when the wire format intentionally changes)
//! with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p oncrpc --test golden_msg
//! ```

use oncrpc::auth::{AuthGvfs, AuthSys, OpaqueAuth};
use oncrpc::msg::{auth_stat, AcceptStat, CallHeader, RejectStat, RpcMessage};
use proptest::prelude::*;

const FIXTURE: &str = include_str!("golden/rpc_msg.hex");

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic word-aligned payload of `words` XDR words.
fn payload(seed: u64, words: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(words * 4);
    let mut s = seed;
    for _ in 0..words {
        s = splitmix64(s);
        out.extend_from_slice(&(s as u32).to_be_bytes());
    }
    out
}

fn creds() -> Vec<OpaqueAuth> {
    vec![
        OpaqueAuth::none(),
        OpaqueAuth::sys(&AuthSys::new("compute1.acis.ufl.edu", 501, 100)),
        OpaqueAuth::sys(&AuthSys {
            stamp: 0xDEAD_BEEF,
            machinename: "vm-client".into(),
            uid: 0,
            gid: 0,
            gids: vec![0, 10, 100, 65_534],
        }),
        OpaqueAuth::gvfs(&AuthGvfs {
            session_id: 0x0102_0304_0506_0708,
            grid_user: "griduser@vo.example".into(),
            expires_at: 3_600,
        }),
    ]
}

/// The fixed message set the fixture pins. Kept append-only: new shapes go
/// at the end so existing vector indices stay stable.
fn golden_messages() -> Vec<RpcMessage> {
    let mut msgs = Vec::new();
    // Calls: every cred shape x several programs/procs/arg sizes.
    for (i, cred) in creds().into_iter().enumerate() {
        for (j, &(prog, vers, proc)) in [
            (100_003u32, 3u32, 0u32), // NFS NULL
            (100_003, 3, 6),          // NFS READ
            (100_003, 3, 7),          // NFS WRITE
            (100_005, 3, 1),          // MOUNT MNT
            (400_100, 1, 2),          // GVFS channel fetch
        ]
        .iter()
        .enumerate()
        {
            let seed = (i as u64) << 32 | j as u64;
            msgs.push(RpcMessage::Call {
                header: CallHeader {
                    xid: splitmix64(seed) as u32,
                    prog,
                    vers,
                    proc,
                    cred: cred.clone(),
                    verf: OpaqueAuth::none(),
                },
                args: payload(seed, (j * 17 + i * 3) % 64).into(),
            });
        }
    }
    // Replies: success with varied result sizes, all failure shapes.
    for (k, words) in [0usize, 1, 2, 16, 255, 1024].into_iter().enumerate() {
        msgs.push(RpcMessage::success(
            0xA000 + k as u32,
            payload(k as u64 ^ 0x5EED, words),
        ));
    }
    for stat in [
        AcceptStat::ProgUnavail,
        AcceptStat::ProgMismatch { low: 1, high: 3 },
        AcceptStat::ProcUnavail,
        AcceptStat::GarbageArgs,
        AcceptStat::SystemErr,
    ] {
        msgs.push(RpcMessage::accept_error(0xB001, stat));
    }
    for stat in [
        RejectStat::RpcMismatch { low: 2, high: 2 },
        RejectStat::AuthError(auth_stat::BADCRED),
        RejectStat::AuthError(auth_stat::REJECTEDCRED),
        RejectStat::AuthError(auth_stat::TOOWEAK),
    ] {
        msgs.push(RpcMessage::denied(0xC002, stat));
    }
    msgs
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn render_fixture() -> String {
    let mut out = String::new();
    for m in golden_messages() {
        out.push_str(&to_hex(&xdr::to_bytes(&m)));
        out.push('\n');
    }
    out
}

#[test]
fn golden_vectors_are_byte_identical() {
    let rendered = render_fixture();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/rpc_msg.hex");
        std::fs::write(path, &rendered).unwrap();
        return;
    }
    let expected: Vec<&str> = FIXTURE.lines().collect();
    let actual: Vec<&str> = rendered.lines().map(|l| l.trim_end()).collect();
    let rendered_lines: Vec<String> = rendered.lines().map(str::to_owned).collect();
    assert_eq!(
        expected.len(),
        rendered_lines.len(),
        "golden vector count drifted"
    );
    for (i, (exp, act)) in expected.iter().zip(actual.iter()).enumerate() {
        assert_eq!(
            exp, act,
            "wire image of golden message #{i} drifted from the pinned encoding"
        );
    }
}

#[test]
fn golden_vectors_decode_and_reencode_identically() {
    for (i, line) in FIXTURE.lines().enumerate() {
        let bytes: Vec<u8> = (0..line.len())
            .step_by(2)
            .map(|k| u8::from_str_radix(&line[k..k + 2], 16).unwrap())
            .collect();
        let msg: RpcMessage = xdr::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("golden vector #{i} failed to decode: {e:?}"));
        assert_eq!(
            xdr::to_bytes(&msg),
            bytes,
            "decode→re-encode of golden vector #{i} is not byte-identical"
        );
    }
}

proptest! {
    /// Arbitrary calls survive encode→decode→re-encode byte-identically
    /// (args constrained to XDR word alignment, as the wire requires).
    #[test]
    fn arbitrary_calls_reencode_identically(
        xid in any::<u32>(),
        prog in any::<u32>(),
        vers in any::<u32>(),
        proc in any::<u32>(),
        uid in any::<u32>(),
        words in proptest::collection::vec(any::<u32>(), 0..256),
    ) {
        let mut args = Vec::with_capacity(words.len() * 4);
        for w in &words {
            args.extend_from_slice(&w.to_be_bytes());
        }
        let m = RpcMessage::Call {
            header: CallHeader {
                xid, prog, vers, proc,
                cred: OpaqueAuth::sys(&AuthSys::new("m", uid, uid)),
                verf: OpaqueAuth::none(),
            },
            args: args.into(),
        };
        let bytes = xdr::to_bytes(&m);
        let back: RpcMessage = xdr::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(xdr::to_bytes(&back), bytes);
    }

    /// Arbitrary success replies survive the same round trip.
    #[test]
    fn arbitrary_replies_reencode_identically(
        xid in any::<u32>(),
        words in proptest::collection::vec(any::<u32>(), 0..256),
    ) {
        let mut results = Vec::with_capacity(words.len() * 4);
        for w in &words {
            results.extend_from_slice(&w.to_be_bytes());
        }
        let m = RpcMessage::success(xid, results);
        let bytes = xdr::to_bytes(&m);
        let back: RpcMessage = xdr::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &m);
        prop_assert_eq!(xdr::to_bytes(&back), bytes);
    }
}
