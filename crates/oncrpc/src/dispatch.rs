//! Server-side call dispatch.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use simnet::{Counter, Env};
use xdr::Bytes;

use crate::auth::OpaqueAuth;
use crate::msg::{AcceptStat, RejectStat, RpcMessage};
use crate::transport::RpcHandler;

/// Error an [`RpcProgram`] may raise while servicing a call; mapped onto
/// the corresponding RPC accept/reject status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// Unknown procedure number.
    ProcUnavail,
    /// Arguments failed to decode.
    GarbageArgs,
    /// Internal failure.
    SystemErr,
    /// Authentication failure with an `auth_stat` code.
    AuthError(u32),
}

/// A versioned RPC program (NFS, MOUNT, the GVFS control program, ...).
pub trait RpcProgram: Send + Sync + 'static {
    /// Program number (e.g. 100003 for NFS).
    fn program(&self) -> u32;
    /// Supported version.
    fn version(&self) -> u32;
    /// Execute a procedure: decode `args`, do the work (may block in
    /// virtual time), return encoded results.
    fn call(
        &self,
        env: &Env,
        cred: &OpaqueAuth,
        proc: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, ProgramError>;

    /// Like [`RpcProgram::call`], but with the transaction id of the
    /// request. Programs that maintain a duplicate-request cache (the
    /// NFSv3 server) override this — a retransmitted call arrives with
    /// the same xid, which is what lets the server recognise it and
    /// replay the cached reply instead of re-executing a non-idempotent
    /// operation. The default ignores the xid.
    fn call_with_xid(
        &self,
        env: &Env,
        _xid: u32,
        cred: &OpaqueAuth,
        proc: u32,
        args: &[u8],
    ) -> Result<Vec<u8>, ProgramError> {
        self.call(env, cred, proc, args)
    }
}

/// Routes raw RPC messages to registered programs and builds protocol-
/// correct replies for every failure mode (unknown program, version
/// mismatch, bad procedure, garbage args, auth errors).
pub struct Dispatcher {
    programs: HashMap<u32, Arc<dyn RpcProgram>>,
    /// `served.calls` / `served.garbage_requests`, resolved against the
    /// registry on the first request and shared cells thereafter.
    served: OnceLock<Counter>,
    garbage: OnceLock<Counter>,
}

impl Dispatcher {
    /// Empty dispatcher.
    pub fn new() -> Self {
        Dispatcher {
            programs: HashMap::new(),
            served: OnceLock::new(),
            garbage: OnceLock::new(),
        }
    }

    /// Register a program; replaces any prior registration of the same
    /// program number.
    pub fn register(mut self, prog: Arc<dyn RpcProgram>) -> Self {
        self.programs.insert(prog.program(), prog);
        self
    }

    /// Finish construction.
    pub fn into_handler(self) -> Arc<dyn RpcHandler> {
        Arc::new(self)
    }
}

impl Default for Dispatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl RpcHandler for Dispatcher {
    fn handle(&self, env: &Env, request: &Bytes) -> Bytes {
        let msg = match RpcMessage::decode_shared(request) {
            Ok(m) => m,
            // Unparsable request: RFC behaviour is to drop it, but the
            // simulated transport expects a reply; answer GARBAGE_ARGS
            // with xid 0 so the caller fails fast instead of hanging.
            Err(_) => {
                // Registered on first garbage request (not at first call):
                // snapshots list every registered metric, so registering
                // earlier would add a zero-valued line to reports.
                self.garbage
                    .get_or_init(|| env.telemetry().counter("rpc", "served.garbage_requests"))
                    .inc();
                return xdr::to_bytes(&RpcMessage::accept_error(0, AcceptStat::GarbageArgs)).into();
            }
        };
        self.served
            .get_or_init(|| env.telemetry().counter("rpc", "served.calls"))
            .inc();
        let (header, args) = match msg {
            RpcMessage::Call { header, args } => (header, args),
            RpcMessage::Reply { xid, .. } => {
                return xdr::to_bytes(&RpcMessage::accept_error(xid, AcceptStat::GarbageArgs))
                    .into()
            }
        };
        let xid = header.xid;
        let reply = match self.programs.get(&header.prog) {
            None => RpcMessage::accept_error(xid, AcceptStat::ProgUnavail),
            Some(prog) if prog.version() != header.vers => RpcMessage::accept_error(
                xid,
                AcceptStat::ProgMismatch {
                    low: prog.version(),
                    high: prog.version(),
                },
            ),
            Some(prog) => match prog.call_with_xid(env, xid, &header.cred, header.proc, &args) {
                Ok(results) => RpcMessage::success(xid, results),
                Err(ProgramError::ProcUnavail) => {
                    RpcMessage::accept_error(xid, AcceptStat::ProcUnavail)
                }
                Err(ProgramError::GarbageArgs) => {
                    RpcMessage::accept_error(xid, AcceptStat::GarbageArgs)
                }
                Err(ProgramError::SystemErr) => {
                    RpcMessage::accept_error(xid, AcceptStat::SystemErr)
                }
                Err(ProgramError::AuthError(code)) => {
                    RpcMessage::denied(xid, RejectStat::AuthError(code))
                }
            },
        };
        xdr::to_bytes(&reply).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthSys;
    use crate::client::{RpcClient, RpcError};
    use crate::msg::ReplyBody;
    use crate::transport::{endpoint, WireSpec};
    use simnet::{Link, SimDuration, Simulation};

    /// Toy program: proc 1 doubles a u32; proc 2 echoes a string.
    struct Doubler;

    impl RpcProgram for Doubler {
        fn program(&self) -> u32 {
            200_000
        }
        fn version(&self) -> u32 {
            1
        }
        fn call(
            &self,
            _env: &Env,
            _cred: &OpaqueAuth,
            proc: u32,
            args: &[u8],
        ) -> Result<Vec<u8>, ProgramError> {
            match proc {
                0 => Ok(Vec::new()), // NULL
                1 => {
                    let v: u32 = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
                    Ok(xdr::to_bytes(&(v * 2)))
                }
                2 => {
                    let s: String = xdr::from_bytes(args).map_err(|_| ProgramError::GarbageArgs)?;
                    Ok(xdr::to_bytes(&s))
                }
                _ => Err(ProgramError::ProcUnavail),
            }
        }
    }

    fn setup(sim: &Simulation) -> RpcClient {
        let h = sim.handle();
        let up = Link::new(&h, "up", 1e9, SimDuration::from_micros(50));
        let down = Link::new(&h, "down", 1e9, SimDuration::from_micros(50));
        let ep = endpoint(&h, up, down, WireSpec::plain());
        let handler = Dispatcher::new().register(Arc::new(Doubler)).into_handler();
        ep.listener.serve("doubler", handler, 2);
        RpcClient::new(
            ep.channel,
            OpaqueAuth::sys(&AuthSys::new("client", 1000, 1000)),
        )
    }

    #[test]
    fn successful_call_round_trips() {
        let sim = Simulation::new();
        let client = setup(&sim);
        sim.spawn("c", move |env| {
            let res = client
                .call(&env, 200_000, 1, 1, &xdr::to_bytes(&21u32))
                .unwrap();
            let v: u32 = xdr::from_bytes(&res).unwrap();
            assert_eq!(v, 42);
        });
        sim.run();
    }

    #[test]
    fn unknown_program_reports_prog_unavail() {
        let sim = Simulation::new();
        let client = setup(&sim);
        sim.spawn("c", move |env| {
            let err = client.call(&env, 999, 1, 0, &[]).unwrap_err();
            assert_eq!(err, RpcError::Accept(AcceptStat::ProgUnavail));
        });
        sim.run();
    }

    #[test]
    fn wrong_version_reports_mismatch_with_range() {
        let sim = Simulation::new();
        let client = setup(&sim);
        sim.spawn("c", move |env| {
            let err = client.call(&env, 200_000, 9, 0, &[]).unwrap_err();
            assert_eq!(
                err,
                RpcError::Accept(AcceptStat::ProgMismatch { low: 1, high: 1 })
            );
        });
        sim.run();
    }

    #[test]
    fn unknown_procedure_reports_proc_unavail() {
        let sim = Simulation::new();
        let client = setup(&sim);
        sim.spawn("c", move |env| {
            let err = client.call(&env, 200_000, 1, 77, &[]).unwrap_err();
            assert_eq!(err, RpcError::Accept(AcceptStat::ProcUnavail));
        });
        sim.run();
    }

    #[test]
    fn bad_args_report_garbage_args() {
        let sim = Simulation::new();
        let client = setup(&sim);
        sim.spawn("c", move |env| {
            // proc 1 expects a u32; send two bytes.
            let err = client
                .call(&env, 200_000, 1, 1, &[0, 0, 0, 0, 0, 0, 0, 0])
                .unwrap_err();
            // Eight bytes decode as u32 + trailing => GarbageArgs.
            assert_eq!(err, RpcError::Accept(AcceptStat::GarbageArgs));
        });
        sim.run();
    }

    #[test]
    fn unparsable_request_bytes_get_garbage_args_reply() {
        // A blob that is not an RPC message at all must come back as a
        // decodable GARBAGE_ARGS error (xid 0), never hang or panic the
        // server worker — and must be counted as a garbage request.
        let sim = Simulation::new();
        let h = sim.handle();
        let up = Link::new(&h, "up", 1e9, SimDuration::from_micros(50));
        let down = Link::new(&h, "down", 1e9, SimDuration::from_micros(50));
        let ep = endpoint(&h, up, down, WireSpec::plain());
        let handler = Dispatcher::new().register(Arc::new(Doubler)).into_handler();
        ep.listener.serve("doubler", handler, 1);
        let tel = h.telemetry().clone();
        sim.spawn("c", move |env| {
            let reply = ep
                .channel
                .call_raw(&env, b"definitely not XDR".to_vec())
                .expect("transport alive");
            let msg: RpcMessage = xdr::from_bytes(&reply).unwrap();
            match msg {
                RpcMessage::Reply { xid, body } => {
                    assert_eq!(xid, 0);
                    assert!(matches!(
                        body,
                        ReplyBody::Accepted {
                            stat: AcceptStat::GarbageArgs,
                            ..
                        }
                    ));
                }
                _ => panic!("expected a reply"),
            }
        });
        sim.run();
        assert_eq!(tel.counter("rpc", "served.garbage_requests").get(), 1);
    }

    #[test]
    fn served_counters_stay_out_of_snapshots_until_first_request() {
        // Both dispatcher counters resolve lazily (OnceLock): a server
        // that never saw traffic must not add `served.*` lines to the
        // report snapshot, and a server that saw only well-formed calls
        // must not register the garbage counter.
        let sim = Simulation::new();
        let client = setup(&sim);
        let tel = sim.handle().telemetry().clone();
        let has = |t: &simnet::Telemetry, name: &str| {
            let name = name.to_string();
            t.snapshot()
                .counters
                .iter()
                .any(|c| c.layer == "rpc" && c.name == name)
        };
        assert!(!has(&tel, "served.calls"), "registered before any call");
        sim.spawn("c", move |env| {
            client
                .call(&env, 200_000, 1, 1, &xdr::to_bytes(&21u32))
                .unwrap();
        });
        sim.run();
        assert!(has(&tel, "served.calls"));
        assert!(
            !has(&tel, "served.garbage_requests"),
            "well-formed traffic registered the garbage counter"
        );
        assert_eq!(tel.counter("rpc", "served.calls").get(), 1);
    }

    #[test]
    fn concurrent_clients_get_matching_replies() {
        let sim = Simulation::new();
        let client = setup(&sim);
        for i in 0..8u32 {
            let c = client.clone();
            sim.spawn(format!("c{i}"), move |env| {
                let res = c
                    .call(&env, 200_000, 1, 1, &xdr::to_bytes(&(i * 10)))
                    .unwrap();
                let v: u32 = xdr::from_bytes(&res).unwrap();
                assert_eq!(v, i * 20);
            });
        }
        sim.run();
    }
}
