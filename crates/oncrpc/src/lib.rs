//! # oncrpc — ONC Remote Procedure Call (RFC 1831 / RFC 5531)
//!
//! The RPC substrate under the NFSv3 implementation and the GVFS proxies.
//! Provides:
//!
//! * wire-format types: call/reply message headers, authentication
//!   flavors (`AUTH_NONE`, `AUTH_SYS`, and the middleware-issued
//!   `AUTH_GVFS` short-lived identity credential used by the Grid virtual
//!   file system),
//! * record marking (the framing used by RPC over stream transports),
//! * a simulated transport ([`transport`]) that carries RPC messages over
//!   [`simnet::Link`]s with optional SSH-tunnel-style per-byte costs, and
//! * a server-side dispatcher routing calls to registered programs.
//!
//! GVFS proxies are simultaneously RPC *servers* (they accept the kernel
//! client's calls) and RPC *clients* (they forward misses upstream); both
//! roles are built from these pieces.

#![warn(missing_docs)]

pub mod auth;
pub mod batch;
pub mod client;
pub mod dispatch;
pub mod msg;
pub mod record;
pub mod transport;

pub use auth::{AuthFlavor, AuthGvfs, AuthSys, OpaqueAuth};
pub use batch::{BatchItem, BatchReplyItem, BATCH_ITEM_FAILED, BATCH_OK, MAX_BATCH_ITEMS};
pub use client::{prog_label, RetryPolicy, RpcClient, RpcError};
pub use dispatch::{Dispatcher, ProgramError, RpcProgram};
pub use msg::{AcceptStat, CallHeader, RejectStat, ReplyBody, RpcMessage, RPC_VERSION};
pub use transport::{endpoint, Endpoint, Listener, PendingCall, RpcChannel, WireSpec};
