//! Record marking (RFC 5531 §11).
//!
//! RPC over a stream transport delimits messages with fragment headers: a
//! 32-bit word whose top bit marks the final fragment and whose low 31
//! bits give the fragment length. The simulated transport sends whole
//! messages, but wire-size accounting and the (tested) framing functions
//! here follow the real format so byte counts on the simulated links match
//! what a real deployment would move.

/// Flag bit marking the last fragment of a record.
pub const LAST_FRAGMENT: u32 = 0x8000_0000;

/// Maximum bytes in a single fragment.
pub const MAX_FRAGMENT: usize = 0x7FFF_FFFF;

/// Size in bytes of one fragment header.
pub const HEADER_LEN: usize = 4;

/// Frame a message as a single-fragment record.
pub fn frame(message: &[u8]) -> Vec<u8> {
    assert!(
        message.len() <= MAX_FRAGMENT,
        "message too large for one fragment"
    );
    let mut out = Vec::with_capacity(message.len() + HEADER_LEN);
    out.extend_from_slice(&(LAST_FRAGMENT | message.len() as u32).to_be_bytes());
    out.extend_from_slice(message);
    out
}

/// Frame a message split into fragments of at most `fragment_size` bytes.
pub fn frame_fragmented(message: &[u8], fragment_size: usize) -> Vec<u8> {
    assert!(fragment_size > 0 && fragment_size <= MAX_FRAGMENT);
    let mut out = Vec::with_capacity(message.len() + HEADER_LEN * 2);
    let mut chunks = message.chunks(fragment_size).peekable();
    if message.is_empty() {
        return frame(message);
    }
    while let Some(chunk) = chunks.next() {
        let mut word = chunk.len() as u32;
        if chunks.peek().is_none() {
            word |= LAST_FRAGMENT;
        }
        out.extend_from_slice(&word.to_be_bytes());
        out.extend_from_slice(chunk);
    }
    out
}

/// Errors from record parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// Stream ended mid-header or mid-fragment.
    Truncated,
    /// Stream continued after the last fragment of the first record.
    TrailingData,
}

/// Reassemble one record from a framed byte stream; returns the message
/// and the number of stream bytes consumed.
pub fn parse(stream: &[u8]) -> Result<(Vec<u8>, usize), RecordError> {
    let mut message = Vec::new();
    let mut pos = 0;
    loop {
        if stream.len() < pos + HEADER_LEN {
            return Err(RecordError::Truncated);
        }
        let word = u32::from_be_bytes([
            stream[pos],
            stream[pos + 1],
            stream[pos + 2],
            stream[pos + 3],
        ]);
        pos += HEADER_LEN;
        let len = (word & !LAST_FRAGMENT) as usize;
        if stream.len() < pos + len {
            return Err(RecordError::Truncated);
        }
        message.extend_from_slice(&stream[pos..pos + len]);
        pos += len;
        if word & LAST_FRAGMENT != 0 {
            return Ok((message, pos));
        }
    }
}

/// Bytes a message occupies on the wire framed as a single fragment.
pub fn framed_len(message_len: usize) -> usize {
    message_len + HEADER_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fragment_round_trips() {
        let msg = b"hello rpc world!";
        let framed = frame(msg);
        assert_eq!(framed.len(), framed_len(msg.len()));
        let (back, used) = parse(&framed).unwrap();
        assert_eq!(back, msg);
        assert_eq!(used, framed.len());
    }

    #[test]
    fn empty_message_frames_as_empty_last_fragment() {
        let framed = frame(b"");
        assert_eq!(framed, vec![0x80, 0, 0, 0]);
        let (back, used) = parse(&framed).unwrap();
        assert!(back.is_empty());
        assert_eq!(used, 4);
    }

    #[test]
    fn fragmented_stream_reassembles() {
        let msg: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let framed = frame_fragmented(&msg, 300);
        // 1000 bytes in 300-byte fragments = 4 fragments = 4 headers.
        assert_eq!(framed.len(), 1000 + 4 * HEADER_LEN);
        let (back, used) = parse(&framed).unwrap();
        assert_eq!(back, msg);
        assert_eq!(used, framed.len());
    }

    #[test]
    fn truncated_streams_error() {
        let framed = frame(b"abcdef");
        assert_eq!(parse(&framed[..3]), Err(RecordError::Truncated));
        assert_eq!(parse(&framed[..7]), Err(RecordError::Truncated));
    }

    #[test]
    fn parse_reports_bytes_consumed_with_trailing_data() {
        let mut framed = frame(b"abc");
        framed.extend_from_slice(b"junk");
        let (back, used) = parse(&framed).unwrap();
        assert_eq!(back, b"abc");
        assert_eq!(used, framed.len() - 4);
    }
}
