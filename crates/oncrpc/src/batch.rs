//! Batched RPC: many logical calls in one wire round-trip.
//!
//! The fleet cloning scenario coalesces adjacent single-object fetches at
//! the proxy tiers into one WAN round-trip. Rather than teach the
//! transport a new message kind (which would disturb the carefully pinned
//! retransmit path), a batch is an ordinary call to a program-designated
//! *batch procedure* whose argument bytes are an envelope of `(proc,
//! args)` sub-calls and whose result bytes are an envelope of per-item
//! replies.
//!
//! Because the envelope rides inside the args of one standard call,
//! [`crate::RpcClient::call_batch`] goes through `call_dl` unchanged:
//! retransmits reuse the one encoded request byte-for-byte under one xid
//! (the duplicate-request-cache contract), and the server executes the
//! whole envelope at most once. Batching therefore composes with every
//! fault schedule the single-call path already survives.
//!
//! Envelope wire format (XDR, RFC 4506):
//!
//! ```text
//! batch_args:  u32 count, then count × { u32 proc; opaque args<> }
//! batch_reply: u32 count, then count × { u32 stat; opaque result<> }
//! ```
//!
//! `stat` mirrors the enclosing RPC accept semantics per item: 0 is
//! success; non-zero marks that item failed on the server (the other
//! items' results remain usable).

use xdr::{bounded_alloc, Decoder, Encoder, Result};

/// Cap on sub-calls per envelope; a hostile count word must not cause a
/// large allocation ([`bounded_alloc`] enforces it on decode).
pub const MAX_BATCH_ITEMS: usize = 4096;

/// Per-item status: the sub-call executed and produced result bytes.
pub const BATCH_OK: u32 = 0;
/// Per-item status: the sub-call failed on the server; result bytes are
/// empty and the item should be retried individually or surfaced.
pub const BATCH_ITEM_FAILED: u32 = 1;

/// One logical sub-call inside a batch envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// Procedure number within the enclosing call's program/version.
    pub proc: u32,
    /// Pre-encoded argument bytes for that procedure.
    pub args: Vec<u8>,
}

/// One per-item reply inside a batch reply envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReplyItem {
    /// [`BATCH_OK`] or [`BATCH_ITEM_FAILED`].
    pub stat: u32,
    /// Result bytes of the sub-call (empty on failure).
    pub result: Vec<u8>,
}

impl BatchReplyItem {
    /// Whether this item's sub-call succeeded.
    pub fn ok(&self) -> bool {
        self.stat == BATCH_OK
    }
}

/// Encode a batch request envelope (the args of the enclosing call).
pub fn encode_batch(items: &[BatchItem]) -> Vec<u8> {
    assert!(
        items.len() <= MAX_BATCH_ITEMS,
        "batch of {} exceeds MAX_BATCH_ITEMS",
        items.len()
    );
    let mut enc = Encoder::new();
    enc.put_u32(items.len() as u32);
    for item in items {
        enc.put_u32(item.proc);
        enc.put_opaque_var(&item.args);
    }
    enc.into_bytes()
}

/// Decode a batch request envelope (server side).
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<BatchItem>> {
    let mut dec = Decoder::new(bytes);
    let count = dec.get_u32()? as usize;
    let mut items = bounded_alloc(count, MAX_BATCH_ITEMS)?;
    for _ in 0..count {
        items.push(BatchItem {
            proc: dec.get_u32()?,
            args: dec.get_opaque_var()?,
        });
    }
    dec.finish()?;
    Ok(items)
}

/// Encode a batch reply envelope (the result bytes of the enclosing
/// call).
pub fn encode_batch_reply(items: &[BatchReplyItem]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(items.len() as u32);
    for item in items {
        enc.put_u32(item.stat);
        enc.put_opaque_var(&item.result);
    }
    enc.into_bytes()
}

/// Decode a batch reply envelope (client side).
pub fn decode_batch_reply(bytes: &[u8]) -> Result<Vec<BatchReplyItem>> {
    let mut dec = Decoder::new(bytes);
    let count = dec.get_u32()? as usize;
    let mut items = bounded_alloc(count, MAX_BATCH_ITEMS)?;
    for _ in 0..count {
        items.push(BatchReplyItem {
            stat: dec.get_u32()?,
            result: dec.get_opaque_var()?,
        });
    }
    dec.finish()?;
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let items = vec![
            BatchItem {
                proc: 6,
                args: vec![1, 2, 3],
            },
            BatchItem {
                proc: 3,
                args: vec![],
            },
            BatchItem {
                proc: 6,
                args: vec![0xFF; 37],
            },
        ];
        let wire = encode_batch(&items);
        assert_eq!(decode_batch(&wire).unwrap(), items);

        let replies = vec![
            BatchReplyItem {
                stat: BATCH_OK,
                result: vec![9; 5],
            },
            BatchReplyItem {
                stat: BATCH_ITEM_FAILED,
                result: vec![],
            },
        ];
        let wire = encode_batch_reply(&replies);
        let back = decode_batch_reply(&wire).unwrap();
        assert_eq!(back, replies);
        assert!(back[0].ok());
        assert!(!back[1].ok());
    }

    #[test]
    fn empty_envelope_is_valid() {
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), vec![]);
        assert_eq!(
            decode_batch_reply(&encode_batch_reply(&[])).unwrap(),
            vec![]
        );
    }

    #[test]
    fn hostile_count_is_rejected_without_allocation() {
        // count = u32::MAX with no items behind it.
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX);
        assert!(decode_batch(&enc.into_bytes()).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut wire = encode_batch(&[BatchItem {
            proc: 1,
            args: vec![4],
        }]);
        wire.extend_from_slice(&[0, 0, 0, 0]);
        assert!(decode_batch(&wire).is_err());
    }
}
