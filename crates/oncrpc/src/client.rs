//! RPC client stub.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;

use parking_lot::Mutex;
use simnet::{splitmix64, Counter, Env, Gauge, Histogram, SimDuration, Telemetry};
use xdr::Bytes;

use crate::auth::OpaqueAuth;
use crate::msg::{AcceptStat, CallHeader, RejectStat, ReplyBody, RpcMessage};
use crate::transport::RpcChannel;

/// Errors surfaced by [`RpcClient::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum RpcError {
    /// The transport is gone (listener dropped / connection reset).
    Transport,
    /// The reply could not be parsed.
    Decode(xdr::Error),
    /// Reply xid did not match the call.
    XidMismatch {
        /// xid we sent.
        expected: u32,
        /// xid we got back.
        got: u32,
    },
    /// The server accepted the call but reported a failure.
    Accept(AcceptStat),
    /// The server denied the call.
    Denied(RejectStat),
    /// All retransmit attempts timed out without a matching reply.
    TimedOut,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Transport => write!(f, "RPC transport failure"),
            RpcError::Decode(e) => write!(f, "RPC reply decode error: {e}"),
            RpcError::XidMismatch { expected, got } => {
                write!(f, "RPC xid mismatch: expected {expected}, got {got}")
            }
            RpcError::Accept(s) => write!(f, "RPC accepted-call failure: {s:?}"),
            RpcError::Denied(s) => write!(f, "RPC call denied: {s:?}"),
            RpcError::TimedOut => write!(f, "RPC call timed out after all retransmits"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Retransmission policy for deadline-aware calls ([`RpcClient::call_dl`]).
///
/// A call keeps its xid across retransmits (that is what lets the
/// server's duplicate-request cache recognise it); each attempt waits for
/// a per-attempt timeout that doubles up to `max_timeout`, with optional
/// deterministic jitter derived from `(xid, attempt)` so concurrent
/// callers don't retransmit in lockstep yet every run replays
/// identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Timeout for the first attempt.
    pub first_timeout: SimDuration,
    /// Cap on the per-attempt timeout as it doubles.
    pub max_timeout: SimDuration,
    /// Total attempts (first transmission + retransmits).
    pub max_attempts: u32,
    /// Fraction of the timeout added as deterministic jitter (0 = none).
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// A policy sized for the paper's WAN (~34 ms RTT, multi-second
    /// windowed transfers): 5 s first timeout doubling to 20 s, eight
    /// attempts — enough to ride out a 10 s outage with margin.
    pub fn wan() -> Self {
        RetryPolicy {
            first_timeout: SimDuration::from_secs(5),
            max_timeout: SimDuration::from_secs(20),
            max_attempts: 8,
            jitter_frac: 0.1,
        }
    }

    /// Per-attempt timeout for `attempt` (0-based), before jitter.
    fn base_timeout(&self, attempt: u32) -> SimDuration {
        let mut t = self.first_timeout;
        for _ in 0..attempt {
            t = t * 2;
            if t >= self.max_timeout {
                return self.max_timeout;
            }
        }
        t
    }

    /// Deterministic jitter for `(xid, attempt)`: a pure function of its
    /// inputs, so a rerun with the same seed retransmits at the same
    /// virtual instants.
    fn jitter(&self, xid: u32, attempt: u32, timeout: SimDuration) -> SimDuration {
        if self.jitter_frac <= 0.0 {
            return SimDuration::ZERO;
        }
        let word = splitmix64(((xid as u64) << 32) | attempt as u64);
        let unit = (word >> 11) as f64 / (1u64 << 53) as f64;
        SimDuration::from_secs_f64(timeout.as_secs_f64() * self.jitter_frac * unit)
    }
}

/// Outcome of decoding one reply against the xid we are waiting for.
enum ReplyMatch {
    /// The reply matches our call: the final result.
    Done(Result<Bytes, RpcError>),
    /// A stray reply for some other xid: discard and keep waiting.
    Stale,
}

/// Telemetry handles for one program, resolved against the registry once
/// and then recorded through lock-free shared cells. Metric names are
/// exactly the ones the per-call resolution used to produce, so snapshots
/// and reports are unchanged.
struct ProgTel {
    prog: u32,
    outstanding: Gauge,
    calls: Counter,
    // Failure counters register on first *increment* (OnceLock), not at
    // construction: snapshots list every registered metric, and a
    // `client.X.errors: 0` line that the lazy per-event resolution never
    // produced would change committed reports.
    errors: OnceLock<Counter>,
    stale_replies: OnceLock<Counter>,
    timeouts: OnceLock<Counter>,
    retransmits: OnceLock<Counter>,
    /// Per-procedure latency histograms; procedure numbers are tiny and
    /// few, so a sorted vec beats a map.
    procs: Mutex<Vec<(u32, Histogram)>>,
}

impl ProgTel {
    fn register(tel: &Telemetry, prog: u32) -> ProgTel {
        let label = prog_label(prog);
        ProgTel {
            prog,
            outstanding: tel.gauge("rpc", format!("client.{label}.outstanding")),
            calls: tel.counter("rpc", format!("client.{label}.calls")),
            errors: OnceLock::new(),
            stale_replies: OnceLock::new(),
            timeouts: OnceLock::new(),
            retransmits: OnceLock::new(),
            procs: Mutex::new(Vec::new()),
        }
    }

    fn rare(&self, cell: &OnceLock<Counter>, tel: &Telemetry, name: &str) -> Counter {
        cell.get_or_init(|| {
            tel.counter("rpc", format!("client.{}.{}", prog_label(self.prog), name))
        })
        .clone()
    }

    /// The latency histogram for `proc`, registering it on first use.
    fn proc_hist(&self, tel: &Telemetry, proc: u32) -> Histogram {
        let mut procs = self.procs.lock();
        match procs.binary_search_by_key(&proc, |(p, _)| *p) {
            Ok(i) => procs[i].1.clone(),
            Err(i) => {
                let label = prog_label(self.prog);
                let h = tel.histogram("rpc", format!("client.{label}.proc{proc}"));
                procs.insert(i, (proc, h.clone()));
                h
            }
        }
    }
}

/// Per-client cache of [`ProgTel`] handles, shared across the stubs that
/// [`RpcClient::with_cred`]/[`with_policy`](RpcClient::with_policy)
/// derive, so a proxy's per-user stubs all record through one set of
/// cells. One client talks to at most a handful of programs.
#[derive(Default)]
struct TelCache {
    progs: Mutex<Vec<Arc<ProgTel>>>,
}

impl TelCache {
    fn prog(&self, tel: &Telemetry, prog: u32) -> Arc<ProgTel> {
        let mut progs = self.progs.lock();
        match progs.binary_search_by_key(&prog, |pt| pt.prog) {
            Ok(i) => progs[i].clone(),
            Err(i) => {
                let pt = Arc::new(ProgTel::register(tel, prog));
                progs.insert(i, pt.clone());
                pt
            }
        }
    }
}

/// A client stub bound to one transport channel and one credential.
/// Cloneable and shareable across simulated processes; xids are allocated
/// from a shared atomic counter so concurrent callers never collide.
#[derive(Clone)]
pub struct RpcClient {
    chan: RpcChannel,
    cred: OpaqueAuth,
    next_xid: Arc<AtomicU32>,
    policy: Option<RetryPolicy>,
    tel: Arc<TelCache>,
}

impl RpcClient {
    /// Create a client over `chan` using `cred` for every call.
    pub fn new(chan: RpcChannel, cred: OpaqueAuth) -> Self {
        RpcClient {
            chan,
            cred,
            next_xid: Arc::new(AtomicU32::new(1)),
            policy: None,
            tel: Arc::new(TelCache::default()),
        }
    }

    /// Replace the credential (e.g. after middleware refreshes a
    /// short-lived GVFS identity).
    pub fn with_cred(&self, cred: OpaqueAuth) -> Self {
        RpcClient {
            chan: self.chan.clone(),
            cred,
            next_xid: self.next_xid.clone(),
            policy: self.policy,
            tel: self.tel.clone(),
        }
    }

    /// Attach a retransmission policy; [`RpcClient::call_dl`] on the
    /// returned stub retransmits per `policy` instead of waiting forever.
    pub fn with_policy(&self, policy: RetryPolicy) -> Self {
        RpcClient {
            chan: self.chan.clone(),
            cred: self.cred.clone(),
            next_xid: self.next_xid.clone(),
            policy: Some(policy),
            tel: self.tel.clone(),
        }
    }

    /// The retransmission policy, if one is attached.
    pub fn policy(&self) -> Option<RetryPolicy> {
        self.policy
    }

    /// The credential attached to calls from this stub.
    pub fn cred(&self) -> &OpaqueAuth {
        &self.cred
    }

    /// Underlying channel (proxies use it to forward raw messages).
    pub fn channel(&self) -> &RpcChannel {
        &self.chan
    }

    /// Call `(prog, vers, proc)` with pre-encoded `args`, returning the
    /// result bytes of a successful reply.
    ///
    /// Every call records into the telemetry registry: a per-procedure
    /// virtual-time histogram `rpc/client.<prog>.proc<N>` plus call and
    /// error counters — this is the single choke point through which all
    /// client-side RPC traffic flows (kernel client, proxies, channel).
    pub fn call(
        &self,
        env: &Env,
        prog: u32,
        vers: u32,
        proc: u32,
        args: &[u8],
    ) -> Result<Bytes, RpcError> {
        let target = CallTarget { prog, vers, proc };
        self.instrumented(env, prog, proc, |c, pt| c.call_inner(env, pt, target, args))
    }

    /// Deadline-aware variant of [`RpcClient::call`]: when a
    /// [`RetryPolicy`] is attached, each attempt is bounded by a timeout
    /// and the request is retransmitted — under the *same* xid, so the
    /// server's duplicate-request cache can suppress re-execution — until
    /// a matching reply arrives or attempts are exhausted
    /// ([`RpcError::TimedOut`]). Without a policy this is identical to
    /// [`RpcClient::call`]. All fault-exposed callers (the GVFS proxy
    /// chain, the NFS client) go through this entry point.
    pub fn call_dl(
        &self,
        env: &Env,
        prog: u32,
        vers: u32,
        proc: u32,
        args: &[u8],
    ) -> Result<Bytes, RpcError> {
        let target = CallTarget { prog, vers, proc };
        self.instrumented(env, prog, proc, |c, pt| match c.policy {
            Some(policy) => c.call_retry(env, pt, target, args, policy),
            None => c.call_inner(env, pt, target, args),
        })
    }

    /// Issue many logical sub-calls as ONE wire round-trip: encodes
    /// `items` into a [`crate::batch`] envelope and sends it as a single
    /// call to `batch_proc` via [`RpcClient::call_dl`]. Because the
    /// envelope is ordinary argument bytes, the retransmit path is
    /// untouched — one xid, one shared encoded request across attempts —
    /// so batching inherits the duplicate-request-cache byte-identity
    /// contract for free. Returns the per-item replies in request order.
    pub fn call_batch(
        &self,
        env: &Env,
        prog: u32,
        vers: u32,
        batch_proc: u32,
        items: &[crate::batch::BatchItem],
    ) -> Result<Vec<crate::batch::BatchReplyItem>, RpcError> {
        let args = crate::batch::encode_batch(items);
        let reply = self.call_dl(env, prog, vers, batch_proc, &args)?;
        crate::batch::decode_batch_reply(&reply).map_err(RpcError::Decode)
    }

    /// Shared telemetry wrapper: per-procedure latency histogram,
    /// call/error counters, outstanding gauge — all recorded through
    /// handles cached in [`TelCache`]; after a program's first call the
    /// global registry is never locked again on this path.
    fn instrumented(
        &self,
        env: &Env,
        prog: u32,
        proc: u32,
        body: impl FnOnce(&Self, &ProgTel) -> Result<Bytes, RpcError>,
    ) -> Result<Bytes, RpcError> {
        let t0 = env.now();
        let pt = self.tel.prog(env.telemetry(), prog);
        pt.outstanding.inc();
        let result = body(self, &pt);
        pt.outstanding.dec();
        pt.proc_hist(env.telemetry(), proc).record(env.now() - t0);
        pt.calls.inc();
        if result.is_err() {
            pt.rare(&pt.errors, env.telemetry(), "errors").inc();
        }
        result
    }

    fn encode_call(&self, xid: u32, target: CallTarget, args: &[u8]) -> Vec<u8> {
        let msg = RpcMessage::Call {
            header: CallHeader {
                xid,
                prog: target.prog,
                vers: target.vers,
                proc: target.proc,
                cred: self.cred.clone(),
                verf: OpaqueAuth::none(),
            },
            args: args.into(),
        };
        xdr::to_bytes(&msg)
    }

    /// Decode one reply against the xid we sent. A reply bearing some
    /// other xid is a stray (stale retransmit answer, reordered delivery)
    /// and must be discarded — not treated as fatal for this call.
    fn match_reply(&self, env: &Env, pt: &ProgTel, xid: u32, reply_bytes: &Bytes) -> ReplyMatch {
        let reply = match RpcMessage::decode_shared(reply_bytes) {
            Ok(r) => r,
            Err(e) => return ReplyMatch::Done(Err(RpcError::Decode(e))),
        };
        match reply {
            RpcMessage::Reply { xid: rxid, body } => {
                if rxid != xid {
                    pt.rare(&pt.stale_replies, env.telemetry(), "stale_replies")
                        .inc();
                    return ReplyMatch::Stale;
                }
                ReplyMatch::Done(match body {
                    ReplyBody::Accepted {
                        stat: AcceptStat::Success,
                        results,
                        ..
                    } => Ok(results),
                    ReplyBody::Accepted { stat, .. } => Err(RpcError::Accept(stat)),
                    ReplyBody::Denied(stat) => Err(RpcError::Denied(stat)),
                })
            }
            RpcMessage::Call { .. } => {
                ReplyMatch::Done(Err(RpcError::Decode(xdr::Error::InvalidDiscriminant(0))))
            }
        }
    }

    fn call_inner(
        &self,
        env: &Env,
        pt: &ProgTel,
        target: CallTarget,
        args: &[u8],
    ) -> Result<Bytes, RpcError> {
        let xid = self.next_xid.fetch_add(1, Ordering::Relaxed);
        let request = self.encode_call(xid, target, args);
        let pending = self.chan.send_request(env, request);
        loop {
            let reply_bytes = pending.recv(env).ok_or(RpcError::Transport)?;
            match self.match_reply(env, pt, xid, &reply_bytes) {
                ReplyMatch::Done(result) => return result,
                ReplyMatch::Stale => continue,
            }
        }
    }

    fn call_retry(
        &self,
        env: &Env,
        pt: &ProgTel,
        target: CallTarget,
        args: &[u8],
        policy: RetryPolicy,
    ) -> Result<Bytes, RpcError> {
        // One xid for the whole logical call: retransmits must be
        // recognisable as duplicates by the server's DRC.
        let xid = self.next_xid.fetch_add(1, Ordering::Relaxed);
        // The encoded request is shared, not re-encoded, across attempts:
        // every retransmission sends a view of the same buffer, so it is
        // byte-identical by construction.
        let request: Bytes = self.encode_call(xid, target, args).into();
        let attempts = policy.max_attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                pt.rare(&pt.retransmits, env.telemetry(), "retransmits")
                    .inc();
            }
            let timeout = policy.base_timeout(attempt);
            let deadline = env.now() + timeout + policy.jitter(xid, attempt, timeout);
            let pending = self.chan.send_request(env, request.clone());
            while let Some(reply_bytes) = pending.recv_deadline(env, deadline) {
                match self.match_reply(env, pt, xid, &reply_bytes) {
                    ReplyMatch::Done(result) => return result,
                    ReplyMatch::Stale => continue,
                }
            }
            pt.rare(&pt.timeouts, env.telemetry(), "timeouts").inc();
            // Abandoning `pending` here drops its private reply queue, so
            // a late reply to this attempt is discarded on arrival rather
            // than confusing a future call.
        }
        Err(RpcError::TimedOut)
    }
}

/// The `(prog, vers, proc)` triple a call is addressed to, bundled so
/// the internal call paths pass one value instead of three.
#[derive(Clone, Copy)]
struct CallTarget {
    prog: u32,
    vers: u32,
    proc: u32,
}

/// Human-readable label for well-known program numbers (used in metric
/// names; unknown programs render as `prog<N>`).
pub fn prog_label(prog: u32) -> String {
    match prog {
        100_003 => "nfs3".to_string(),
        100_005 => "mount".to_string(),
        400_100 => "channel".to_string(),
        other => format!("prog{other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthSys;
    use crate::transport::{endpoint, WireSpec};
    use simnet::{Link, LinkFaultPlan, SimHandle, SimTime, Simulation};
    use std::sync::atomic::AtomicU32 as TestCounter;

    const PROG: u32 = 200_000;

    fn fast_link(h: &SimHandle, name: &str) -> Link {
        Link::new(h, name, 1e9, SimDuration::from_millis(1))
    }

    fn request_xid(req: &[u8]) -> u32 {
        match xdr::from_bytes::<RpcMessage>(req).unwrap() {
            RpcMessage::Call { header, .. } => header.xid,
            RpcMessage::Reply { .. } => panic!("server got a reply"),
        }
    }

    fn test_policy(first_secs: u64, max_secs: u64, attempts: u32) -> RetryPolicy {
        RetryPolicy {
            first_timeout: SimDuration::from_secs(first_secs),
            max_timeout: SimDuration::from_secs(max_secs),
            max_attempts: attempts,
            jitter_frac: 0.0,
        }
    }

    fn client_over(
        sim: &Simulation,
        up: Link,
        handler: Arc<dyn crate::transport::RpcHandler>,
    ) -> RpcClient {
        let h = sim.handle();
        let ep = endpoint(&h, up, fast_link(&h, "down"), WireSpec::plain());
        ep.listener.serve("srv", handler, 1);
        RpcClient::new(
            ep.channel,
            OpaqueAuth::sys(&AuthSys::new("client", 1000, 1000)),
        )
    }

    #[test]
    fn stale_reply_is_discarded_and_call_retransmits() {
        // Server answers the first request with the WRONG xid (a stray),
        // then answers correctly. The client must discard the stray —
        // previously fatal — count it, time out, and retransmit.
        let sim = Simulation::new();
        let h = sim.handle();
        let served = Arc::new(TestCounter::new(0));
        let s2 = served.clone();
        let handler = Arc::new(move |_env: &Env, req: &[u8]| {
            let xid = request_xid(req);
            let k = s2.fetch_add(1, Ordering::SeqCst);
            let reply_xid = if k == 0 { xid.wrapping_add(7_000) } else { xid };
            xdr::to_bytes(&RpcMessage::success(reply_xid, xdr::to_bytes(&5u32)))
        });
        let client =
            client_over(&sim, fast_link(&h, "up"), handler).with_policy(test_policy(1, 4, 4));
        sim.spawn("c", move |env| {
            let res = client.call_dl(&env, PROG, 1, 1, &[]).unwrap();
            let v: u32 = xdr::from_bytes(&res).unwrap();
            assert_eq!(v, 5);
        });
        sim.run();
        let tel = h.telemetry().clone();
        assert_eq!(
            tel.counter("rpc", "client.prog200000.stale_replies").get(),
            1
        );
        assert_eq!(tel.counter("rpc", "client.prog200000.timeouts").get(), 1);
        assert_eq!(tel.counter("rpc", "client.prog200000.retransmits").get(), 1);
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn retransmit_rides_out_an_outage() {
        // Uplink is down for the first 7 s; the call starts at t=0. The
        // first two attempts are lost; the third (t=3 s deadline → 1+2+…)
        // lands after recovery. Same xid throughout.
        let sim = Simulation::new();
        let h = sim.handle();
        let up = fast_link(&h, "up");
        up.install_faults(
            LinkFaultPlan::new(11).outage(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(7)),
        );
        let served = Arc::new(TestCounter::new(0));
        let s2 = served.clone();
        let handler = Arc::new(move |_env: &Env, req: &[u8]| {
            let xid = request_xid(req);
            s2.fetch_add(1, Ordering::SeqCst);
            xdr::to_bytes(&RpcMessage::success(xid, xdr::to_bytes(&9u32)))
        });
        let client = client_over(&sim, up, handler).with_policy(test_policy(1, 8, 8));
        sim.spawn("c", move |env| {
            let res = client.call_dl(&env, PROG, 1, 1, &[]).unwrap();
            let v: u32 = xdr::from_bytes(&res).unwrap();
            assert_eq!(v, 9);
            // Deadlines 1,2,4,8 → attempts at t=0,1,3,7; the t=7 attempt
            // is the first past the outage.
            assert!(env.now() >= SimTime::ZERO + SimDuration::from_secs(7));
        });
        sim.run();
        let tel = h.telemetry().clone();
        assert_eq!(tel.counter("rpc", "client.prog200000.timeouts").get(), 3);
        assert_eq!(tel.counter("rpc", "client.prog200000.retransmits").get(), 3);
        // Only the post-recovery retransmit reached the server.
        assert_eq!(served.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn exhausted_attempts_time_out_with_exact_schedule() {
        let sim = Simulation::new();
        let h = sim.handle();
        let up = fast_link(&h, "up");
        up.install_faults(LinkFaultPlan::new(3).drop_prob(1.0));
        let handler = Arc::new(|_env: &Env, req: &[u8]| {
            let xid = request_xid(req);
            xdr::to_bytes(&RpcMessage::success(xid, Vec::new()))
        });
        let client = client_over(&sim, up, handler).with_policy(test_policy(1, 4, 3));
        sim.spawn("c", move |env| {
            let err = client.call_dl(&env, PROG, 1, 1, &[]).unwrap_err();
            assert_eq!(err, RpcError::TimedOut);
            // 1 s + 2 s + 4 s of per-attempt timeouts, no jitter.
            assert_eq!(env.now(), SimTime::ZERO + SimDuration::from_secs(7));
        });
        sim.run();
        let tel = h.telemetry().clone();
        assert_eq!(tel.counter("rpc", "client.prog200000.timeouts").get(), 3);
        assert_eq!(tel.counter("rpc", "client.prog200000.retransmits").get(), 2);
        assert_eq!(tel.counter("rpc", "client.prog200000.errors").get(), 1);
    }

    #[test]
    fn call_dl_without_policy_matches_legacy_call() {
        let sim = Simulation::new();
        let h = sim.handle();
        let handler = Arc::new(|_env: &Env, req: &[u8]| {
            let xid = request_xid(req);
            xdr::to_bytes(&RpcMessage::success(xid, xdr::to_bytes(&1u32)))
        });
        let client = client_over(&sim, fast_link(&h, "up"), handler);
        assert!(client.policy().is_none());
        sim.spawn("c", move |env| {
            let res = client.call_dl(&env, PROG, 1, 1, &[]).unwrap();
            let v: u32 = xdr::from_bytes(&res).unwrap();
            assert_eq!(v, 1);
        });
        let end = sim.run();
        assert!(
            end < SimTime::ZERO + SimDuration::from_millis(100),
            "{end:?}"
        );
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::wan();
        let t = p.base_timeout(1);
        let a = p.jitter(42, 1, t);
        let b = p.jitter(42, 1, t);
        let c = p.jitter(43, 1, t);
        assert_eq!(a, b);
        assert!(a.as_secs_f64() <= t.as_secs_f64() * p.jitter_frac);
        // Different xids almost surely jitter differently.
        assert_ne!(a, c);
    }

    #[test]
    fn base_timeout_doubles_and_caps() {
        let p = test_policy(1, 5, 8);
        assert_eq!(p.base_timeout(0), SimDuration::from_secs(1));
        assert_eq!(p.base_timeout(1), SimDuration::from_secs(2));
        assert_eq!(p.base_timeout(2), SimDuration::from_secs(4));
        assert_eq!(p.base_timeout(3), SimDuration::from_secs(5));
        assert_eq!(p.base_timeout(7), SimDuration::from_secs(5));
    }

    #[test]
    fn rare_counters_register_on_first_increment_and_resolve_once() {
        // DESIGN.md §5.6: failure counters live in OnceLock cells so the
        // metric only exists in snapshots once the failure actually
        // happened, and the registry resolution runs exactly once no
        // matter how many times the path fires afterwards.
        let tel = Telemetry::new();
        let pt = ProgTel::register(&tel, PROG);
        let names = |t: &Telemetry| -> Vec<String> {
            t.snapshot()
                .counters
                .iter()
                .map(|c| c.name.clone())
                .collect()
        };
        assert!(
            !names(&tel).iter().any(|n| n.ends_with(".timeouts")),
            "timeouts registered before any timeout"
        );
        let before = tel.debug_resolutions();
        pt.rare(&pt.timeouts, &tel, "timeouts").inc();
        let after_first = tel.debug_resolutions();
        pt.rare(&pt.timeouts, &tel, "timeouts").inc();
        pt.rare(&pt.timeouts, &tel, "timeouts").inc();
        let after_more = tel.debug_resolutions();
        assert!(names(&tel).iter().any(|n| n.ends_with(".timeouts")));
        assert_eq!(
            after_more - after_first,
            0,
            "later increments must reuse the cached cell"
        );
        if cfg!(debug_assertions) {
            assert_eq!(after_first - before, 1, "exactly one registry resolution");
        }
        // The cell is shared: all three increments landed on one counter.
        let snap = tel.snapshot();
        let c = snap
            .counters
            .iter()
            .find(|c| c.name.ends_with(".timeouts"))
            .unwrap();
        assert_eq!(c.value, 3);
        // And the untouched cells stayed unregistered.
        assert!(!names(&tel).iter().any(|n| n.ends_with(".errors")));
    }

    #[test]
    fn proc_histogram_cache_is_order_independent() {
        // The per-procedure sorted-vec cache must yield the same metric
        // set whatever order procedures first arrive in, and must hit
        // the registry once per procedure, not once per record.
        let arrival_orders: [&[u32]; 2] = [&[7, 1, 4], &[1, 4, 7]];
        let mut name_sets = Vec::new();
        for order in arrival_orders {
            let tel = Telemetry::new();
            let pt = ProgTel::register(&tel, PROG);
            for &proc in order {
                pt.proc_hist(&tel, proc).record(SimDuration::from_millis(1));
            }
            let before = tel.debug_resolutions();
            for &proc in order {
                pt.proc_hist(&tel, proc).record(SimDuration::from_millis(2));
            }
            assert_eq!(
                tel.debug_resolutions() - before,
                0,
                "second pass must be served from the sorted-vec cache"
            );
            let mut names: Vec<String> = tel
                .snapshot()
                .histograms
                .iter()
                .map(|h| h.name.clone())
                .collect();
            names.sort();
            name_sets.push(names);
        }
        assert_eq!(name_sets[0], name_sets[1]);
    }
}
