//! RPC client stub.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use simnet::Env;

use crate::auth::OpaqueAuth;
use crate::msg::{AcceptStat, CallHeader, RejectStat, ReplyBody, RpcMessage};
use crate::transport::RpcChannel;

/// Errors surfaced by [`RpcClient::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum RpcError {
    /// The transport is gone (listener dropped / connection reset).
    Transport,
    /// The reply could not be parsed.
    Decode(xdr::Error),
    /// Reply xid did not match the call.
    XidMismatch {
        /// xid we sent.
        expected: u32,
        /// xid we got back.
        got: u32,
    },
    /// The server accepted the call but reported a failure.
    Accept(AcceptStat),
    /// The server denied the call.
    Denied(RejectStat),
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Transport => write!(f, "RPC transport failure"),
            RpcError::Decode(e) => write!(f, "RPC reply decode error: {e}"),
            RpcError::XidMismatch { expected, got } => {
                write!(f, "RPC xid mismatch: expected {expected}, got {got}")
            }
            RpcError::Accept(s) => write!(f, "RPC accepted-call failure: {s:?}"),
            RpcError::Denied(s) => write!(f, "RPC call denied: {s:?}"),
        }
    }
}

impl std::error::Error for RpcError {}

/// A client stub bound to one transport channel and one credential.
/// Cloneable and shareable across simulated processes; xids are allocated
/// from a shared atomic counter so concurrent callers never collide.
#[derive(Clone)]
pub struct RpcClient {
    chan: RpcChannel,
    cred: OpaqueAuth,
    next_xid: Arc<AtomicU32>,
}

impl RpcClient {
    /// Create a client over `chan` using `cred` for every call.
    pub fn new(chan: RpcChannel, cred: OpaqueAuth) -> Self {
        RpcClient {
            chan,
            cred,
            next_xid: Arc::new(AtomicU32::new(1)),
        }
    }

    /// Replace the credential (e.g. after middleware refreshes a
    /// short-lived GVFS identity).
    pub fn with_cred(&self, cred: OpaqueAuth) -> Self {
        RpcClient {
            chan: self.chan.clone(),
            cred,
            next_xid: self.next_xid.clone(),
        }
    }

    /// The credential attached to calls from this stub.
    pub fn cred(&self) -> &OpaqueAuth {
        &self.cred
    }

    /// Underlying channel (proxies use it to forward raw messages).
    pub fn channel(&self) -> &RpcChannel {
        &self.chan
    }

    /// Call `(prog, vers, proc)` with pre-encoded `args`, returning the
    /// result bytes of a successful reply.
    ///
    /// Every call records into the telemetry registry: a per-procedure
    /// virtual-time histogram `rpc/client.<prog>.proc<N>` plus call and
    /// error counters — this is the single choke point through which all
    /// client-side RPC traffic flows (kernel client, proxies, channel).
    pub fn call(
        &self,
        env: &Env,
        prog: u32,
        vers: u32,
        proc: u32,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, RpcError> {
        let t0 = env.now();
        let tel = env.telemetry();
        let label = prog_label(prog);
        let outstanding = tel.gauge("rpc", format!("client.{label}.outstanding"));
        outstanding.inc();
        let result = self.call_inner(env, prog, vers, proc, args);
        outstanding.dec();
        tel.histogram("rpc", format!("client.{label}.proc{proc}"))
            .record(env.now() - t0);
        tel.counter("rpc", format!("client.{label}.calls")).inc();
        if result.is_err() {
            tel.counter("rpc", format!("client.{label}.errors")).inc();
        }
        result
    }

    fn call_inner(
        &self,
        env: &Env,
        prog: u32,
        vers: u32,
        proc: u32,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, RpcError> {
        let xid = self.next_xid.fetch_add(1, Ordering::Relaxed);
        let msg = RpcMessage::Call {
            header: CallHeader {
                xid,
                prog,
                vers,
                proc,
                cred: self.cred.clone(),
                verf: OpaqueAuth::none(),
            },
            args,
        };
        let request = xdr::to_bytes(&msg);
        let reply_bytes = self
            .chan
            .call_raw(env, request)
            .ok_or(RpcError::Transport)?;
        let reply: RpcMessage = xdr::from_bytes(&reply_bytes).map_err(RpcError::Decode)?;
        match reply {
            RpcMessage::Reply { xid: rxid, body } => {
                if rxid != xid {
                    return Err(RpcError::XidMismatch {
                        expected: xid,
                        got: rxid,
                    });
                }
                match body {
                    ReplyBody::Accepted {
                        stat: AcceptStat::Success,
                        results,
                        ..
                    } => Ok(results),
                    ReplyBody::Accepted { stat, .. } => Err(RpcError::Accept(stat)),
                    ReplyBody::Denied(stat) => Err(RpcError::Denied(stat)),
                }
            }
            RpcMessage::Call { .. } => Err(RpcError::Decode(xdr::Error::InvalidDiscriminant(0))),
        }
    }
}

/// Human-readable label for well-known program numbers (used in metric
/// names; unknown programs render as `prog<N>`).
pub fn prog_label(prog: u32) -> String {
    match prog {
        100_003 => "nfs3".to_string(),
        100_005 => "mount".to_string(),
        400_100 => "channel".to_string(),
        other => format!("prog{other}"),
    }
}
