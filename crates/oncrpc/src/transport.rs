//! Simulated RPC transport over [`simnet`] links.
//!
//! An [`Endpoint`] pairs a client-side [`RpcChannel`] with a server-side
//! [`Listener`]. Requests pay the uplink's latency + shared-bandwidth
//! serialization, optionally plus an SSH-tunnel-style cost ([`WireSpec`]):
//! per-message byte overhead and a cipher-throughput time cost, modelling
//! the paper's SSH-tunnelled private data channels. Replies pay the same
//! on the downlink, charged to the server worker that produced them.
//!
//! A GVFS proxy is an RPC *handler* that owns an `RpcChannel` to the next
//! hop, so arbitrary proxy chains (client proxy → LAN cache proxy →
//! server proxy → kernel server) compose from these endpoints.

use std::sync::Arc;

use simnet::{
    channel, Env, Link, Receiver, RecvTimeoutError, Sender, SimDuration, SimHandle, SimTime,
};
use xdr::Bytes;

use crate::record;

/// Cost model for one hop's wire encapsulation.
#[derive(Debug, Clone, Copy)]
pub struct WireSpec {
    /// Extra bytes added to every message (framing, tunnel headers, MACs).
    pub per_message_overhead: u64,
    /// Multiplicative byte overhead (1.0 = none); SSH adds a few percent.
    pub byte_overhead_factor: f64,
    /// Cipher throughput in bytes/second; `None` for an unencrypted hop.
    /// The sending side pays `bytes / throughput` of CPU time, which
    /// covers both ends' cipher work in one charge.
    pub cipher_bytes_per_sec: Option<f64>,
}

impl WireSpec {
    /// A plain TCP hop: only record-marking framing.
    pub fn plain() -> Self {
        WireSpec {
            per_message_overhead: record::HEADER_LEN as u64,
            byte_overhead_factor: 1.0,
            cipher_bytes_per_sec: None,
        }
    }

    /// An SSH-tunnelled hop as used by GVFS private data channels:
    /// per-packet MAC/padding overhead and a cipher-throughput charge.
    pub fn ssh_tunnel(cipher_bytes_per_sec: f64) -> Self {
        WireSpec {
            per_message_overhead: record::HEADER_LEN as u64 + 48,
            byte_overhead_factor: 1.02,
            cipher_bytes_per_sec: Some(cipher_bytes_per_sec),
        }
    }

    /// Wire bytes for a `payload_len`-byte message under this spec.
    pub fn wire_bytes(&self, payload_len: usize) -> u64 {
        (payload_len as f64 * self.byte_overhead_factor) as u64 + self.per_message_overhead
    }

    /// CPU time charged for ciphering a `payload_len`-byte message.
    pub fn cipher_time(&self, payload_len: usize) -> SimDuration {
        match self.cipher_bytes_per_sec {
            Some(tp) => SimDuration::from_secs_f64(payload_len as f64 / tp),
            None => SimDuration::ZERO,
        }
    }
}

struct Envelope {
    bytes: Bytes,
    reply_tx: Sender<Bytes>,
}

/// Client-side handle: sends a request message and blocks (in virtual
/// time) for the matching reply. Cloneable; concurrent callers interleave
/// on the shared links.
#[derive(Clone)]
pub struct RpcChannel {
    handle: SimHandle,
    up: Link,
    down: Link,
    wire: WireSpec,
    tx: Sender<Envelope>,
}

/// A request handed to the wire: the handle on which its reply — or
/// silence — arrives. Every request gets a private reply queue, so a
/// reply to an abandoned (retransmitted-over) attempt lands on a dropped
/// receiver and is discarded by construction.
pub struct PendingCall {
    reply_rx: Receiver<Bytes>,
}

impl PendingCall {
    /// Wait indefinitely for the reply. `None` means the listener is gone
    /// or the message was lost to a link fault (legacy semantics: loss
    /// surfaces immediately as a transport failure).
    pub fn recv(&self, env: &Env) -> Option<Bytes> {
        self.reply_rx.recv(env).ok()
    }

    /// Wait until `deadline` for the reply. Lost messages are surfaced
    /// the way a real client sees them: by silence. If the request was
    /// dropped by the uplink's fault plan, the reply by the downlink's,
    /// or the listener is gone, the caller waits out its deadline and
    /// gets `None` — it cannot tell which of the three happened, which
    /// is exactly why retransmission and the server's duplicate-request
    /// cache exist.
    pub fn recv_deadline(&self, env: &Env, deadline: SimTime) -> Option<Bytes> {
        match self.reply_rx.recv_deadline(env, deadline) {
            Ok(bytes) => Some(bytes),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                // The request or reply was lost (or the server is down).
                // A real client learns nothing until its timer fires.
                let now = env.now();
                if now < deadline {
                    env.sleep(deadline - now);
                }
                None
            }
        }
    }
}

impl RpcChannel {
    /// Pay the request's cipher and uplink costs and enqueue it at the
    /// listener, returning the [`PendingCall`] its reply will arrive on.
    /// If the uplink's fault plan drops or severs the message the server
    /// never sees it and the pending call resolves only by silence.
    pub fn send_request(&self, env: &Env, request: impl Into<Bytes>) -> PendingCall {
        let request = request.into();
        env.sleep(self.wire.cipher_time(request.len()));
        let delivered = self
            .up
            .transfer_checked(env, self.wire.wire_bytes(request.len()))
            .delivered();
        let (reply_tx, reply_rx) = channel::<Bytes>(&self.handle);
        if delivered {
            self.tx.send(Envelope {
                bytes: request,
                reply_tx,
            });
        }
        // Not delivered: reply_tx drops here, so the pending call sees a
        // disconnect (legacy recv) or waits out its deadline.
        PendingCall { reply_rx }
    }

    /// Send `request` and wait for the reply bytes.
    ///
    /// Returns `None` if the listener was dropped (connection refused /
    /// reset), which callers surface as an RPC transport error.
    pub fn call_raw(&self, env: &Env, request: impl Into<Bytes>) -> Option<Bytes> {
        self.send_request(env, request).recv(env)
    }

    /// [`RpcChannel::send_request`] followed by
    /// [`PendingCall::recv_deadline`]: give up once virtual time reaches
    /// `deadline`.
    pub fn call_raw_deadline(
        &self,
        env: &Env,
        request: impl Into<Bytes>,
        deadline: SimTime,
    ) -> Option<Bytes> {
        self.send_request(env, request).recv_deadline(env, deadline)
    }

    /// The wire spec for this hop (used by servers replying).
    pub fn wire(&self) -> WireSpec {
        self.wire
    }

    /// The simulation handle this channel was built on (lets components
    /// layered over a channel reach the telemetry registry).
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// The downlink (reply direction) of this hop.
    pub fn down_link(&self) -> &Link {
        &self.down
    }
}

/// Server-side handle: holds the request queue plus the reply path. Call
/// [`Listener::serve`] to start worker processes.
pub struct Listener {
    handle: SimHandle,
    rx: Arc<Receiver<Envelope>>,
    down: Link,
    wire: WireSpec,
}

/// Something that services raw RPC request bytes. Handlers run inside a
/// simulated worker process and may block in virtual time (disk access,
/// upstream RPC calls, cache operations).
pub trait RpcHandler: Send + Sync + 'static {
    /// Service one request, returning the reply message bytes. The
    /// request is a shared view of the envelope the client sent; replies
    /// served from a cache can hand back a clone without copying.
    fn handle(&self, env: &Env, request: &Bytes) -> Bytes;
}

impl<F> RpcHandler for F
where
    F: Fn(&Env, &[u8]) -> Vec<u8> + Send + Sync + 'static,
{
    fn handle(&self, env: &Env, request: &Bytes) -> Bytes {
        self(env, request).into()
    }
}

impl Listener {
    /// Spawn `workers` service processes, each looping: receive a request,
    /// run the handler, pay the reply's cipher + downlink cost, respond.
    /// Worker count bounds server-side concurrency the way `nfsd` thread
    /// count does on a real server.
    pub fn serve(self, name: &str, handler: Arc<dyn RpcHandler>, workers: usize) {
        assert!(workers > 0);
        for w in 0..workers {
            let rx = self.rx.clone();
            let down = self.down.clone();
            let wire = self.wire;
            let handler = handler.clone();
            self.handle
                .spawn(format!("{name}-worker{w}"), move |env| loop {
                    let envelope = match rx.recv(&env) {
                        Ok(e) => e,
                        Err(_) => return, // all clients gone
                    };
                    let reply = handler.handle(&env, &envelope.bytes);
                    env.sleep(wire.cipher_time(reply.len()));
                    let delivered = down
                        .transfer_checked(&env, wire.wire_bytes(reply.len()))
                        .delivered();
                    if delivered {
                        envelope.reply_tx.send(reply);
                    }
                    // A lost reply: the side effect happened on the server
                    // but the client never hears back — the case the
                    // duplicate-request cache must make idempotent.
                });
        }
    }
}

/// A connected client/server endpoint pair over a pair of links.
pub struct Endpoint {
    /// Client half.
    pub channel: RpcChannel,
    /// Server half.
    pub listener: Listener,
}

/// Create a transport endpoint: requests traverse `up`, replies traverse
/// `down`, both under `wire` encapsulation.
pub fn endpoint(handle: &SimHandle, up: Link, down: Link, wire: WireSpec) -> Endpoint {
    let (tx, rx) = channel::<Envelope>(handle);
    Endpoint {
        channel: RpcChannel {
            handle: handle.clone(),
            up,
            down: down.clone(),
            wire,
            tx,
        },
        listener: Listener {
            handle: handle.clone(),
            rx: Arc::new(rx),
            down,
            wire,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimTime, Simulation};
    use std::sync::atomic::{AtomicU64, Ordering as AO};

    fn fast_link(h: &SimHandle, name: &str) -> Link {
        Link::new(h, name, 1e9, SimDuration::from_millis(1))
    }

    #[test]
    fn echo_server_round_trips_bytes() {
        let sim = Simulation::new();
        let h = sim.handle();
        let ep = endpoint(
            &h,
            fast_link(&h, "up"),
            fast_link(&h, "down"),
            WireSpec::plain(),
        );
        ep.listener
            .serve("echo", Arc::new(|_env: &Env, req: &[u8]| req.to_vec()), 1);
        let chan = ep.channel;
        sim.spawn("client", move |env| {
            let reply = chan.call_raw(&env, b"ping".to_vec()).unwrap();
            assert_eq!(reply, b"ping");
            // Two 1 ms latencies round trip.
            assert!(env.now() >= SimTime::ZERO + SimDuration::from_millis(2));
        });
        sim.run();
    }

    #[test]
    fn call_costs_reflect_latency_both_ways() {
        let sim = Simulation::new();
        let h = sim.handle();
        let up = Link::new(&h, "up", 1e12, SimDuration::from_millis(17));
        let down = Link::new(&h, "down", 1e12, SimDuration::from_millis(17));
        let ep = endpoint(&h, up, down, WireSpec::plain());
        ep.listener
            .serve("null", Arc::new(|_: &Env, _: &[u8]| vec![0u8; 4]), 1);
        let chan = ep.channel;
        let rtt_ns = Arc::new(AtomicU64::new(0));
        let r2 = rtt_ns.clone();
        sim.spawn("client", move |env| {
            let t0 = env.now();
            chan.call_raw(&env, vec![0u8; 4]).unwrap();
            r2.store((env.now() - t0).as_nanos(), AO::SeqCst);
        });
        sim.run();
        let rtt_ms = rtt_ns.load(AO::SeqCst) as f64 / 1e6;
        assert!(
            (rtt_ms - 34.0).abs() < 0.1,
            "expected ~34 ms RTT, got {rtt_ms} ms"
        );
    }

    #[test]
    fn ssh_tunnel_costs_more_than_plain() {
        let run = |wire: WireSpec| -> u64 {
            let sim = Simulation::new();
            let h = sim.handle();
            let up = Link::from_mbps(&h, "up", 100.0, SimDuration::from_micros(100));
            let down = Link::from_mbps(&h, "down", 100.0, SimDuration::from_micros(100));
            let ep = endpoint(&h, up, down, wire);
            ep.listener
                .serve("srv", Arc::new(|_: &Env, _: &[u8]| vec![0u8; 32768]), 1);
            let chan = ep.channel;
            let done = Arc::new(AtomicU64::new(0));
            let d2 = done.clone();
            sim.spawn("client", move |env| {
                for _ in 0..10 {
                    chan.call_raw(&env, vec![0u8; 128]).unwrap();
                }
                d2.store(env.now().as_nanos(), AO::SeqCst);
            });
            sim.run();
            done.load(AO::SeqCst)
        };
        let plain = run(WireSpec::plain());
        let tunneled = run(WireSpec::ssh_tunnel(50e6));
        assert!(
            tunneled > plain,
            "tunnel {tunneled} should exceed plain {plain}"
        );
    }

    #[test]
    fn multiple_workers_overlap_service_time() {
        // Two requests whose handler sleeps 1 s each: with one worker they
        // serialize (~2 s); with two workers they overlap (~1 s).
        let run = |workers: usize| -> f64 {
            let sim = Simulation::new();
            let h = sim.handle();
            let ep = endpoint(
                &h,
                fast_link(&h, "up"),
                fast_link(&h, "down"),
                WireSpec::plain(),
            );
            ep.listener.serve(
                "slow",
                Arc::new(|env: &Env, _: &[u8]| {
                    env.sleep(SimDuration::from_secs(1));
                    vec![0u8; 4]
                }),
                workers,
            );
            let chan = ep.channel;
            for i in 0..2 {
                let c = chan.clone();
                sim.spawn(format!("c{i}"), move |env| {
                    c.call_raw(&env, vec![0u8; 4]).unwrap();
                });
            }
            sim.run().as_secs_f64()
        };
        let serial = run(1);
        let parallel = run(2);
        assert!(serial > 1.9, "serial took {serial}");
        assert!(parallel < 1.1, "parallel took {parallel}");
    }

    #[test]
    fn deadline_call_round_trips_when_healthy() {
        let sim = Simulation::new();
        let h = sim.handle();
        let ep = endpoint(
            &h,
            fast_link(&h, "up"),
            fast_link(&h, "down"),
            WireSpec::plain(),
        );
        ep.listener
            .serve("echo", Arc::new(|_env: &Env, req: &[u8]| req.to_vec()), 1);
        let chan = ep.channel;
        sim.spawn("client", move |env| {
            let deadline = env.now() + SimDuration::from_secs(5);
            let reply = chan.call_raw_deadline(&env, b"ping".to_vec(), deadline);
            assert_eq!(reply.as_deref(), Some(b"ping".as_slice()));
            // Healthy path: well under the deadline, and the unfired
            // timer must not stretch the timeline (checked via sim end).
        });
        let end = sim.run();
        assert!(end < SimTime::ZERO + SimDuration::from_secs(1), "{end:?}");
    }

    #[test]
    fn lost_request_resolves_at_the_deadline() {
        let sim = Simulation::new();
        let h = sim.handle();
        let up = fast_link(&h, "up");
        // Drop every request.
        up.install_faults(simnet::LinkFaultPlan::new(3).drop_prob(1.0));
        let ep = endpoint(&h, up, fast_link(&h, "down"), WireSpec::plain());
        ep.listener
            .serve("echo", Arc::new(|_env: &Env, req: &[u8]| req.to_vec()), 1);
        let chan = ep.channel;
        sim.spawn("client", move |env| {
            let deadline = env.now() + SimDuration::from_secs(2);
            assert!(chan
                .call_raw_deadline(&env, b"hi".to_vec(), deadline)
                .is_none());
            assert_eq!(env.now(), SimTime::ZERO + SimDuration::from_secs(2));
        });
        sim.run();
    }

    #[test]
    fn lost_reply_resolves_at_the_deadline() {
        let sim = Simulation::new();
        let h = sim.handle();
        let down = fast_link(&h, "down");
        down.install_faults(simnet::LinkFaultPlan::new(4).drop_prob(1.0));
        let ep = endpoint(&h, fast_link(&h, "up"), down, WireSpec::plain());
        let served = Arc::new(AtomicU64::new(0));
        let s2 = served.clone();
        ep.listener.serve(
            "echo",
            Arc::new(move |_env: &Env, req: &[u8]| {
                s2.fetch_add(1, AO::SeqCst);
                req.to_vec()
            }),
            1,
        );
        let chan = ep.channel;
        sim.spawn("client", move |env| {
            let deadline = env.now() + SimDuration::from_secs(2);
            assert!(chan
                .call_raw_deadline(&env, b"hi".to_vec(), deadline)
                .is_none());
            assert_eq!(env.now(), SimTime::ZERO + SimDuration::from_secs(2));
        });
        sim.run();
        // The server DID execute the request — only the reply vanished.
        assert_eq!(served.load(AO::SeqCst), 1);
    }

    #[test]
    fn dropped_listener_yields_none() {
        let sim = Simulation::new();
        let h = sim.handle();
        let ep = endpoint(
            &h,
            fast_link(&h, "up"),
            fast_link(&h, "down"),
            WireSpec::plain(),
        );
        drop(ep.listener); // server never starts
        let chan = ep.channel;
        sim.spawn("client", move |env| {
            assert!(chan.call_raw(&env, b"hi".to_vec()).is_none());
        });
        sim.run();
    }
}
