//! RPC message wire format (RFC 5531 §9).

use crate::auth::OpaqueAuth;
use xdr::{Bytes, Decode, Decoder, Encode, Encoder, Error, Result};

/// The RPC protocol version this implementation speaks.
pub const RPC_VERSION: u32 = 2;

const MSG_CALL: u32 = 0;
const MSG_REPLY: u32 = 1;

const REPLY_ACCEPTED: u32 = 0;
const REPLY_DENIED: u32 = 1;

/// `accept_stat`: outcome of an accepted call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptStat {
    /// RPC executed successfully; results follow.
    Success,
    /// Program not exported on this server.
    ProgUnavail,
    /// Program version out of the supported range.
    ProgMismatch {
        /// Lowest supported version.
        low: u32,
        /// Highest supported version.
        high: u32,
    },
    /// Unsupported procedure number.
    ProcUnavail,
    /// Arguments could not be decoded.
    GarbageArgs,
    /// Server-side internal error.
    SystemErr,
}

/// `reject_stat`: why a call was denied outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectStat {
    /// RPC version mismatch.
    RpcMismatch {
        /// Lowest supported RPC version.
        low: u32,
        /// Highest supported RPC version.
        high: u32,
    },
    /// Authentication failure, with the `auth_stat` code.
    AuthError(u32),
}

/// Authentication status codes used with [`RejectStat::AuthError`].
pub mod auth_stat {
    /// Bad credential (seal broken or unparsable).
    pub const BADCRED: u32 = 1;
    /// Credential expired — GVFS short-lived identities time out.
    pub const REJECTEDCRED: u32 = 2;
    /// Unsupported flavor.
    pub const TOOWEAK: u32 = 5;
}

/// Body of a call message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallHeader {
    /// Transaction id, echoed in the reply.
    pub xid: u32,
    /// Program number (e.g. 100003 for NFS, 100005 for MOUNT).
    pub prog: u32,
    /// Program version.
    pub vers: u32,
    /// Procedure number.
    pub proc: u32,
    /// Caller credential.
    pub cred: OpaqueAuth,
    /// Caller verifier.
    pub verf: OpaqueAuth,
}

/// Body of a reply message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyBody {
    /// The call was accepted; `stat` describes the outcome and, on
    /// success, `results` holds procedure-specific XDR data.
    Accepted {
        /// Server verifier.
        verf: OpaqueAuth,
        /// Acceptance status.
        stat: AcceptStat,
        /// Procedure results (only meaningful for [`AcceptStat::Success`]).
        results: Bytes,
    },
    /// The call was rejected before execution.
    Denied(RejectStat),
}

/// A complete RPC message: either a call (with procedure arguments) or a
/// reply keyed to a call's xid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcMessage {
    /// Call message with argument bytes.
    Call {
        /// Call header.
        header: CallHeader,
        /// Procedure arguments, XDR-encoded.
        args: Bytes,
    },
    /// Reply message.
    Reply {
        /// Transaction id of the call being answered.
        xid: u32,
        /// Reply body.
        body: ReplyBody,
    },
}

impl RpcMessage {
    /// Build a successful reply carrying `results`.
    pub fn success(xid: u32, results: impl Into<Bytes>) -> Self {
        RpcMessage::Reply {
            xid,
            body: ReplyBody::Accepted {
                verf: OpaqueAuth::none(),
                stat: AcceptStat::Success,
                results: results.into(),
            },
        }
    }

    /// Build an accepted-but-failed reply.
    pub fn accept_error(xid: u32, stat: AcceptStat) -> Self {
        debug_assert!(stat != AcceptStat::Success);
        RpcMessage::Reply {
            xid,
            body: ReplyBody::Accepted {
                verf: OpaqueAuth::none(),
                stat,
                results: Bytes::new(),
            },
        }
    }

    /// Build a denial reply.
    pub fn denied(xid: u32, stat: RejectStat) -> Self {
        RpcMessage::Reply {
            xid,
            body: ReplyBody::Denied(stat),
        }
    }

    /// The message's transaction id.
    pub fn xid(&self) -> u32 {
        match self {
            RpcMessage::Call { header, .. } => header.xid,
            RpcMessage::Reply { xid, .. } => *xid,
        }
    }
}

impl Encode for RpcMessage {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            RpcMessage::Call { header, args } => {
                enc.put_u32(header.xid);
                enc.put_u32(MSG_CALL);
                enc.put_u32(RPC_VERSION);
                enc.put_u32(header.prog);
                enc.put_u32(header.vers);
                enc.put_u32(header.proc);
                header.cred.encode(enc);
                header.verf.encode(enc);
                // Args are raw XDR already; append without a length prefix,
                // exactly as on the wire.
                enc.put_opaque_fixed_unpadded(args);
            }
            RpcMessage::Reply { xid, body } => {
                enc.put_u32(*xid);
                enc.put_u32(MSG_REPLY);
                match body {
                    ReplyBody::Accepted {
                        verf,
                        stat,
                        results,
                    } => {
                        enc.put_u32(REPLY_ACCEPTED);
                        verf.encode(enc);
                        match stat {
                            AcceptStat::Success => {
                                enc.put_u32(0);
                                enc.put_opaque_fixed_unpadded(results);
                            }
                            AcceptStat::ProgUnavail => enc.put_u32(1),
                            AcceptStat::ProgMismatch { low, high } => {
                                enc.put_u32(2);
                                enc.put_u32(*low);
                                enc.put_u32(*high);
                            }
                            AcceptStat::ProcUnavail => enc.put_u32(3),
                            AcceptStat::GarbageArgs => enc.put_u32(4),
                            AcceptStat::SystemErr => enc.put_u32(5),
                        }
                    }
                    ReplyBody::Denied(stat) => {
                        enc.put_u32(REPLY_DENIED);
                        match stat {
                            RejectStat::RpcMismatch { low, high } => {
                                enc.put_u32(0);
                                enc.put_u32(*low);
                                enc.put_u32(*high);
                            }
                            RejectStat::AuthError(code) => {
                                enc.put_u32(1);
                                enc.put_u32(*code);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Raw-append helper: RPC args/results are a tail of pre-encoded XDR; they
/// are appended verbatim (already word-aligned by construction).
trait PutRaw {
    fn put_opaque_fixed_unpadded(&mut self, data: &[u8]);
}

impl PutRaw for Encoder {
    fn put_opaque_fixed_unpadded(&mut self, data: &[u8]) {
        debug_assert_eq!(data.len() % 4, 0, "RPC payload must be word-aligned");
        // Fixed opaque of word-aligned length adds no padding.
        self.put_opaque_fixed(data);
    }
}

impl RpcMessage {
    /// Decode from a shared buffer without copying the body: the returned
    /// message's `args`/`results` are O(1) views into `bytes`' backing
    /// allocation. This is the transport hot path; the by-slice
    /// [`Decode`] impl below copies instead.
    pub fn decode_shared(bytes: &Bytes) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let msg = decode_inner(&mut dec, &|s| bytes.slice_ref(s))?;
        dec.finish()?;
        Ok(msg)
    }
}

impl Decode for RpcMessage {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        decode_inner(dec, &|s| Bytes::from(s))
    }
}

/// Shared decode body: `promote` turns a borrowed payload slice into a
/// [`Bytes`] (zero-copy from [`RpcMessage::decode_shared`], copying from
/// the generic [`Decode`] impl).
fn decode_inner(dec: &mut Decoder<'_>, promote: &dyn Fn(&[u8]) -> Bytes) -> Result<RpcMessage> {
    {
        let xid = dec.get_u32()?;
        match dec.get_u32()? {
            MSG_CALL => {
                let rpcvers = dec.get_u32()?;
                if rpcvers != RPC_VERSION {
                    return Err(Error::InvalidDiscriminant(rpcvers));
                }
                let prog = dec.get_u32()?;
                let vers = dec.get_u32()?;
                let proc = dec.get_u32()?;
                let cred = OpaqueAuth::decode(dec)?;
                let verf = OpaqueAuth::decode(dec)?;
                let args = promote(dec.get_opaque_fixed(dec.remaining())?);
                Ok(RpcMessage::Call {
                    header: CallHeader {
                        xid,
                        prog,
                        vers,
                        proc,
                        cred,
                        verf,
                    },
                    args,
                })
            }
            MSG_REPLY => {
                let body = match dec.get_u32()? {
                    REPLY_ACCEPTED => {
                        let verf = OpaqueAuth::decode(dec)?;
                        let stat = match dec.get_u32()? {
                            0 => AcceptStat::Success,
                            1 => AcceptStat::ProgUnavail,
                            2 => AcceptStat::ProgMismatch {
                                low: dec.get_u32()?,
                                high: dec.get_u32()?,
                            },
                            3 => AcceptStat::ProcUnavail,
                            4 => AcceptStat::GarbageArgs,
                            5 => AcceptStat::SystemErr,
                            other => return Err(Error::InvalidDiscriminant(other)),
                        };
                        let results = if stat == AcceptStat::Success {
                            promote(dec.get_opaque_fixed(dec.remaining())?)
                        } else {
                            Bytes::new()
                        };
                        ReplyBody::Accepted {
                            verf,
                            stat,
                            results,
                        }
                    }
                    REPLY_DENIED => {
                        let stat = match dec.get_u32()? {
                            0 => RejectStat::RpcMismatch {
                                low: dec.get_u32()?,
                                high: dec.get_u32()?,
                            },
                            1 => RejectStat::AuthError(dec.get_u32()?),
                            other => return Err(Error::InvalidDiscriminant(other)),
                        };
                        ReplyBody::Denied(stat)
                    }
                    other => return Err(Error::InvalidDiscriminant(other)),
                };
                Ok(RpcMessage::Reply { xid, body })
            }
            other => Err(Error::InvalidDiscriminant(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{AuthSys, OpaqueAuth};

    fn sample_call() -> RpcMessage {
        RpcMessage::Call {
            header: CallHeader {
                xid: 99,
                prog: 100_003,
                vers: 3,
                proc: 6, // READ
                cred: OpaqueAuth::sys(&AuthSys::new("client", 500, 500)),
                verf: OpaqueAuth::none(),
            },
            args: xdr::to_bytes(&42u32).into(),
        }
    }

    #[test]
    fn call_round_trips() {
        let m = sample_call();
        let bytes = xdr::to_bytes(&m);
        let back: RpcMessage = xdr::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn success_reply_round_trips_with_results() {
        let m = RpcMessage::success(99, xdr::to_bytes(&7u64));
        let bytes = xdr::to_bytes(&m);
        let back: RpcMessage = xdr::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.xid(), 99);
    }

    #[test]
    fn all_accept_errors_round_trip() {
        for stat in [
            AcceptStat::ProgUnavail,
            AcceptStat::ProgMismatch { low: 2, high: 3 },
            AcceptStat::ProcUnavail,
            AcceptStat::GarbageArgs,
            AcceptStat::SystemErr,
        ] {
            let m = RpcMessage::accept_error(5, stat);
            let back: RpcMessage = xdr::from_bytes(&xdr::to_bytes(&m)).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn denials_round_trip() {
        for stat in [
            RejectStat::RpcMismatch { low: 2, high: 2 },
            RejectStat::AuthError(auth_stat::REJECTEDCRED),
        ] {
            let m = RpcMessage::denied(1, stat);
            let back: RpcMessage = xdr::from_bytes(&xdr::to_bytes(&m)).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn wrong_rpc_version_is_rejected() {
        let m = sample_call();
        let mut bytes = xdr::to_bytes(&m);
        // Word 2 (offset 8..12) is the RPC version; corrupt it.
        bytes[8..12].copy_from_slice(&9u32.to_be_bytes());
        assert!(xdr::from_bytes::<RpcMessage>(&bytes).is_err());
    }
}
