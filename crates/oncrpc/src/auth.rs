//! RPC authentication flavors.
//!
//! Besides the standard `AUTH_NONE` and `AUTH_SYS` (RFC 5531 appendix A),
//! this module defines `AUTH_GVFS`: the middleware-issued, short-lived
//! logical-user-account credential the paper's Grid virtual file system
//! uses for cross-domain authentication. A server-side GVFS proxy maps an
//! `AUTH_GVFS` credential onto a local `AUTH_SYS` identity before
//! forwarding to the kernel NFS server (see `gvfs::identity`).

use xdr::{Decode, Decoder, Encode, Encoder, Error, Result};

/// Authentication flavor discriminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuthFlavor {
    /// No authentication.
    None,
    /// Classic Unix credentials (uid/gid/groups).
    Sys,
    /// Short-hand verifier (unused here, parsed for completeness).
    Short,
    /// GVFS middleware-issued short-lived identity (private flavor range).
    Gvfs,
    /// Any flavor this implementation does not understand.
    Unknown(u32),
}

impl AuthFlavor {
    /// Wire discriminant.
    pub fn as_u32(self) -> u32 {
        match self {
            AuthFlavor::None => 0,
            AuthFlavor::Sys => 1,
            AuthFlavor::Short => 2,
            AuthFlavor::Gvfs => 400_001,
            AuthFlavor::Unknown(v) => v,
        }
    }

    /// Parse a wire discriminant.
    pub fn from_u32(v: u32) -> Self {
        match v {
            0 => AuthFlavor::None,
            1 => AuthFlavor::Sys,
            2 => AuthFlavor::Short,
            400_001 => AuthFlavor::Gvfs,
            other => AuthFlavor::Unknown(other),
        }
    }
}

/// An authentication field: flavor plus opaque body (RFC 5531 §8.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpaqueAuth {
    /// Which flavor the body encodes.
    pub flavor: AuthFlavor,
    /// Flavor-specific bytes (itself XDR-encoded for SYS and GVFS).
    pub body: Vec<u8>,
}

impl OpaqueAuth {
    /// The `AUTH_NONE` credential.
    pub fn none() -> Self {
        OpaqueAuth {
            flavor: AuthFlavor::None,
            body: Vec::new(),
        }
    }

    /// Build an `AUTH_SYS` credential.
    pub fn sys(auth: &AuthSys) -> Self {
        OpaqueAuth {
            flavor: AuthFlavor::Sys,
            body: xdr::to_bytes(auth),
        }
    }

    /// Build an `AUTH_GVFS` credential.
    pub fn gvfs(auth: &AuthGvfs) -> Self {
        OpaqueAuth {
            flavor: AuthFlavor::Gvfs,
            body: xdr::to_bytes(auth),
        }
    }

    /// Parse the body as `AUTH_SYS`.
    pub fn as_sys(&self) -> Result<AuthSys> {
        if self.flavor != AuthFlavor::Sys {
            return Err(Error::InvalidDiscriminant(self.flavor.as_u32()));
        }
        xdr::from_bytes(&self.body)
    }

    /// Parse the body as `AUTH_GVFS`.
    pub fn as_gvfs(&self) -> Result<AuthGvfs> {
        if self.flavor != AuthFlavor::Gvfs {
            return Err(Error::InvalidDiscriminant(self.flavor.as_u32()));
        }
        xdr::from_bytes(&self.body)
    }
}

impl Encode for OpaqueAuth {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.flavor.as_u32());
        enc.put_opaque_var(&self.body);
    }
}

impl Decode for OpaqueAuth {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let flavor = AuthFlavor::from_u32(dec.get_u32()?);
        let body = dec.get_opaque_var()?;
        Ok(OpaqueAuth { flavor, body })
    }
}

/// `AUTH_SYS` credential body (RFC 5531 appendix A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthSys {
    /// Arbitrary caller-chosen stamp.
    pub stamp: u32,
    /// Caller's machine name.
    pub machinename: String,
    /// Effective user id.
    pub uid: u32,
    /// Effective group id.
    pub gid: u32,
    /// Supplementary groups (max 16 on the wire).
    pub gids: Vec<u32>,
}

impl AuthSys {
    /// Convenience constructor for a single-identity credential.
    pub fn new(machinename: &str, uid: u32, gid: u32) -> Self {
        AuthSys {
            stamp: 0,
            machinename: machinename.to_string(),
            uid,
            gid,
            gids: Vec::new(),
        }
    }
}

impl Encode for AuthSys {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.stamp);
        enc.put_string(&self.machinename);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_array(&self.gids, |e, g| e.put_u32(*g));
    }
}

impl Decode for AuthSys {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AuthSys {
            stamp: dec.get_u32()?,
            machinename: dec.get_string()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            gids: dec.get_array(|d| d.get_u32())?,
        })
    }
}

/// The GVFS middleware credential: a short-lived identity allocated by the
/// Grid middleware on behalf of a user for the duration of a file system
/// session (paper §3.1; see also Adabala et al., IPDPS 2004).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthGvfs {
    /// Middleware-assigned session identifier.
    pub session_id: u64,
    /// The Grid user this shadow identity stands for.
    pub grid_user: String,
    /// Expiry, seconds since session epoch; proxies reject expired creds.
    pub expires_at: u64,
}

impl Encode for AuthGvfs {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.session_id);
        enc.put_string(&self.grid_user);
        enc.put_u64(self.expires_at);
    }
}

impl Decode for AuthGvfs {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AuthGvfs {
            session_id: dec.get_u64()?,
            grid_user: dec.get_string()?,
            expires_at: dec.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavor_discriminants_round_trip() {
        for f in [
            AuthFlavor::None,
            AuthFlavor::Sys,
            AuthFlavor::Short,
            AuthFlavor::Gvfs,
            AuthFlavor::Unknown(77),
        ] {
            assert_eq!(AuthFlavor::from_u32(f.as_u32()), f);
        }
    }

    #[test]
    fn auth_sys_round_trips() {
        let a = AuthSys {
            stamp: 42,
            machinename: "compute1.acis.ufl.edu".into(),
            uid: 501,
            gid: 100,
            gids: vec![100, 10],
        };
        let o = OpaqueAuth::sys(&a);
        assert_eq!(o.flavor, AuthFlavor::Sys);
        assert_eq!(o.as_sys().unwrap(), a);
    }

    #[test]
    fn auth_gvfs_round_trips_through_opaque() {
        let g = AuthGvfs {
            session_id: 7,
            grid_user: "vmuser".into(),
            expires_at: 3600,
        };
        let o = OpaqueAuth::gvfs(&g);
        let bytes = xdr::to_bytes(&o);
        let back: OpaqueAuth = xdr::from_bytes(&bytes).unwrap();
        assert_eq!(back.as_gvfs().unwrap(), g);
    }

    #[test]
    fn wrong_flavor_parse_is_an_error() {
        let o = OpaqueAuth::none();
        assert!(o.as_sys().is_err());
        assert!(o.as_gvfs().is_err());
    }
}
