//! Fleet-report determinism: a fleet run is a pure function of its
//! seeds. Two runs with the same arrival seed must render byte-identical
//! report bodies, a distinct seed must actually change the report, and
//! the bytes must survive an adversarial scheduler
//! (`SchedPolicy::chaos`) — the schedule-independence oracle of
//! DESIGN.md §5.7 applied to the fleet scenario. CI enforces the same
//! property end-to-end on `reports/fleet.json` via the `fleet` binary.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gvfs_bench::fleet::{run_fleet, ArrivalMode, FleetParams};
use gvfs_bench::report::scenario_report;
use simnet::JsonValue;

/// Render the same report body the `fleet` binary writes: the full
/// telemetry snapshot plus the latency percentiles and fleet counters.
fn report_bytes(params: &FleetParams) -> String {
    let r = run_fleet(params);
    let mut body = scenario_report(&r.scenario, r.total_virtual_secs, &r.snapshot);
    body.push_field(
        "fleet",
        JsonValue::object([
            ("clones", JsonValue::Uint(r.latency.count)),
            ("p50_secs", JsonValue::Float(r.latency.p50_secs)),
            ("p95_secs", JsonValue::Float(r.latency.p95_secs)),
            ("p99_secs", JsonValue::Float(r.latency.p99_secs)),
            ("max_secs", JsonValue::Float(r.latency.max_secs)),
            ("batches", JsonValue::Uint(r.batches)),
            ("batched_items", JsonValue::Uint(r.batched_items)),
        ]),
    );
    body.to_string()
}

/// One test fn, strictly sequential: the chaos policy is process-wide,
/// so the baseline comparisons must complete before it is installed.
#[test]
fn fleet_report_is_seed_and_schedule_deterministic() {
    let params = FleetParams::smoke();
    let base = report_bytes(&params);
    let again = report_bytes(&params);
    assert_eq!(base, again, "same seed must render byte-identical reports");

    let mut reseeded = params;
    reseeded.seed ^= 0xDEAD_BEEF;
    assert_ne!(
        base,
        report_bytes(&reseeded),
        "a distinct arrival seed must change the report"
    );

    let mut bursty = params;
    bursty.arrival = ArrivalMode::Bursty;
    let bursty_base = report_bytes(&bursty);
    assert_ne!(base, bursty_base, "arrival mode must change the report");

    // Adversarial schedule: same seeds, different interleavings — the
    // report bytes must not move.
    simnet::set_default_sched_policy(simnet::SchedPolicy::chaos(0xC0FF_EE00));
    assert_eq!(
        base,
        report_bytes(&params),
        "report bytes must survive schedule chaos"
    );
    assert_eq!(
        bursty_base,
        report_bytes(&bursty),
        "bursty report bytes must survive schedule chaos"
    );
}
