//! Plain-text table rendering for the figure/table binaries, plus the
//! paper's reference numbers for side-by-side comparison.

/// Format seconds as `m:ss.s` like the paper's minutes:seconds axes.
pub fn mmss(secs: f64) -> String {
    let m = (secs / 60.0).floor() as u64;
    let s = secs - m as f64 * 60.0;
    format!("{m}:{s:04.1}")
}

/// Format seconds as `h:mm` like Figure 5's hours:minutes axis.
pub fn hmm(secs: f64) -> String {
    let hours = (secs / 3600.0).floor() as u64;
    let m = ((secs - hours as f64 * 3600.0) / 60.0).round() as u64;
    format!("{hours}:{m:02}")
}

/// Render an aligned table: `header` row then `rows`; every row must have
/// the same arity as the header.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{:<w$}", cell, w = widths[i]));
            } else {
                line.push_str(&format!("{:>w$}", cell, w = widths[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A paper-vs-measured comparison line for EXPERIMENTS.md-style output.
pub fn compare_line(what: &str, paper: &str, measured: &str) -> String {
    format!("  {what:<46} paper: {paper:>10}   measured: {measured:>10}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmss_formats_like_the_paper() {
        assert_eq!(mmss(90.0), "1:30.0");
        assert_eq!(mmss(5.25), "0:05.2");
        assert_eq!(mmss(600.0), "10:00.0");
    }

    #[test]
    fn hmm_formats_hours() {
        assert_eq!(hmm(3600.0), "1:00");
        assert_eq!(hmm(5400.0), "1:30");
        assert_eq!(hmm(1200.0), "0:20");
    }

    #[test]
    fn tables_align() {
        let t = render_table(
            &["Scenario", "Phase 1", "Total"],
            &[
                vec!["Local".into(), "1:00.0".into(), "12:00.0".into()],
                vec!["WAN+C".into(), "2:06.5".into(), "11:24.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Scenario"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
