//! Plain-text table rendering for the figure/table binaries, plus the
//! paper's reference numbers for side-by-side comparison — and the JSON
//! report emitted by every binary from the telemetry registry.

use std::io::Write;
use std::path::{Path, PathBuf};

use simnet::{JsonValue, Snapshot};

/// Format seconds as `m:ss.s` like the paper's minutes:seconds axes.
pub fn mmss(secs: f64) -> String {
    let m = (secs / 60.0).floor() as u64;
    let s = secs - m as f64 * 60.0;
    format!("{m}:{s:04.1}")
}

/// Format seconds as `h:mm` like Figure 5's hours:minutes axis.
pub fn hmm(secs: f64) -> String {
    let hours = (secs / 3600.0).floor() as u64;
    let m = ((secs - hours as f64 * 3600.0) / 60.0).round() as u64;
    format!("{hours}:{m:02}")
}

/// Render an aligned table: `header` row then `rows`; every row must have
/// the same arity as the header.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{:<w$}", cell, w = widths[i]));
            } else {
                line.push_str(&format!("{:>w$}", cell, w = widths[i]));
            }
        }
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A paper-vs-measured comparison line for EXPERIMENTS.md-style output.
pub fn compare_line(what: &str, paper: &str, measured: &str) -> String {
    format!("  {what:<46} paper: {paper:>10}   measured: {measured:>10}")
}

// ---------------------------------------------------------------------------
// JSON reports

/// Command-line options shared by every bench binary:
/// `--json <path>` overrides the report location (default
/// `reports/<name>.json`), `--trace` turns on trace-event collection so
/// the report carries the structured event log, `--no-json` suppresses
/// the report file, `--no-dedup` runs with `DedupTuning::off()` (the
/// pre-CAS data paths) in the binaries that honor it, `--no-cow` runs
/// with `CowTuning::off()` (materialized clone installs; DESIGN.md
/// §5.9) in the binaries that honor it, and
/// `--sched-chaos <seed>` runs every simulation under
/// `SchedPolicy::chaos(seed)` — reports must stay byte-identical to a
/// run without the flag (DESIGN.md §5.7).
#[derive(Debug, Clone)]
pub struct BenchCli {
    /// Where to write the JSON report; `None` with `--no-json`.
    pub json_path: Option<PathBuf>,
    /// Collect and dump the virtual-time-stamped trace event log.
    pub trace: bool,
    /// Disable content-addressed dedup (DESIGN.md §5.5).
    pub no_dedup: bool,
    /// Disable copy-on-write reference cloning (DESIGN.md §5.9).
    pub no_cow: bool,
    /// Chaos-scheduler seed, when `--sched-chaos` was given. The policy
    /// is already installed process-wide by `parse`; this records the
    /// seed for logging. Deliberately NOT part of any JSON report —
    /// report bytes must not depend on the schedule.
    pub sched_chaos: Option<u64>,
}

impl BenchCli {
    /// Parse `std::env::args()` for the binary named `name`.
    pub fn parse(name: &str) -> BenchCli {
        let mut cli = BenchCli {
            json_path: Some(PathBuf::from(format!("reports/{name}.json"))),
            trace: false,
            no_dedup: false,
            no_cow: false,
            sched_chaos: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => cli.trace = true,
                "--no-json" => cli.json_path = None,
                "--no-dedup" => cli.no_dedup = true,
                "--no-cow" => cli.no_cow = true,
                "--json" => {
                    let p = args.next().unwrap_or_else(|| {
                        eprintln!("--json requires a path argument");
                        std::process::exit(2);
                    });
                    cli.json_path = Some(PathBuf::from(p));
                }
                "--sched-chaos" => {
                    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--sched-chaos requires a u64 seed argument");
                        std::process::exit(2);
                    });
                    cli.sched_chaos = Some(seed);
                    // Install process-wide so every Simulation::new() in
                    // library code runs under the adversarial schedule.
                    simnet::set_default_sched_policy(simnet::SchedPolicy::chaos(seed));
                    eprintln!("{name}: schedule-chaos policy active (seed {seed})");
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: {name} [--json PATH] [--no-json] [--trace] [--no-dedup] \
                         [--no-cow] [--sched-chaos SEED]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    std::process::exit(2);
                }
            }
        }
        cli
    }
}

/// Build one scenario's slice of a report from its telemetry snapshot:
/// total virtual time, RPC counts by procedure, block-cache and
/// zero-filter counters, per-link bytes — plus the full metric dump (and
/// the event log, when tracing was on).
pub fn scenario_report(label: &str, total_virtual_secs: f64, snap: &Snapshot) -> JsonValue {
    let procs: Vec<(String, JsonValue)> = snap
        .counters
        .iter()
        .filter(|c| c.name.contains(".proc."))
        .map(|c| (format!("{}.{}", c.layer, c.name), JsonValue::Uint(c.value)))
        .collect();
    let links: Vec<(String, JsonValue)> = snap
        .counters
        .iter()
        .filter(|c| c.layer == "link" && c.name.ends_with(".bytes"))
        .map(|c| (c.name.clone(), JsonValue::Uint(c.value)))
        .collect();
    JsonValue::object([
        ("scenario", JsonValue::Str(label.to_string())),
        ("total_virtual_secs", JsonValue::Float(total_virtual_secs)),
        ("rpc_calls_by_procedure", JsonValue::Object(procs)),
        (
            "block_cache",
            JsonValue::object([
                ("hits", JsonValue::Uint(snap.counter_sum("gvfs", ".hits"))),
                (
                    "misses",
                    JsonValue::Uint(snap.counter_sum("gvfs", ".misses")),
                ),
                (
                    "evictions",
                    JsonValue::Uint(snap.counter_sum("gvfs", ".evictions")),
                ),
            ]),
        ),
        (
            "zero_filtered_reads",
            JsonValue::Uint(snap.counter_sum("gvfs", ".zero_filtered")),
        ),
        (
            "dedup",
            JsonValue::object([
                (
                    "bytes_avoided",
                    JsonValue::Uint(snap.counter_sum("gvfs", ".dedup.bytes_avoided")),
                ),
                (
                    "recipe_hits",
                    JsonValue::Uint(snap.counter_sum("gvfs", ".dedup.recipe_hits")),
                ),
                (
                    "blob_fetches",
                    JsonValue::Uint(snap.counter_sum("gvfs", ".dedup.blob_fetches")),
                ),
                (
                    "acked_skips",
                    JsonValue::Uint(snap.counter_sum("gvfs", ".dedup.acked_skips")),
                ),
            ]),
        ),
        ("link_bytes", JsonValue::Object(links)),
        ("metrics", snap.to_json()),
    ])
}

/// Write `{benchmark, scenarios}` to `path` (creating parent
/// directories), and say where it went on stderr.
pub fn write_report(path: &Path, benchmark: &str, scenarios: Vec<JsonValue>) {
    let doc = JsonValue::object([
        ("benchmark", JsonValue::Str(benchmark.to_string())),
        ("scenarios", JsonValue::Array(scenarios)),
    ]);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::File::create(path).and_then(|mut f| writeln!(f, "{doc}")) {
        Ok(()) => eprintln!("report: wrote {}", path.display()),
        Err(e) => eprintln!("report: FAILED to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmss_formats_like_the_paper() {
        assert_eq!(mmss(90.0), "1:30.0");
        assert_eq!(mmss(5.25), "0:05.2");
        assert_eq!(mmss(600.0), "10:00.0");
    }

    #[test]
    fn hmm_formats_hours() {
        assert_eq!(hmm(3600.0), "1:00");
        assert_eq!(hmm(5400.0), "1:30");
        assert_eq!(hmm(1200.0), "0:20");
    }

    #[test]
    fn tables_align() {
        let t = render_table(
            &["Scenario", "Phase 1", "Total"],
            &[
                vec!["Local".into(), "1:00.0".into(), "12:00.0".into()],
                vec!["WAN+C".into(), "2:06.5".into(), "11:24.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Scenario"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
