//! Cloning scenarios (paper §4.3, Figure 6 and Table 1).
//!
//! A "golden" image (320 MB RAM / 1.6 GB disk) lives on the WAN image
//! server, pre-processed by middleware (zero map + compressed file
//! channel for the `.vmss`). Clonings are timed end-to-end: copy config,
//! copy memory state, symlink the virtual disk, configure, resume.
//!
//! * **WAN-S1** — one image cloned eight times sequentially to the same
//!   compute server (temporal locality: later clones hit the proxy's
//!   caches).
//! * **WAN-S2** — eight different images cloned once each (no locality).
//! * **WAN-S3** — eight different images, new to this compute server but
//!   pre-cached on a LAN second-level proxy by earlier clonings for
//!   other machines in the same LAN.
//! * **WAN-P** — eight clonings in parallel from one image server
//!   (Table 1): the WAN uplink is shared, so the speedup is ~7×, not 8×.
//! * Baselines: full-image SCP copy, and cloning over pure NFS (no GVFS:
//!   8 KB blocks, no pipelining, no caches).

use std::sync::Arc;

use gvfs::{
    BlockCache, BlockCacheConfig, ChannelClient, CodecModel, CowTuning, DedupTuning, FileCache,
    FileChannelSpec, FleetTuning, Middleware, Proxy, ProxyConfig, TransferTuning, WritePolicy,
};
use nfs3::{KernelClient, KernelConfig, Nfs3Client};
use oncrpc::{OpaqueAuth, RpcChannel, RpcClient, WireSpec};
use parking_lot::Mutex;
use simnet::{Env, Link, SimDuration, SimHandle, Simulation, Snapshot};
use vfs::{Disk, DiskModel, LocalIo, LocalIoConfig, MountTable};
use vmm::{clone_vm, diverge_image, install_image, CloneConfig, CloneTimes, VmConfig, VmImageSpec};
use workloads::scp::ScpModel;

use crate::scenarios::{build_client, build_server, ClientProxyOptions, NetParams};

/// Sequential cloning scenarios of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloneScenario {
    /// Images on the compute server's local disk.
    Local,
    /// One golden image, eight sequential clones (temporal locality).
    WanS1,
    /// Eight different images, sequential (no locality).
    WanS2,
    /// Eight different images pre-cached on a LAN second-level proxy.
    WanS3,
}

impl CloneScenario {
    /// Paper's label.
    pub fn label(self) -> &'static str {
        match self {
            CloneScenario::Local => "Local",
            CloneScenario::WanS1 => "WAN-S1",
            CloneScenario::WanS2 => "WAN-S2",
            CloneScenario::WanS3 => "WAN-S3",
        }
    }

    /// All four, in the figure's order.
    pub fn all() -> [CloneScenario; 4] {
        [
            CloneScenario::Local,
            CloneScenario::WanS1,
            CloneScenario::WanS2,
            CloneScenario::WanS3,
        ]
    }
}

/// Harness parameters for cloning runs.
#[derive(Debug, Clone, Copy)]
pub struct CloneParams {
    /// Network calibration.
    pub net: NetParams,
    /// Number of clonings per scenario (paper: 8).
    pub clones: usize,
    /// Number of distinct golden images to install; `None` keeps the
    /// historical one-image-per-clone behaviour. Setup cost is
    /// O(images), not O(clones): clone `i` uses image `i % images`, so
    /// a fleet of hundreds of clones no longer installs hundreds of
    /// golden images just to exercise arrival pressure.
    pub images: Option<usize>,
    /// Kernel client buffer (kept small: the copy streams through it).
    pub kernel_cache_bytes: u64,
    /// Proxy cache capacity.
    pub proxy_cache_bytes: u64,
    /// Use a reduced image for quick runs (tests); `None` = paper size.
    pub image_scale: Option<u64>,
    /// Content-map / CAS record size the middleware uses when it
    /// pre-processes the golden `.vmss` files. The figure scenarios keep
    /// the historical 1 MB records; fleet runs use small records so a
    /// cold transfer is many round-trips — the regime the shard tier's
    /// batching targets.
    pub cas_chunk_bytes: u32,
    /// Content-addressed redundancy elimination on the client-side and
    /// LAN proxies (the server proxy never dedups: it sits on the
    /// server's own LAN, so a CAS there can avoid no WAN bytes).
    pub dedup: DedupTuning,
    /// Fleet RPC batching on the proxy tiers (client proxies fetch
    /// multi-digest envelopes; LAN/shard proxies coalesce concurrent
    /// misses upstream). `off()` — the default — keeps every
    /// pre-fleet scenario byte-identical.
    pub fleet: FleetTuning,
    /// Fixed VMM device-restore CPU per resume. Defaults to the paper's
    /// 6 s figure for a full-size 320 MB VM; reduced-scale probes may
    /// scale it down with the image (as the fleet scenario does) so a
    /// constant CPU term does not bury the data path being measured.
    pub device_cpu: SimDuration,
    /// Fixed VMM configure CPU per clone (full-size figure: 3 s),
    /// scaled like `device_cpu` where appropriate.
    pub configure_cpu: SimDuration,
    /// Copy-on-write reference-file cloning on the caching proxies: a
    /// clone whose golden content is CAS-resident installs as a recipe
    /// (zero disk-install cost) and flushes only diverged chunks.
    /// `on` by default for the cloning scenarios; requires `dedup` (the
    /// knob is inert without a CAS), so dedup-off ablations are
    /// unaffected. `off()` reproduces the pre-CoW paths exactly.
    pub cow: CowTuning,
    /// Collect trace events (carried into the scenario's [`Snapshot`]).
    pub trace: bool,
}

impl Default for CloneParams {
    fn default() -> Self {
        CloneParams {
            net: NetParams::default(),
            clones: 8,
            images: None,
            kernel_cache_bytes: 32 << 20,
            proxy_cache_bytes: 8 << 30,
            image_scale: None,
            cas_chunk_bytes: 1 << 20,
            dedup: DedupTuning::default(),
            fleet: FleetTuning::off(),
            device_cpu: SimDuration::from_secs(6),
            configure_cpu: SimDuration::from_secs(3),
            cow: CowTuning::on(),
            trace: false,
        }
    }
}

impl CloneParams {
    fn image_spec(&self, name: &str) -> VmImageSpec {
        let mut spec = VmImageSpec::clone_benchmark(name);
        if let Some(scale) = self.image_scale {
            spec.memory_bytes /= scale;
            spec.disk_bytes /= scale;
        }
        spec
    }

    /// Whether CoW cloning is actually in effect: the knob is inert
    /// without a CAS to resolve recipes against, so dedup-off runs are
    /// bit-identical whatever `cow` says.
    pub(crate) fn cow_active(&self) -> bool {
        self.cow.enabled && self.dedup.enabled
    }

    pub(crate) fn vm_config(&self) -> VmConfig {
        VmConfig {
            guest_cache_fraction: 0.12,
            // Restoring a 320 MB VM's devices on a 2004 hosted VMM is
            // slow (several seconds of VMware work beyond the file I/O).
            device_cpu: self.device_cpu,
            ..VmConfig::default()
        }
    }
}

/// Fraction of each sibling image's memory that diverges from the
/// shared golden base (clustered per [`vmm::DIVERGE_REGION`]).
const SIBLING_DIVERGENCE: f64 = 0.04;

/// Per-image divergence seed (distinct from any content seed).
fn diverge_seed(i: usize) -> u64 {
    0xD1CE_0000 + i as u64
}

/// Install image `i` of a clone fleet into `dir`: every image is built
/// from the same golden base (identical content seed), then images
/// beyond the first diverge in a clustered ~4% of their memory state —
/// the picture a grid sees when distinct VMs descend from one install.
fn install_fleet_image(
    fs: &mut Fs,
    dir: vfs::Handle,
    params: &CloneParams,
    i: usize,
) -> VmImageSpec {
    let spec = params.image_spec(&format!("vm{i}"));
    let img = install_image(fs, dir, &spec).unwrap();
    if i > 0 {
        diverge_image(fs, &img, &spec, diverge_seed(i), SIBLING_DIVERGENCE).unwrap();
    }
    spec
}

/// Install `n` golden images (+ their middleware meta-data) under
/// `/exports` of the image-server fs. Returns their specs.
pub(crate) fn install_goldens(
    fs: &Arc<Mutex<Fs>>,
    params: &CloneParams,
    n: usize,
) -> Vec<VmImageSpec> {
    use vfs::Fs;
    fn inner(fs: &mut Fs, params: &CloneParams, n: usize) -> Vec<VmImageSpec> {
        let root = fs.root();
        let dir = fs.mkdir(root, "exports", 0o755, 0).unwrap();
        (0..n)
            .map(|i| {
                let spec = install_fleet_image(fs, dir, params, i);
                // Middleware pre-processing: zero map + compressed file
                // channel on the memory state (after divergence, so the
                // content map describes the bytes actually served).
                Middleware::generate_meta_chunked(
                    fs,
                    "exports",
                    &spec.vmss_name(),
                    32 * 1024,
                    params.cas_chunk_bytes,
                    true,
                    Some(FileChannelSpec {
                        compress: true,
                        writeback: false,
                    }),
                )
                .unwrap();
                spec
            })
            .collect()
    }
    let mut guard = fs.lock();
    inner(&mut guard, params, n)
}

use vfs::Fs;

/// One compute host: local disk, client-side caching proxy, kernel mount.
pub(crate) struct ComputeHost {
    pub(crate) local: Arc<LocalIo>,
    pub(crate) table: MountTable,
    pub(crate) proxy: Option<Arc<Proxy>>,
}

pub(crate) fn build_compute_host(
    h: &SimHandle,
    upstream: RpcChannel,
    cred: OpaqueAuth,
    params: &CloneParams,
    with_caches: bool,
    kernel_cfg: KernelConfig,
    env: &Env,
) -> ComputeHost {
    let client = build_client(
        h,
        upstream,
        cred.clone(),
        if with_caches {
            Some(ClientProxyOptions {
                block_cache: true,
                file_channel: true,
                write_policy: WritePolicy::WriteBack,
                cache_bytes: params.proxy_cache_bytes,
                dedup: params.dedup,
                fleet: params.fleet,
                cow: params.cow,
            })
        } else {
            None
        },
        None,
    );
    let nfs = Nfs3Client::new(RpcClient::new(client.channel.clone(), cred));
    let kc = KernelClient::mount(env, nfs, "/exports", kernel_cfg).unwrap();
    let local = LocalIo::new(client.cache_disk.clone(), LocalIoConfig::default(), 0);
    let table = MountTable::new()
        .mount("/", local.clone())
        .mount("/mnt/gvfs", kc);
    ComputeHost {
        local,
        table,
        proxy: client.proxy,
    }
}

/// Result of a sequential cloning scenario: per-clone step times.
#[derive(Debug, Clone)]
pub struct CloneResult {
    /// Scenario label.
    pub scenario: String,
    /// One entry per cloning, in order.
    pub times: Vec<CloneTimes>,
    /// Final virtual time of the whole scenario simulation.
    pub total_virtual_secs: f64,
    /// Telemetry registry snapshot taken after the simulation drained.
    pub snapshot: Snapshot,
    /// Scheduler events the simulation processed end-to-end (the
    /// wall-clock harness divides this by host time for events/sec).
    pub events_processed: u64,
    /// Processes (OS threads) the simulation spawned end-to-end.
    pub processes_spawned: u64,
}

impl CloneResult {
    /// Total seconds across all clonings.
    pub fn total_secs(&self) -> f64 {
        self.times.iter().map(|t| t.total.as_secs_f64()).sum()
    }
}

/// Run a sequential cloning scenario.
pub fn run_cloning(scenario: CloneScenario, params: &CloneParams) -> CloneResult {
    let sim = Simulation::new();
    let h = sim.handle();
    if params.trace {
        h.telemetry().set_trace(true);
    }
    let out: Arc<Mutex<Vec<CloneTimes>>> = Arc::new(Mutex::new(Vec::new()));
    let n = params.clones;
    let kcfg = KernelConfig {
        cache_bytes: params.kernel_cache_bytes,
        ..KernelConfig::default()
    };

    match scenario {
        CloneScenario::Local => {
            let local = LocalIo::new(
                Disk::new(&h, DiskModel::scsi_2004()),
                LocalIoConfig::default(),
                0,
            );
            let specs: Vec<VmImageSpec> = {
                let mut got = Vec::new();
                local.with_fs(|fs| {
                    let root = fs.root();
                    let dir = fs.mkdir(root, "exports", 0o755, 0).unwrap();
                    for i in 0..n {
                        got.push(install_fleet_image(fs, dir, params, i));
                    }
                });
                got
            };
            let table = MountTable::new().mount("/", local);
            let out2 = out.clone();
            let cfg = CloneConfig {
                vm: params.vm_config(),
                configure_cpu: params.configure_cpu,
                ..CloneConfig::default()
            };
            sim.spawn("cloner", move |env: Env| {
                for (i, spec) in specs.iter().enumerate() {
                    let (times, vm) =
                        clone_vm(&env, &table, "/exports", spec, &format!("/clone{i}"), cfg)
                            .unwrap();
                    vm.shutdown(&env).unwrap();
                    out2.lock().push(times);
                }
            });
        }
        CloneScenario::WanS1 | CloneScenario::WanS2 => {
            let up = Link::from_mbps(&h, "wan-up", params.net.wan_up_mbps, params.net.wan_oneway);
            let down = Link::from_mbps(
                &h,
                "wan-down",
                params.net.wan_down_mbps,
                params.net.wan_oneway,
            );
            let server = build_server(&h, up, down, 768 << 20, true);
            let distinct = if scenario == CloneScenario::WanS1 {
                1
            } else {
                params.images.unwrap_or(n).max(1)
            };
            let specs = install_goldens(&server.fs, params, distinct);
            let mw = Middleware::new();
            let (_sid, cred) = mw.establish_session(&server.mapper, "clone-user", 0, u64::MAX / 2);
            let params2 = *params;
            let out2 = out.clone();
            let h2 = h.clone();
            sim.spawn("cloner", move |env: Env| {
                let host = build_compute_host(
                    &h2,
                    server.channel.clone(),
                    cred.clone(),
                    &params2,
                    true,
                    kcfg,
                    &env,
                );
                let cfg = CloneConfig {
                    vm: params2.vm_config(),
                    configure_cpu: params2.configure_cpu,
                    cow_memory: params2.cow_active(),
                    ..CloneConfig::default()
                };
                for i in 0..n {
                    let spec = &specs[i % specs.len()];
                    let (times, vm) = clone_vm(
                        &env,
                        &host.table,
                        "/mnt/gvfs",
                        spec,
                        &format!("/clone{i}"),
                        cfg,
                    )
                    .unwrap();
                    vm.shutdown(&env).unwrap();
                    out2.lock().push(times);
                }
                let _ = &host.local;
                let _ = &host.proxy;
            });
        }
        CloneScenario::WanS3 => {
            let up = Link::from_mbps(&h, "wan-up", params.net.wan_up_mbps, params.net.wan_oneway);
            let down = Link::from_mbps(
                &h,
                "wan-down",
                params.net.wan_down_mbps,
                params.net.wan_oneway,
            );
            let server = build_server(&h, up, down, 768 << 20, true);
            let distinct = params.images.unwrap_or(n).max(1);
            let specs = install_goldens(&server.fs, params, distinct);
            let mw = Middleware::new();
            let (_sid, cred) = mw.establish_session(&server.mapper, "clone-user", 0, u64::MAX / 2);

            // The LAN second-level proxy: block + file caches, reachable
            // from compute servers over the LAN, forwarding over the WAN.
            let lan_proxy_disk = Disk::new(&h, DiskModel::server_array());
            let upstream_client = RpcClient::new(server.channel.clone(), cred.clone());
            let lan_proxy = Proxy::new(
                ProxyConfig {
                    name: "lan-cache-proxy".into(),
                    write_policy: WritePolicy::WriteThrough,
                    meta_handling: true,
                    per_op_cpu: SimDuration::from_micros(40),
                    read_only_share: true,
                    transfer: TransferTuning::default(),
                    dedup: params.dedup,
                    fleet: params.fleet,
                    cow: params.cow,
                },
                upstream_client.clone(),
            )
            .with_block_cache(Arc::new(BlockCache::new(
                &h,
                lan_proxy_disk.clone(),
                BlockCacheConfig::with_capacity(params.proxy_cache_bytes, 512, 16, 32 * 1024),
            )))
            .with_file_channel(
                Arc::new(FileCache::new(lan_proxy_disk, params.proxy_cache_bytes)),
                ChannelClient::new(upstream_client, CodecModel::default()),
            )
            .into_handler();
            let lan_up = Link::from_mbps(&h, "lan-up", params.net.lan_mbps, params.net.lan_oneway);
            let lan_down =
                Link::from_mbps(&h, "lan-down", params.net.lan_mbps, params.net.lan_oneway);
            let lan_ep = oncrpc::endpoint(&h, lan_up, lan_down, WireSpec::ssh_tunnel(50e6));
            lan_ep.listener.serve("lan-cache-proxy", lan_proxy, 16);

            let params2 = *params;
            let out2 = out.clone();
            let h2 = h.clone();
            let lan_channel = lan_ep.channel;
            sim.spawn("cloner", move |env: Env| {
                let cfg = CloneConfig {
                    vm: params2.vm_config(),
                    configure_cpu: params2.configure_cpu,
                    cow_memory: params2.cow_active(),
                    ..CloneConfig::default()
                };
                // Warm-up: another compute server on the same LAN clones
                // each image first (not timed).
                let warm_host = build_compute_host(
                    &h2,
                    lan_channel.clone(),
                    cred.clone(),
                    &params2,
                    true,
                    kcfg,
                    &env,
                );
                for (i, spec) in specs.iter().enumerate() {
                    let (_, vm) = clone_vm(
                        &env,
                        &warm_host.table,
                        "/mnt/gvfs",
                        spec,
                        &format!("/warm{i}"),
                        cfg,
                    )
                    .unwrap();
                    vm.shutdown(&env).unwrap();
                }
                // Timed clones cycle through the distinct images (one
                // pass each when `images` is unset).
                // Timed: a fresh compute server (cold local caches) whose
                // misses hit the warm LAN proxy.
                let host = build_compute_host(
                    &h2,
                    lan_channel.clone(),
                    cred.clone(),
                    &params2,
                    true,
                    kcfg,
                    &env,
                );
                for i in 0..n {
                    let spec = &specs[i % specs.len()];
                    let (times, vm) = clone_vm(
                        &env,
                        &host.table,
                        "/mnt/gvfs",
                        spec,
                        &format!("/clone{i}"),
                        cfg,
                    )
                    .unwrap();
                    vm.shutdown(&env).unwrap();
                    out2.lock().push(times);
                }
            });
        }
    }

    let end = sim.run();
    let times = Arc::try_unwrap(out)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    CloneResult {
        scenario: scenario.label().to_string(),
        times,
        total_virtual_secs: end.as_secs_f64(),
        snapshot: h.telemetry().snapshot(),
        events_processed: h.events_processed(),
        processes_spawned: h.processes_spawned(),
    }
}

/// Parallel-cloning result (Table 1).
#[derive(Debug, Clone)]
pub struct ParallelResult {
    /// Wall time for the 8 parallel clonings, cold caches.
    pub cold_secs: f64,
    /// Wall time repeated with warm caches.
    pub warm_secs: f64,
    /// Final virtual time of the whole scenario simulation.
    pub total_virtual_secs: f64,
    /// Telemetry registry snapshot taken after the simulation drained.
    pub snapshot: Snapshot,
    /// Scheduler events the simulation processed end-to-end (the
    /// wall-clock harness divides this by host time for events/sec).
    pub events_processed: u64,
    /// Processes (OS threads) the simulation spawned end-to-end.
    pub processes_spawned: u64,
}

/// Table 1's WAN-P: `clones` compute servers clone in parallel from one
/// image server, sharing its WAN connection; then repeat warm.
pub fn run_parallel_cloning(params: &CloneParams) -> ParallelResult {
    let sim = Simulation::new();
    let h = sim.handle();
    if params.trace {
        h.telemetry().set_trace(true);
    }
    let n = params.clones;
    let up = Link::from_mbps(&h, "wan-up", params.net.wan_up_mbps, params.net.wan_oneway);
    let down = Link::from_mbps(
        &h,
        "wan-down",
        params.net.wan_down_mbps,
        params.net.wan_oneway,
    );
    let server = build_server(&h, up, down, 768 << 20, true);
    // Setup is O(images), not O(clones): host `i` clones image
    // `i % images` (one image per host when `images` is unset).
    let distinct = params.images.unwrap_or(n).max(1);
    let specs = install_goldens(&server.fs, params, distinct);
    let mw = Middleware::new();
    let kcfg = KernelConfig {
        cache_bytes: params.kernel_cache_bytes,
        ..KernelConfig::default()
    };
    let cold = Arc::new(Mutex::new(0.0f64));
    let warm = Arc::new(Mutex::new(0.0f64));
    let params2 = *params;
    let h2 = h.clone();
    let cold2 = cold.clone();
    let warm2 = warm.clone();
    let mapper = server.mapper.clone();
    let channel = server.channel.clone();
    sim.spawn("coordinator", move |env: Env| {
        let cfg = CloneConfig {
            vm: params2.vm_config(),
            configure_cpu: params2.configure_cpu,
            cow_memory: params2.cow_active(),
            ..CloneConfig::default()
        };
        // Build the 8 compute hosts (each its own session + caches).
        let hosts: Vec<(ComputeHost, VmImageSpec)> = (0..n)
            .map(|i| {
                let (_sid, cred) =
                    mw.establish_session(&mapper, &format!("user{i}"), 0, u64::MAX / 2);
                (
                    build_compute_host(&h2, channel.clone(), cred, &params2, true, kcfg, &env),
                    specs[i % specs.len()].clone(),
                )
            })
            .collect();
        let hosts = Arc::new(hosts);
        for (pass, sink) in [(0usize, cold2.clone()), (1usize, warm2.clone())] {
            let t0 = env.now();
            let mut joins = Vec::new();
            for i in 0..hosts.len() {
                let hosts = hosts.clone();
                joins.push(env.spawn(format!("clone-p{pass}-{i}"), move |env| {
                    let (host, spec) = &hosts[i];
                    let (_, vm) = clone_vm(
                        &env,
                        &host.table,
                        "/mnt/gvfs",
                        spec,
                        &format!("/p{pass}clone{i}"),
                        cfg,
                    )
                    .unwrap();
                    vm.shutdown(&env).unwrap();
                }));
            }
            for j in joins {
                j.join(&env);
            }
            *sink.lock() = (env.now() - t0).as_secs_f64();
        }
    });
    let end = sim.run();
    let cold_secs = *cold.lock();
    let warm_secs = *warm.lock();
    ParallelResult {
        cold_secs,
        warm_secs,
        total_virtual_secs: end.as_secs_f64(),
        snapshot: h.telemetry().snapshot(),
        events_processed: h.events_processed(),
        processes_spawned: h.processes_spawned(),
    }
}

/// Sequential total for Table 1's first row: same 8 images, same
/// configuration, but cloned one after another on one compute server
/// (cold pass), then all over again (warm pass).
pub fn run_sequential_for_table1(params: &CloneParams) -> ParallelResult {
    let sim = Simulation::new();
    let h = sim.handle();
    if params.trace {
        h.telemetry().set_trace(true);
    }
    let n = params.clones;
    let up = Link::from_mbps(&h, "wan-up", params.net.wan_up_mbps, params.net.wan_oneway);
    let down = Link::from_mbps(
        &h,
        "wan-down",
        params.net.wan_down_mbps,
        params.net.wan_oneway,
    );
    let server = build_server(&h, up, down, 768 << 20, true);
    let distinct = params.images.unwrap_or(n).max(1);
    let specs = install_goldens(&server.fs, params, distinct);
    let mw = Middleware::new();
    let (_sid, cred) = mw.establish_session(&server.mapper, "seq-user", 0, u64::MAX / 2);
    let kcfg = KernelConfig {
        cache_bytes: params.kernel_cache_bytes,
        ..KernelConfig::default()
    };
    let cold = Arc::new(Mutex::new(0.0f64));
    let warm = Arc::new(Mutex::new(0.0f64));
    let params2 = *params;
    let h2 = h.clone();
    let cold2 = cold.clone();
    let warm2 = warm.clone();
    let channel = server.channel.clone();
    sim.spawn("cloner", move |env: Env| {
        let host = build_compute_host(&h2, channel, cred, &params2, true, kcfg, &env);
        let cfg = CloneConfig {
            vm: params2.vm_config(),
            configure_cpu: params2.configure_cpu,
            cow_memory: params2.cow_active(),
            ..CloneConfig::default()
        };
        for (pass, sink) in [(0usize, cold2.clone()), (1usize, warm2.clone())] {
            let t0 = env.now();
            for i in 0..n {
                let spec = &specs[i % specs.len()];
                let (_, vm) = clone_vm(
                    &env,
                    &host.table,
                    "/mnt/gvfs",
                    spec,
                    &format!("/s{pass}clone{i}"),
                    cfg,
                )
                .unwrap();
                vm.shutdown(&env).unwrap();
            }
            *sink.lock() = (env.now() - t0).as_secs_f64();
        }
    });
    let end = sim.run();
    let cold_secs = *cold.lock();
    let warm_secs = *warm.lock();
    ParallelResult {
        cold_secs,
        warm_secs,
        total_virtual_secs: end.as_secs_f64(),
        snapshot: h.telemetry().snapshot(),
        events_processed: h.events_processed(),
        processes_spawned: h.processes_spawned(),
    }
}

/// Baseline: transfer the entire image (config + memory + disk) with SCP.
pub fn scp_baseline_secs(params: &CloneParams) -> f64 {
    let sim = Simulation::new();
    let h = sim.handle();
    let down = Link::from_mbps(
        &h,
        "wan-down",
        params.net.wan_down_mbps,
        params.net.wan_oneway,
    );
    let spec = params.image_spec("vm0");
    let total = spec.memory_bytes + spec.disk_bytes + 4096;
    let model = ScpModel::default();
    let est = model.idle_copy_time(&down, total).as_secs_f64();
    drop(sim);
    est
}

/// Baseline: clone over pure NFS — no GVFS proxies, 2004 defaults
/// (rsize 8 KB, no read pipelining), memory state pulled block by block.
pub fn pure_nfs_clone_secs(params: &CloneParams) -> f64 {
    let sim = Simulation::new();
    let h = sim.handle();
    let up = Link::from_mbps(&h, "wan-up", params.net.wan_up_mbps, params.net.wan_oneway);
    let down = Link::from_mbps(
        &h,
        "wan-down",
        params.net.wan_down_mbps,
        params.net.wan_oneway,
    );
    let server = build_server(&h, up, down, 768 << 20, false);
    let spec = {
        let mut fs = server.fs.lock();
        let root = fs.root();
        let dir = fs.mkdir(root, "exports", 0o755, 0).unwrap();
        let spec = params.image_spec("vm0");
        install_image(&mut fs, dir, &spec).unwrap();
        spec
    };
    let out = Arc::new(Mutex::new(0.0f64));
    let out2 = out.clone();
    let params2 = *params;
    sim.spawn("cloner", move |env: Env| {
        let cred = OpaqueAuth::sys(&local_auth_sys());
        let nfs = Nfs3Client::new(RpcClient::new(server.channel.clone(), cred));
        let kc = KernelClient::mount(
            &env,
            nfs,
            "/exports",
            KernelConfig {
                rsize: 8 * 1024,
                wsize: 8 * 1024,
                max_inflight: 1,
                cache_bytes: params2.kernel_cache_bytes,
                ..KernelConfig::default()
            },
        )
        .unwrap();
        let local = LocalIo::new(
            Disk::new(env.handle(), DiskModel::scsi_2004()),
            LocalIoConfig::default(),
            0,
        );
        let table = MountTable::new().mount("/", local).mount("/mnt/nfs", kc);
        let cfg = CloneConfig {
            vm: params2.vm_config(),
            configure_cpu: params2.configure_cpu,
            // Pure NFS moves the memory copy in protocol-sized chunks.
            copy_chunk: 8 * 1024,
            ..CloneConfig::default()
        };
        let t0 = env.now();
        let (_, vm) = clone_vm(&env, &table, "/mnt/nfs", &spec, "/clone0", cfg).unwrap();
        vm.shutdown(&env).unwrap();
        *out2.lock() = (env.now() - t0).as_secs_f64();
    });
    sim.run();
    let secs = *out.lock();
    secs
}

// Small helper to avoid importing AuthSys at top with an alias clash.
fn local_auth_sys() -> oncrpc::AuthSys {
    oncrpc::AuthSys::new("compute", 500, 500)
}
