//! # gvfs-bench — the paper's evaluation, regenerated
//!
//! One binary per table/figure of "Distributed File System Support for
//! Virtual Machines in Grid Computing" (HPDC 2004):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig3_specseis` | Figure 3 — SPECseis phase times, 4 scenarios |
//! | `fig4_latex` | Figure 4 — LaTeX first iteration / mean / total |
//! | `fig5_kernel` | Figure 5 — kernel compilation, 2 consecutive runs |
//! | `fig6_cloning` | Figure 6 — 8 sequential clonings, 4 scenarios + baselines |
//! | `table1_parallel` | Table 1 — sequential vs parallel cloning, cold/warm |
//! | `ablations` | extra: write policy / zero map / channel / associativity |
//! | `fault_recovery` | extra: LaTeX under WAN loss/outage/server restart |
//! | `fleet` | extra: fleet-scale cloning — sharded proxy tree, batching, p50/p95/p99 |
//!
//! The library half holds the scenario builders ([`scenarios`],
//! [`cloning`], [`fleet`]) and report formatting ([`report`]).

#![warn(missing_docs)]

pub mod cloning;
pub mod fleet;
pub mod perfjson;
pub mod report;
pub mod scenarios;

pub use cloning::{
    pure_nfs_clone_secs, run_cloning, run_parallel_cloning, run_sequential_for_table1,
    scp_baseline_secs, CloneParams, CloneResult, CloneScenario, ParallelResult,
};
pub use fleet::{run_fleet, ArrivalMode, FleetParams, FleetResult, LatencySummary};
pub use scenarios::{
    build_client, build_server, fs_digest, run_app_scenario, AppParams, AppResult, AppRun,
    AppScenario, ClientProxyOptions, FaultSpec, NetParams, ServerSide,
};
