//! Scenario topologies for the paper's evaluation (§4.1).
//!
//! Calibrated substitutes for the paper's testbed:
//!
//! * **LAN**: 100 Mb/s Ethernet at the University of Florida,
//!   ~0.2 ms one-way.
//! * **WAN**: Abilene between Northwestern and Florida; per-stream
//!   effective throughput calibrated against the paper's own transfer
//!   numbers (SCP of a 1.9 GB image ≈ 1127 s ⇒ ~14 Mb/s down;
//!   full-state upload 4633 s for 2.5 GB ⇒ ~4.6 Mb/s up), one-way
//!   ~17 ms.
//! * Compute servers: 2004-era SCSI disks (~6 ms seek, 40 MB/s);
//!   image servers: RAID arrays (~4 ms, 60 MB/s).
//!
//! Four application scenarios, exactly as §4.2.1 defines them:
//! `Local`, `LAN`, `WAN` (GVFS proxies + SSH tunnels, no disk cache),
//! `WAN+C` (client-side proxy disk caching enabled).

use std::sync::Arc;

use gvfs::{
    BlockCache, BlockCacheConfig, ChannelClient, CodecModel, CowTuning, DedupTuning, FileCache,
    FileChannelServer, FleetTuning, IdentityMapper, Middleware, Proxy, ProxyConfig, TransferTuning,
    WritePolicy,
};
use nfs3::{KernelClient, KernelConfig, MountServer, Nfs3Client, Nfs3Server, ServerConfig};
use oncrpc::{Dispatcher, OpaqueAuth, RetryPolicy, RpcChannel, RpcClient, WireSpec};
use parking_lot::Mutex;
use simnet::{Env, Link, LinkFaultPlan, SimDuration, SimHandle, SimTime, Simulation, Snapshot};
use vfs::{Disk, DiskModel, FileIo, FileType, Fs, LocalIo, LocalIoConfig, MountTable};
use vmm::{install_image, VmConfig, VmImageSpec, VmMonitor};
use workloads::Workload;

/// Network calibration.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// WAN server→client bandwidth (Mb/s).
    pub wan_down_mbps: f64,
    /// WAN client→server bandwidth (Mb/s).
    pub wan_up_mbps: f64,
    /// WAN one-way latency.
    pub wan_oneway: SimDuration,
    /// LAN bandwidth (Mb/s).
    pub lan_mbps: f64,
    /// LAN one-way latency.
    pub lan_oneway: SimDuration,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            wan_down_mbps: 14.0,
            wan_up_mbps: 6.0,
            wan_oneway: SimDuration::from_millis(17),
            lan_mbps: 100.0,
            lan_oneway: SimDuration::from_micros(200),
        }
    }
}

/// Fault-injection schedule for the failure-domain benchmark. With
/// [`AppParams::fault`] set to `None` (the default) the topology is
/// identical to the fault-free harness: no fault plans are installed and
/// no retransmission policy is attached, so baseline timings do not move.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Seed for the deterministic per-message drop RNG. The WAN uplink
    /// uses `seed`, the downlink `seed + 1`.
    pub seed: u64,
    /// Per-message drop probability applied to each WAN direction for the
    /// whole run. Loss is silence: the client sees only its own timeout.
    pub drop_prob: f64,
    /// Start of the WAN outage window, in virtual seconds.
    pub outage_start_secs: f64,
    /// Outage length in virtual seconds; `0.0` disables the outage.
    pub outage_secs: f64,
    /// Restart the image server at this virtual time, discarding its
    /// unstable writes and rotating its write verifier (RFC 1813 §3.3.7).
    pub restart_at_secs: Option<f64>,
}

impl FaultSpec {
    fn plan(&self, seed: u64) -> LinkFaultPlan {
        let mut plan = LinkFaultPlan::new(seed).drop_prob(self.drop_prob);
        if self.outage_secs > 0.0 {
            let start = SimTime::from_nanos((self.outage_start_secs * 1e9) as u64);
            let end =
                SimTime::from_nanos(((self.outage_start_secs + self.outage_secs) * 1e9) as u64);
            plan = plan.outage(start, end);
        }
        plan
    }
}

/// The four application-execution scenarios of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppScenario {
    /// VM state on the compute server's local disk.
    Local,
    /// NFS mount from the LAN image server through GVFS proxies/tunnels.
    Lan,
    /// Same over the WAN.
    Wan,
    /// WAN plus client-side proxy disk caching.
    WanC,
}

impl AppScenario {
    /// Paper's label.
    pub fn label(self) -> &'static str {
        match self {
            AppScenario::Local => "Local",
            AppScenario::Lan => "LAN",
            AppScenario::Wan => "WAN",
            AppScenario::WanC => "WAN+C",
        }
    }

    /// All four, in the paper's order.
    pub fn all() -> [AppScenario; 4] {
        [
            AppScenario::Local,
            AppScenario::Lan,
            AppScenario::Wan,
            AppScenario::WanC,
        ]
    }
}

/// Harness tuning (things the paper fixes in §4.1).
#[derive(Debug, Clone, Copy)]
pub struct AppParams {
    /// Network calibration.
    pub net: NetParams,
    /// Kernel NFS client buffer cache (limited memory capacity is the
    /// motivation for proxy *disk* caches).
    pub kernel_cache_bytes: u64,
    /// Proxy disk cache capacity (paper: 8 GB, 512 banks, 16-way).
    pub proxy_cache_bytes: u64,
    /// Server memory cache.
    pub server_cache_bytes: u64,
    /// Collect trace events (carried into the scenario's [`Snapshot`]).
    pub trace: bool,
    /// Fault-injection schedule for the network scenarios; `None` (the
    /// default) runs fault-free.
    pub fault: Option<FaultSpec>,
    /// Content-addressed dedup on the client-side proxy.
    /// [`DedupTuning::off()`] reproduces the pre-CAS WAN paths exactly.
    pub dedup: DedupTuning,
}

impl Default for AppParams {
    fn default() -> Self {
        AppParams {
            net: NetParams::default(),
            kernel_cache_bytes: 96 << 20,
            proxy_cache_bytes: 8 << 30,
            server_cache_bytes: 768 << 20,
            trace: false,
            fault: None,
            dedup: DedupTuning::default(),
        }
    }
}

/// Server machine: kernel NFS server + MOUNT + file-channel program on a
/// loopback endpoint, fronted by a server-side GVFS proxy (identity
/// mapping) listening on the external link pair.
pub struct ServerSide {
    /// Image-server filesystem (pre-populate via this).
    pub fs: Arc<Mutex<Fs>>,
    /// Kernel NFS server.
    pub server: Arc<Nfs3Server>,
    /// Identity registry of the server-side proxy.
    pub mapper: Arc<IdentityMapper>,
    /// Channel into the machine from the external network.
    pub channel: RpcChannel,
    /// Request-direction external link.
    pub up: Link,
    /// Reply-direction external link.
    pub down: Link,
}

/// Build a server machine reachable over `(up, down)` with SSH tunnelled
/// wire costs. When `proxied` is false, the external endpoint serves the
/// kernel server directly (pure-NFS baseline, AUTH_SYS) — no GVFS at all.
pub fn build_server(
    h: &SimHandle,
    up: Link,
    down: Link,
    server_cache_bytes: u64,
    proxied: bool,
) -> ServerSide {
    let disk = Disk::new(h, DiskModel::server_array());
    let (fs, server) = Nfs3Server::with_new_fs(
        h,
        disk.clone(),
        ServerConfig {
            memory_cache_bytes: server_cache_bytes,
            ..ServerConfig::default()
        },
    );
    let mount = MountServer::new(fs.clone(), vec!["/".to_string(), "/exports".to_string()]);
    // The paper's image servers are dual-processor nodes: two gzip
    // streams at a time.
    let cpu = simnet::Resource::new(h, 2);
    let chan = FileChannelServer::with_cpu(fs.clone(), disk, CodecModel::default(), true, cpu);
    let dispatcher = Dispatcher::new()
        .register(server.clone())
        .register(mount)
        .register(chan)
        .into_handler();
    let mapper = Arc::new(IdentityMapper::new());
    let wire = if proxied {
        WireSpec::ssh_tunnel(50e6)
    } else {
        WireSpec::plain()
    };
    let channel = if proxied {
        // Loopback endpoint for the kernel server.
        let lo_up = Link::new(h, "srv-lo-up", 1e9, SimDuration::from_micros(20));
        let lo_down = Link::new(h, "srv-lo-down", 1e9, SimDuration::from_micros(20));
        let lo = oncrpc::endpoint(h, lo_up, lo_down, WireSpec::plain());
        lo.listener.serve("nfsd", dispatcher, 8);
        let srv_proxy = Proxy::new(
            ProxyConfig {
                name: "server-proxy".into(),
                write_policy: WritePolicy::WriteThrough,
                meta_handling: false,
                per_op_cpu: SimDuration::from_micros(40),
                read_only_share: false,
                transfer: TransferTuning::default(),
                // The server-side proxy sits on the server's own LAN; a
                // CAS there can never avoid WAN bytes.
                dedup: DedupTuning::off(),
                fleet: FleetTuning::off(),
                cow: CowTuning::off(),
            },
            RpcClient::new(lo.channel, OpaqueAuth::none()),
        )
        .with_identity(mapper.clone())
        .into_handler();
        let ext = oncrpc::endpoint(h, up.clone(), down.clone(), wire);
        ext.listener.serve("server-proxy", srv_proxy, 16);
        ext.channel
    } else {
        let ext = oncrpc::endpoint(h, up.clone(), down.clone(), wire);
        ext.listener.serve("nfsd", dispatcher, 8);
        ext.channel
    };
    ServerSide {
        fs,
        server,
        mapper,
        channel,
        up,
        down,
    }
}

/// Client-side proxy options.
#[derive(Debug, Clone, Copy)]
pub struct ClientProxyOptions {
    /// Attach the block-based disk cache.
    pub block_cache: bool,
    /// Attach the file cache + channel client (meta-data handling).
    pub file_channel: bool,
    /// Write policy when caching.
    pub write_policy: WritePolicy,
    /// Block cache capacity.
    pub cache_bytes: u64,
    /// Content-addressed dedup tuning for this proxy.
    pub dedup: DedupTuning,
    /// Fleet batching/back-pressure tuning for this proxy.
    pub fleet: FleetTuning,
    /// Copy-on-write reference-file tuning for this proxy (inert
    /// without `dedup`).
    pub cow: CowTuning,
}

/// Client machine half: optional client-side proxy between the kernel
/// client and `upstream`.
pub struct ClientSide {
    /// The proxy, when one was configured.
    pub proxy: Option<Arc<Proxy>>,
    /// Channel the kernel client mounts through.
    pub channel: RpcChannel,
    /// The local cache disk (shared with the compute host's local I/O in
    /// the cloning scenarios).
    pub cache_disk: Disk,
}

/// Build the client half on a compute server: a loopback endpoint served
/// by a client-side proxy that forwards to `upstream` with `cred`.
/// `options: None` means no proxy at all — the kernel client mounts the
/// upstream channel directly. `policy` attaches a retransmission policy
/// to the proxy's upstream stub (fault-injection runs); `None` keeps the
/// fault-free single-shot behaviour.
pub fn build_client(
    h: &SimHandle,
    upstream: RpcChannel,
    cred: OpaqueAuth,
    options: Option<ClientProxyOptions>,
    policy: Option<RetryPolicy>,
) -> ClientSide {
    let cache_disk = Disk::new(h, DiskModel::scsi_2004());
    let opts = match options {
        Some(o) => o,
        None => {
            return ClientSide {
                proxy: None,
                channel: upstream,
                cache_disk,
            }
        }
    };
    let mut upstream_client = RpcClient::new(upstream, cred);
    if let Some(p) = policy {
        upstream_client = upstream_client.with_policy(p);
    }
    let mut proxy = Proxy::new(
        ProxyConfig {
            name: "client-proxy".into(),
            write_policy: opts.write_policy,
            meta_handling: opts.file_channel,
            per_op_cpu: SimDuration::from_micros(40),
            read_only_share: false,
            transfer: TransferTuning::default(),
            dedup: opts.dedup,
            fleet: opts.fleet,
            cow: opts.cow,
        },
        upstream_client.clone(),
    );
    if opts.block_cache {
        proxy = proxy.with_block_cache(Arc::new(BlockCache::new(
            h,
            cache_disk.clone(),
            BlockCacheConfig::with_capacity(opts.cache_bytes, 512, 16, 32 * 1024),
        )));
    }
    if opts.file_channel {
        proxy = proxy.with_file_channel(
            Arc::new(FileCache::new(cache_disk.clone(), opts.cache_bytes)),
            ChannelClient::new(upstream_client, CodecModel::default()),
        );
    }
    let proxy = proxy.into_handler();
    let lo_up = Link::new(h, "cl-lo-up", 1e9, SimDuration::from_micros(20));
    let lo_down = Link::new(h, "cl-lo-down", 1e9, SimDuration::from_micros(20));
    let ep = oncrpc::endpoint(h, lo_up, lo_down, WireSpec::plain());
    ep.listener.serve("client-proxy", proxy.clone(), 8);
    ClientSide {
        proxy: Some(proxy),
        channel: ep.channel,
        cache_disk,
    }
}

/// Per-phase timing of one benchmark run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// (phase name, seconds).
    pub phases: Vec<(String, f64)>,
    /// Sum of phases.
    pub total: f64,
}

/// Result of an application scenario.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Scenario label.
    pub scenario: String,
    /// One entry per consecutive run (run 0 cold, later runs warm).
    pub runs: Vec<AppRun>,
    /// Time to flush write-back contents after the last run, when a
    /// caching proxy was present.
    pub flush_secs: Option<f64>,
    /// Final virtual time of the whole scenario simulation.
    pub total_virtual_secs: f64,
    /// Telemetry registry snapshot taken after the simulation drained.
    pub snapshot: Snapshot,
    /// Content digest of the image server's filesystem after the
    /// simulation drained (network scenarios only). Fault runs compare
    /// this against the fault-free run to prove zero lost bytes.
    pub server_fs_digest: Option<u64>,
    /// Scheduler events the simulation processed end-to-end (the
    /// wall-clock harness divides this by host time for events/sec).
    pub events_processed: u64,
    /// Processes (OS threads) the simulation spawned end-to-end.
    pub processes_spawned: u64,
}

/// FNV-1a digest over a deterministic recursive walk of a filesystem:
/// path, type, size, and full contents of every regular file (symlink
/// targets included). Timestamps are deliberately excluded so runs whose
/// virtual clocks diverged (fault injection) still compare equal when the
/// bytes do.
pub fn fs_digest(fs: &Arc<Mutex<Fs>>) -> u64 {
    fn mix(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    let mut f = fs.lock();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut stack = vec![(String::new(), f.root())];
    while let Some((path, dir)) = stack.pop() {
        let Ok(mut entries) = f.readdir(dir) else {
            continue;
        };
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        // The stack pops in reverse push order; push reversed so the walk
        // visits entries in sorted order.
        for (name, handle) in entries.into_iter().rev() {
            let p = format!("{path}/{name}");
            let Ok(attr) = f.getattr(handle) else {
                continue;
            };
            mix(&mut h, p.as_bytes());
            mix(&mut h, &attr.size.to_le_bytes());
            match attr.ftype {
                FileType::Directory => stack.push((p, handle)),
                FileType::Regular => {
                    let mut off = 0u64;
                    while off < attr.size {
                        let len = (attr.size - off).min(1 << 20) as usize;
                        let Ok((data, _)) = f.read(handle, off, len, 0) else {
                            break;
                        };
                        if data.is_empty() {
                            break;
                        }
                        mix(&mut h, &data);
                        off += data.len() as u64;
                    }
                }
                FileType::Symlink => {
                    if let Ok(target) = f.readlink(handle) {
                        mix(&mut h, target.as_bytes());
                    }
                }
            }
        }
    }
    h
}

/// Execute `workload` `runs` consecutive times under `kind`, returning
/// per-phase times. Cold caches on run 0 (fresh everything); later runs
/// keep every cache warm, like the paper's consecutive kernel-compile
/// runs.
pub fn run_app_scenario(
    kind: AppScenario,
    workload: &Workload,
    params: &AppParams,
    runs: usize,
) -> AppResult {
    let sim = Simulation::new();
    let h = sim.handle();
    if params.trace {
        h.telemetry().set_trace(true);
    }
    let image = VmImageSpec::app_benchmark("appvm");
    let results: Arc<Mutex<AppResult>> = Arc::new(Mutex::new(AppResult {
        scenario: kind.label().to_string(),
        runs: Vec::new(),
        flush_secs: None,
        total_virtual_secs: 0.0,
        snapshot: Snapshot::default(),
        server_fs_digest: None,
        events_processed: 0,
        processes_spawned: 0,
    }));
    let mut server_fs: Option<Arc<Mutex<Fs>>> = None;

    let kcfg = KernelConfig {
        cache_bytes: params.kernel_cache_bytes,
        ..KernelConfig::default()
    };

    match kind {
        AppScenario::Local => {
            let local = LocalIo::new(
                Disk::new(&h, DiskModel::scsi_2004()),
                LocalIoConfig {
                    cache_bytes: params.kernel_cache_bytes,
                    ..LocalIoConfig::default()
                },
                0,
            );
            local.with_fs(|fs| {
                let root = fs.root();
                let dir = fs.mkdir(root, "vm", 0o755, 0).unwrap();
                install_image(fs, dir, &image).unwrap();
            });
            let table = MountTable::new().mount("/", local);
            let wl = workload.clone();
            let out = results.clone();
            sim.spawn("driver", move |env: Env| {
                let vm = VmMonitor::attach(&env, &table, "/vm", image, VmConfig::default(), None)
                    .unwrap();
                drive_runs(&env, &vm, &wl, runs, &out, || {}, None);
            });
        }
        AppScenario::Lan | AppScenario::Wan | AppScenario::WanC => {
            let (up, down) = match kind {
                AppScenario::Lan => (
                    Link::from_mbps(&h, "lan-up", params.net.lan_mbps, params.net.lan_oneway),
                    Link::from_mbps(&h, "lan-down", params.net.lan_mbps, params.net.lan_oneway),
                ),
                _ => (
                    Link::from_mbps(&h, "wan-up", params.net.wan_up_mbps, params.net.wan_oneway),
                    Link::from_mbps(
                        &h,
                        "wan-down",
                        params.net.wan_down_mbps,
                        params.net.wan_oneway,
                    ),
                ),
            };
            let server = build_server(&h, up, down, params.server_cache_bytes, true);
            server_fs = Some(server.fs.clone());
            {
                let mut fs = server.fs.lock();
                let root = fs.root();
                let dir = fs.mkdir(root, "exports", 0o755, 0).unwrap();
                install_image(&mut fs, dir, &image).unwrap();
            }
            if let Some(fault) = params.fault {
                // Faults live on the external links only; loopback hops
                // (kernel client → proxy, server proxy → kernel server)
                // stay reliable, as a local socket would.
                server.up.install_faults(fault.plan(fault.seed));
                server
                    .down
                    .install_faults(fault.plan(fault.seed.wrapping_add(1)));
                if let Some(at) = fault.restart_at_secs {
                    let srv = server.server.clone();
                    sim.spawn("chaos-restart", move |env: Env| {
                        env.sleep(SimDuration::from_secs_f64(at));
                        srv.restart(env.now().as_nanos());
                    });
                }
            }
            let mw = Middleware::new();
            let (_sid, cred) = mw.establish_session(&server.mapper, "griduser", 0, u64::MAX / 2);
            let opts = if kind == AppScenario::WanC {
                Some(ClientProxyOptions {
                    block_cache: true,
                    file_channel: true,
                    write_policy: WritePolicy::WriteBack,
                    cache_bytes: params.proxy_cache_bytes,
                    dedup: params.dedup,
                    fleet: FleetTuning::off(),
                    cow: CowTuning::off(),
                })
            } else {
                // LAN/WAN: proxies forward through tunnels but no disk
                // cache (paper's plain GVFS data path).
                None
            };
            let policy = params.fault.map(|_| RetryPolicy::wan());
            let client = build_client(&h, server.channel.clone(), cred.clone(), opts, policy);
            let proxy = client.proxy.clone();
            let wl = workload.clone();
            let out = results.clone();
            sim.spawn("driver", move |env: Env| {
                let mut stub = RpcClient::new(client.channel.clone(), cred.clone());
                if client.proxy.is_none() {
                    // No proxy in the path: the kernel client itself sits
                    // on the (possibly faulted) external channel.
                    if let Some(p) = policy {
                        stub = stub.with_policy(p);
                    }
                }
                let nfs = Nfs3Client::new(stub);
                let kc = KernelClient::mount(&env, nfs, "/exports", kcfg).unwrap();
                let table = MountTable::new().mount("/mnt/gvfs", kc.clone());
                let vm =
                    VmMonitor::attach(&env, &table, "/mnt/gvfs", image, VmConfig::default(), None)
                        .unwrap();
                let flush: Option<(Arc<Proxy>, OpaqueAuth)> = proxy.map(|p| (p, cred.clone()));
                drive_runs(&env, &vm, &wl, runs, &out, move || {}, flush);
            });
        }
    }

    let end = sim.run();
    let mut res = Arc::try_unwrap(results)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    res.total_virtual_secs = end.as_secs_f64();
    res.snapshot = h.telemetry().snapshot();
    res.server_fs_digest = server_fs.as_ref().map(fs_digest);
    res.events_processed = h.events_processed();
    res.processes_spawned = h.processes_spawned();
    res
}

/// Shared run loop: cold run 0, warm runs after; flush timing at the end.
fn drive_runs(
    env: &Env,
    vm: &VmMonitor,
    wl: &Workload,
    runs: usize,
    out: &Arc<Mutex<AppResult>>,
    _between: impl Fn(),
    flush: Option<(Arc<Proxy>, OpaqueAuth)>,
) {
    for _run in 0..runs {
        let mut phases = Vec::with_capacity(wl.phases.len());
        let run_start = env.now();
        for phase in &wl.phases {
            let t0 = env.now();
            vm.run(env, &phase.ops).unwrap();
            // Guest periodic sync: write costs belong to their phase.
            vm.sync_disk(env).unwrap();
            phases.push((phase.name.clone(), (env.now() - t0).as_secs_f64()));
        }
        let total = (env.now() - run_start).as_secs_f64();
        out.lock().runs.push(AppRun { phases, total });
    }
    vm.shutdown(env).unwrap();
    if let Some((proxy, cred)) = flush {
        let t0 = env.now();
        proxy.flush(env, &cred);
        out.lock().flush_secs = Some((env.now() - t0).as_secs_f64());
    }
}

#[allow(unused)]
fn assert_impls() {
    fn takes_fileio(_: &dyn FileIo) {}
}
