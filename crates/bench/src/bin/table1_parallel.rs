//! Table 1 — total time of cloning eight VM images sequentially (WAN-S1
//! row of the table) versus in parallel across eight compute servers
//! (WAN-P), with cold and warm caches.
//!
//! Paper: sequential 1056 s cold / 200 s warm; parallel 150.3 s cold /
//! 32 s warm — speedups >7× cold and >6× warm. The parallel cold case is
//! *not* 8× because the eight compressed memory-state streams share the
//! image server's WAN connection (fluid bandwidth sharing), while warm
//! clonings are limited by per-clone constant work.

use gvfs::{CowTuning, DedupTuning};
use gvfs_bench::report::{render_table, scenario_report, write_report, BenchCli};
use gvfs_bench::{run_parallel_cloning, run_sequential_for_table1, CloneParams};

fn main() {
    let cli = BenchCli::parse("table1_parallel");
    let params = CloneParams {
        trace: cli.trace,
        dedup: if cli.no_dedup {
            DedupTuning::off()
        } else {
            DedupTuning::default()
        },
        // The table's claim is about *materialized* install parallelism
        // (the paper predates CoW): reference cloning folds the warm
        // sequential column toward the compute floor and inverts the
        // cold speedup, so the CoW story lives in fig6/fleet/cow_ablation
        // instead.
        cow: CowTuning::off(),
        ..CloneParams::default()
    };
    println!(
        "Table 1: total time of cloning {} VM images (seconds)\n",
        params.clones
    );
    let seq = run_sequential_for_table1(&params);
    let par = run_parallel_cloning(&params);
    if let Some(path) = &cli.json_path {
        write_report(
            path,
            "table1_parallel",
            vec![
                scenario_report("sequential (WAN-S1)", seq.total_virtual_secs, &seq.snapshot),
                scenario_report("parallel (WAN-P)", par.total_virtual_secs, &par.snapshot),
            ],
        );
    }

    println!(
        "{}",
        render_table(
            &["", "cold caches", "warm caches"],
            &[
                vec![
                    "sequential (WAN-S1)".into(),
                    format!("{:.1}", seq.cold_secs),
                    format!("{:.1}", seq.warm_secs),
                ],
                vec![
                    "parallel (WAN-P)".into(),
                    format!("{:.1}", par.cold_secs),
                    format!("{:.1}", par.warm_secs),
                ],
            ],
        )
    );

    println!("Shape vs paper:");
    println!(
        "  cold speedup   paper 1056/150.3 = 7.0x   measured {:.1}x",
        seq.cold_secs / par.cold_secs
    );
    println!(
        "  warm speedup   paper 200/32    = 6.3x   measured {:.1}x",
        seq.warm_secs / par.warm_secs
    );
}
