//! Figure 5 — kernel compilation execution times (hours:minutes), four
//! make steps, two consecutive runs (run 1 cold caches, run 2 warm).
//!
//! Paper's shape: run 1 WAN+C ≈ +84% vs Local; run 2 WAN+C ≈ +9% vs
//! Local, <4% slower than LAN, >30% faster than WAN.

use gvfs_bench::report::{hmm, render_table, scenario_report, write_report, BenchCli};
use gvfs_bench::{run_app_scenario, AppParams, AppScenario};
use workloads::kernel::{generate, KernelParams};

fn main() {
    let cli = BenchCli::parse("fig5_kernel");
    let params = AppParams {
        trace: cli.trace,
        ..AppParams::default()
    };
    let wl = generate(&KernelParams::default());
    println!("Figure 5: kernel compilation times (h:mm per step), two consecutive runs\n");

    let mut results = Vec::new();
    for scn in AppScenario::all() {
        let res = run_app_scenario(scn, &wl, &params, 2);
        results.push((scn, res));
    }
    if let Some(path) = &cli.json_path {
        let scenarios = results
            .iter()
            .map(|(scn, res)| scenario_report(scn.label(), res.total_virtual_secs, &res.snapshot))
            .collect();
        write_report(path, "fig5_kernel", scenarios);
    }

    for run_idx in 0..2 {
        println!(
            "{} run:",
            if run_idx == 0 {
                "First (cold)"
            } else {
                "Second (warm)"
            }
        );
        let mut rows = Vec::new();
        for (scn, res) in &results {
            let run = &res.runs[run_idx];
            let mut row = vec![scn.label().to_string()];
            for (_, secs) in &run.phases {
                row.push(hmm(*secs));
            }
            row.push(hmm(run.total));
            rows.push(row);
        }
        println!(
            "{}",
            render_table(
                &[
                    "Scenario",
                    "make dep",
                    "make bzImage",
                    "make modules",
                    "modules_install",
                    "Total"
                ],
                &rows
            )
        );
    }

    let total = |s: AppScenario, run: usize| -> f64 {
        results
            .iter()
            .find(|(k, _)| *k == s)
            .map(|(_, r)| r.runs[run].total)
            .unwrap()
    };
    let r1 = (total(AppScenario::WanC, 0) / total(AppScenario::Local, 0) - 1.0) * 100.0;
    let r2_local = (total(AppScenario::WanC, 1) / total(AppScenario::Local, 1) - 1.0) * 100.0;
    let r2_lan = (total(AppScenario::WanC, 1) / total(AppScenario::Lan, 1) - 1.0) * 100.0;
    let r2_wan = (1.0 - total(AppScenario::WanC, 1) / total(AppScenario::Wan, 1)) * 100.0;
    println!("Shape vs paper:");
    println!("  run 1: WAN+C vs Local   paper +84%   measured {r1:+.0}%");
    println!("  run 2: WAN+C vs Local   paper +9%    measured {r2_local:+.0}%");
    println!("  run 2: WAN+C vs LAN     paper <+4%   measured {r2_lan:+.1}%");
    println!("  run 2: WAN+C vs WAN     paper >30% faster   measured {r2_wan:.0}% faster");
}
