//! perf — the wall-clock performance harness (DESIGN.md §5.6).
//!
//! Unlike every other binary in this crate, which reports *virtual* time
//! calibrated against the paper, this one measures how fast the simulator
//! itself runs on the host: a fixed scenario set (fig4 LaTeX WAN+C with
//! write-back flush, fig6/table1 clone fleets, and a pure simnet
//! event-churn microbench) is executed N times, and the median wall-clock
//! seconds per run yields three throughput rates per scenario:
//!
//! * **events/sec** — scheduler events processed per wall-clock second,
//! * **RPC round-trips/sec** — completed client calls per wall second,
//! * **simulated-bytes/sec** — link-layer payload bytes per wall second.
//!
//! Results are appended as one labelled entry to the committed
//! `BENCH_perf.json` trajectory file (schema `gvfs.perf.v1`) so engine
//! regressions are visible PR-over-PR. Virtual-time results are checked
//! for bit-identity across the N repeats: a deterministic simulation must
//! produce the same event count, byte count, and final virtual clock
//! every run, and the harness fails hard when it does not.
//!
//! `--validate` checks either trajectory schema — `gvfs.perf.v1`
//! (this binary's `BENCH_perf.json`) or `gvfs.fleet-perf.v1`
//! (`BENCH_fleet.json`, written by `fleet --bench`).
//!
//! ```text
//! cargo run -p gvfs-bench --release --bin perf            # full, 5 runs
//! cargo run -p gvfs-bench --release --bin perf -- --smoke # CI-sized
//! cargo run -p gvfs-bench --release --bin perf -- --validate BENCH_perf.json
//! cargo run -p gvfs-bench --release --bin perf -- --validate BENCH_fleet.json
//! ```

use gvfs_bench::perfjson::{
    append_trajectory, as_number, events_per_sec_of, get, measure, rpc_roundtrips, sim_bytes,
    validate, JsonReader, Measure, PERF_SCENARIOS, PERF_SCHEMA,
};
use gvfs_bench::{
    run_app_scenario, run_parallel_cloning, run_sequential_for_table1, AppParams, AppScenario,
    CloneParams,
};
use simnet::{Env, JsonValue, SimDuration, Simulation};
use workloads::latex::{generate, LatexParams};

// ---------------------------------------------------------------------------
// Scenarios

/// Figure 4's WAN+C LaTeX run, including the write-back flush: the
/// NFS/proxy/cache read-write hot path.
fn fig4_flush(smoke: bool) -> Measure {
    let params = AppParams::default();
    let lp = if smoke {
        // CI-sized: a few hundred cold blocks still exercises the whole
        // proxy/cache/flush path, in well under a second of wall time.
        LatexParams {
            iterations: 2,
            cold_blocks: 700,
            warm_blocks: 120,
            doc_bytes: 512 << 10,
            out_bytes: 1 << 20,
            ..LatexParams::default()
        }
    } else {
        LatexParams::default()
    };
    let wl = generate(&lp);
    let res = run_app_scenario(AppScenario::WanC, &wl, &params, 1);
    Measure {
        events: res.events_processed,
        rpc_roundtrips: rpc_roundtrips(&res.snapshot),
        sim_bytes: sim_bytes(&res.snapshot),
        virtual_secs: res.total_virtual_secs,
        procs: res.processes_spawned,
    }
}

fn clone_params(smoke: bool) -> CloneParams {
    CloneParams {
        // Reduced images keep a single harness run in seconds while still
        // pushing millions of bytes through the proxy data path. Fixed
        // per mode so trajectory entries stay comparable.
        image_scale: Some(if smoke { 64 } else { 4 }),
        clones: if smoke { 2 } else { 8 },
        ..CloneParams::default()
    }
}

/// Figure 6 / Table 1's parallel clone fleet: the channel-transfer and
/// block-cache hot path under concurrency.
fn fig6_clone(smoke: bool) -> Measure {
    let res = run_parallel_cloning(&clone_params(smoke));
    Measure {
        events: res.events_processed,
        rpc_roundtrips: rpc_roundtrips(&res.snapshot),
        sim_bytes: sim_bytes(&res.snapshot),
        virtual_secs: res.total_virtual_secs,
        procs: res.processes_spawned,
    }
}

/// Table 1's sequential row (cold pass then warm pass on one host).
fn table1_seq(smoke: bool) -> Measure {
    let res = run_sequential_for_table1(&clone_params(smoke));
    Measure {
        events: res.events_processed,
        rpc_roundtrips: rpc_roundtrips(&res.snapshot),
        sim_bytes: sim_bytes(&res.snapshot),
        virtual_secs: res.total_virtual_secs,
        procs: res.processes_spawned,
    }
}

/// Pure engine churn: no RPC, no links — many processes sleeping and
/// yielding. Isolates raw scheduler throughput from protocol work.
fn simnet_churn(smoke: bool) -> Measure {
    let (procs, iters) = if smoke {
        (16u64, 2_000u64)
    } else {
        (32u64, 4_000u64)
    };
    let sim = Simulation::new();
    let h = sim.handle();
    for p in 0..procs {
        sim.spawn(format!("churn{p}"), move |env: Env| {
            let mut s = p + 1;
            for _ in 0..iters {
                s = simnet::splitmix64(s);
                env.sleep(SimDuration::from_micros(1 + s % 128));
                env.yield_now();
            }
        });
    }
    let end = sim.run();
    Measure {
        events: h.events_processed(),
        rpc_roundtrips: 0,
        sim_bytes: 0,
        virtual_secs: end.as_secs_f64(),
        procs: h.processes_spawned(),
    }
}

// ---------------------------------------------------------------------------
// Main

struct Cli {
    smoke: bool,
    runs: Option<usize>,
    json_path: String,
    label: String,
    no_write: bool,
    validate_path: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        smoke: false,
        runs: None,
        json_path: "BENCH_perf.json".to_string(),
        label: "dev".to_string(),
        no_write: false,
        validate_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => cli.smoke = true,
            "--no-write" => cli.no_write = true,
            "--runs" => {
                cli.runs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--runs requires a positive integer")),
                )
            }
            "--json" => {
                cli.json_path = args
                    .next()
                    .unwrap_or_else(|| usage("--json requires a path"))
            }
            "--label" => {
                cli.label = args
                    .next()
                    .unwrap_or_else(|| usage("--label requires a value"))
            }
            "--validate" => {
                cli.validate_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--validate requires a path")),
                )
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    cli
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("perf: {err}");
    }
    eprintln!(
        "usage: perf [--smoke] [--runs N] [--json PATH] [--label NAME] [--no-write]\n       perf --validate PATH"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let cli = parse_cli();

    if let Some(path) = &cli.validate_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf: cannot read {path}: {e}");
            std::process::exit(1);
        });
        let doc = JsonReader::parse(&text).unwrap_or_else(|e| {
            eprintln!("perf: {path} is not valid JSON: {e}");
            std::process::exit(1);
        });
        let errs = validate(&doc);
        if errs.is_empty() {
            let schema = match get(&doc, "schema") {
                Some(JsonValue::Str(s)) => s.clone(),
                _ => unreachable!("validate() demands a string schema"),
            };
            println!("perf: {path} conforms to {schema}");
            return;
        }
        for e in &errs {
            eprintln!("perf: {path}: {e}");
        }
        std::process::exit(1);
    }

    let runs = cli.runs.unwrap_or(if cli.smoke { 2 } else { 3 });
    if runs == 0 {
        usage("--runs must be >= 1");
    }
    let mode = if cli.smoke { "smoke" } else { "full" };
    eprintln!("perf: mode={mode} runs={runs} label={}", cli.label);

    let smoke = cli.smoke;
    let scenarios = vec![
        measure("fig4_flush", runs, || fig4_flush(smoke)),
        measure("fig6_clone", runs, || fig6_clone(smoke)),
        measure("table1_seq", runs, || table1_seq(smoke)),
        measure("simnet_churn", runs, || simnet_churn(smoke)),
    ];

    println!("\nWall-clock throughput (median of {runs} runs, {mode} mode):\n");
    println!(
        "{:<14} {:>12} {:>14} {:>16} {:>18}",
        "scenario", "wall secs", "events/sec", "rpc rt/sec", "sim bytes/sec"
    );
    for s in &scenarios {
        let name = match get(s, "name") {
            Some(JsonValue::Str(n)) => n.clone(),
            _ => unreachable!("scenario entries always carry a name"),
        };
        let num = |k: &str| get(s, k).and_then(as_number).unwrap_or(0.0);
        println!(
            "{:<14} {:>12.3} {:>14.0} {:>16.0} {:>18.0}",
            name,
            num("wall_secs_median"),
            num("events_per_sec"),
            num("rpc_roundtrips_per_sec"),
            num("sim_bytes_per_sec")
        );
    }

    let entry = JsonValue::object([
        ("label", JsonValue::Str(cli.label.clone())),
        ("mode", JsonValue::Str(mode.to_string())),
        ("runs", JsonValue::Uint(runs as u64)),
        ("scenarios", JsonValue::Array(scenarios)),
    ]);

    if cli.no_write {
        return;
    }

    // Comparing against the first entry of the same mode shows the
    // trajectory's cumulative effect (e.g. pre- vs post-optimization).
    if let Ok(text) = std::fs::read_to_string(&cli.json_path) {
        if let Ok(doc) = JsonReader::parse(&text) {
            if let Some(JsonValue::Array(entries)) = get(&doc, "trajectory") {
                if let Some(first) = entries
                    .iter()
                    .find(|e| matches!(get(e, "mode"), Some(JsonValue::Str(m)) if m == mode))
                {
                    for name in PERF_SCENARIOS {
                        if let (Some(base), Some(now)) = (
                            events_per_sec_of(first, name),
                            events_per_sec_of(&entry, name),
                        ) {
                            if base > 0.0 {
                                println!(
                                    "{name}: {:.2}x events/sec vs first {mode} entry",
                                    now / base
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    append_trajectory(&cli.json_path, PERF_SCHEMA, entry);
}
