//! perf — the wall-clock performance harness (DESIGN.md §5.6).
//!
//! Unlike every other binary in this crate, which reports *virtual* time
//! calibrated against the paper, this one measures how fast the simulator
//! itself runs on the host: a fixed scenario set (fig4 LaTeX WAN+C with
//! write-back flush, fig6/table1 clone fleets, and a pure simnet
//! event-churn microbench) is executed N times, and the median wall-clock
//! seconds per run yields three throughput rates per scenario:
//!
//! * **events/sec** — scheduler events processed per wall-clock second,
//! * **RPC round-trips/sec** — completed client calls per wall second,
//! * **simulated-bytes/sec** — link-layer payload bytes per wall second.
//!
//! Results are appended as one labelled entry to the committed
//! `BENCH_perf.json` trajectory file (schema `gvfs.perf.v1`) so engine
//! regressions are visible PR-over-PR. Virtual-time results are checked
//! for bit-identity across the N repeats: a deterministic simulation must
//! produce the same event count, byte count, and final virtual clock
//! every run, and the harness fails hard when it does not.
//!
//! ```text
//! cargo run -p gvfs-bench --release --bin perf            # full, 5 runs
//! cargo run -p gvfs-bench --release --bin perf -- --smoke # CI-sized
//! cargo run -p gvfs-bench --release --bin perf -- --validate BENCH_perf.json
//! ```

use gvfs_bench::{
    run_app_scenario, run_parallel_cloning, run_sequential_for_table1, AppParams, AppScenario,
    CloneParams,
};
use simnet::{Env, JsonValue, SimDuration, Simulation, Snapshot};
use workloads::latex::{generate, LatexParams};

/// Virtual-time outcome of one scenario execution. Must be identical
/// across repeated runs — the simulation is deterministic, only the wall
/// clock may vary.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Measure {
    events: u64,
    rpc_roundtrips: u64,
    sim_bytes: u64,
    virtual_secs: f64,
    procs: u64,
}

fn rpc_roundtrips(snap: &Snapshot) -> u64 {
    // Completed client-side calls: one per RPC round trip. Server-side
    // `served.calls` would double-count multi-hop proxy chains.
    snap.counters
        .iter()
        .filter(|c| c.layer == "rpc" && c.name.starts_with("client.") && c.name.ends_with(".calls"))
        .map(|c| c.value)
        .sum()
}

fn sim_bytes(snap: &Snapshot) -> u64 {
    snap.counter_sum("link", ".bytes")
}

// ---------------------------------------------------------------------------
// Scenarios

/// Figure 4's WAN+C LaTeX run, including the write-back flush: the
/// NFS/proxy/cache read-write hot path.
fn fig4_flush(smoke: bool) -> Measure {
    let params = AppParams::default();
    let lp = if smoke {
        // CI-sized: a few hundred cold blocks still exercises the whole
        // proxy/cache/flush path, in well under a second of wall time.
        LatexParams {
            iterations: 2,
            cold_blocks: 700,
            warm_blocks: 120,
            doc_bytes: 512 << 10,
            out_bytes: 1 << 20,
            ..LatexParams::default()
        }
    } else {
        LatexParams::default()
    };
    let wl = generate(&lp);
    let res = run_app_scenario(AppScenario::WanC, &wl, &params, 1);
    Measure {
        events: res.events_processed,
        rpc_roundtrips: rpc_roundtrips(&res.snapshot),
        sim_bytes: sim_bytes(&res.snapshot),
        virtual_secs: res.total_virtual_secs,
        procs: res.processes_spawned,
    }
}

fn clone_params(smoke: bool) -> CloneParams {
    CloneParams {
        // Reduced images keep a single harness run in seconds while still
        // pushing millions of bytes through the proxy data path. Fixed
        // per mode so trajectory entries stay comparable.
        image_scale: Some(if smoke { 64 } else { 4 }),
        clones: if smoke { 2 } else { 8 },
        ..CloneParams::default()
    }
}

/// Figure 6 / Table 1's parallel clone fleet: the channel-transfer and
/// block-cache hot path under concurrency.
fn fig6_clone(smoke: bool) -> Measure {
    let res = run_parallel_cloning(&clone_params(smoke));
    Measure {
        events: res.events_processed,
        rpc_roundtrips: rpc_roundtrips(&res.snapshot),
        sim_bytes: sim_bytes(&res.snapshot),
        virtual_secs: res.total_virtual_secs,
        procs: res.processes_spawned,
    }
}

/// Table 1's sequential row (cold pass then warm pass on one host).
fn table1_seq(smoke: bool) -> Measure {
    let res = run_sequential_for_table1(&clone_params(smoke));
    Measure {
        events: res.events_processed,
        rpc_roundtrips: rpc_roundtrips(&res.snapshot),
        sim_bytes: sim_bytes(&res.snapshot),
        virtual_secs: res.total_virtual_secs,
        procs: res.processes_spawned,
    }
}

/// Pure engine churn: no RPC, no links — many processes sleeping and
/// yielding. Isolates raw scheduler throughput from protocol work.
fn simnet_churn(smoke: bool) -> Measure {
    let (procs, iters) = if smoke {
        (16u64, 2_000u64)
    } else {
        (32u64, 4_000u64)
    };
    let sim = Simulation::new();
    let h = sim.handle();
    for p in 0..procs {
        sim.spawn(format!("churn{p}"), move |env: Env| {
            let mut s = p + 1;
            for _ in 0..iters {
                s = simnet::splitmix64(s);
                env.sleep(SimDuration::from_micros(1 + s % 128));
                env.yield_now();
            }
        });
    }
    let end = sim.run();
    Measure {
        events: h.events_processed(),
        rpc_roundtrips: 0,
        sim_bytes: 0,
        virtual_secs: end.as_secs_f64(),
        procs: h.processes_spawned(),
    }
}

// ---------------------------------------------------------------------------
// Measurement

/// Run `f` once, returning its result and the wall seconds it took.
fn wall_time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // lint:allow(determinism): wall-clock measurement is this harness's entire purpose
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Context switches this process has accumulated, summed over all live
/// threads from `/proc/self/task/*/status` (voluntary, nonvoluntary).
/// `/proc/self/status` alone only covers the main thread, which mostly
/// parks while simulation worker threads hand the baton around — the
/// per-task sum is what tracks scheduler pressure. Diagnostics only;
/// zero where unsupported, and an undercount if threads exited between
/// scenarios (the simulations here keep their worker pools alive until
/// the run ends, so deltas taken around a run are accurate).
fn ctx_switches() -> (u64, u64) {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return (0, 0);
    };
    let (mut vol, mut nonvol) = (0u64, 0u64);
    for task in tasks.flatten() {
        let Ok(status) = std::fs::read_to_string(task.path().join("status")) else {
            continue; // thread exited mid-scan
        };
        let field = |key: &str| {
            status
                .lines()
                .find(|l| l.starts_with(key))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0u64)
        };
        vol += field("voluntary_ctxt_switches:");
        nonvol += field("nonvoluntary_ctxt_switches:");
    }
    (vol, nonvol)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Measure one scenario `runs` times; enforce virtual-time determinism
/// across repeats; return its JSON entry.
fn measure(name: &str, runs: usize, f: impl Fn() -> Measure) -> JsonValue {
    eprintln!("perf: running {name} ({runs} repeats)...");
    let mut walls = Vec::with_capacity(runs);
    let mut first: Option<Measure> = None;
    for i in 0..runs {
        let (vol0, nonvol0) = ctx_switches();
        let (m, wall) = wall_time(&f);
        let (vol1, nonvol1) = ctx_switches();
        eprintln!(
            "perf:   run {}/{}: {:.3}s wall, {} events, {} rpc, {} sim bytes, {} procs, ctxsw +{}v/+{}nv",
            i + 1,
            runs,
            wall,
            m.events,
            m.rpc_roundtrips,
            m.sim_bytes,
            m.procs,
            vol1.saturating_sub(vol0),
            nonvol1.saturating_sub(nonvol0)
        );
        match &first {
            None => first = Some(m),
            Some(prev) if *prev != m => {
                eprintln!(
                    "perf: DETERMINISM ERROR in {name}: run {} produced {m:?}, run 1 produced {prev:?}",
                    i + 1
                );
                std::process::exit(3);
            }
            Some(_) => {}
        }
        walls.push(wall);
    }
    let m = first.expect("runs >= 1");
    let med = median(&mut walls);
    JsonValue::object([
        ("name", JsonValue::Str(name.to_string())),
        ("wall_secs_median", JsonValue::Float(med)),
        (
            "wall_secs_all",
            JsonValue::Array(walls.iter().map(|w| JsonValue::Float(*w)).collect()),
        ),
        ("virtual_secs", JsonValue::Float(m.virtual_secs)),
        ("events_processed", JsonValue::Uint(m.events)),
        ("rpc_roundtrips", JsonValue::Uint(m.rpc_roundtrips)),
        ("sim_bytes", JsonValue::Uint(m.sim_bytes)),
        ("events_per_sec", JsonValue::Float(m.events as f64 / med)),
        (
            "rpc_roundtrips_per_sec",
            JsonValue::Float(m.rpc_roundtrips as f64 / med),
        ),
        (
            "sim_bytes_per_sec",
            JsonValue::Float(m.sim_bytes as f64 / med),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (the repo's JsonValue only prints). Only needs to
// read files this harness wrote: objects, arrays, strings, numbers.

struct JsonReader<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> JsonReader<'a> {
    fn parse(text: &'a str) -> Result<JsonValue, String> {
        let mut r = JsonReader {
            s: text.as_bytes(),
            pos: 0,
        };
        let v = r.value()?;
        r.skip_ws();
        if r.pos != r.s.len() {
            return Err(format!("trailing bytes at offset {}", r.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                c => return Err(format!("expected ',' or '}}', got '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                c => return Err(format!("expected ',' or ']', got '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.s.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-assemble multi-byte UTF-8 sequences verbatim.
                    let start = self.pos - 1;
                    while self.pos < self.s.len() && self.s[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.s[start..self.pos])
                            .map_err(|_| "invalid utf-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len()
            && matches!(
                self.s[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).map_err(|_| "bad number")?;
        if text.is_empty() {
            return Err(format!("expected a value at offset {start}"));
        }
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::Uint(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

// ---------------------------------------------------------------------------
// Schema validation

const SCHEMA: &str = "gvfs.perf.v1";
const SCENARIO_NAMES: [&str; 4] = ["fig4_flush", "fig6_clone", "table1_seq", "simnet_churn"];
const SCENARIO_NUMBER_FIELDS: [&str; 7] = [
    "wall_secs_median",
    "virtual_secs",
    "events_processed",
    "rpc_roundtrips",
    "sim_bytes",
    "events_per_sec",
    "rpc_roundtrips_per_sec",
];

fn get<'v>(obj: &'v JsonValue, key: &str) -> Option<&'v JsonValue> {
    match obj {
        JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_number(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Uint(u) => Some(*u as f64),
        JsonValue::Float(f) => Some(*f),
        _ => None,
    }
}

/// Validate a `gvfs.perf.v1` document; returns every problem found.
fn validate(doc: &JsonValue) -> Vec<String> {
    let mut errs = Vec::new();
    match get(doc, "schema") {
        Some(JsonValue::Str(s)) if s == SCHEMA => {}
        other => errs.push(format!("schema field must be \"{SCHEMA}\", got {other:?}")),
    }
    let Some(JsonValue::Array(entries)) = get(doc, "trajectory") else {
        errs.push("trajectory must be an array".to_string());
        return errs;
    };
    if entries.is_empty() {
        errs.push("trajectory must not be empty".to_string());
    }
    for (i, entry) in entries.iter().enumerate() {
        if !matches!(get(entry, "label"), Some(JsonValue::Str(_))) {
            errs.push(format!("entry #{i}: missing string label"));
        }
        if !matches!(get(entry, "mode"), Some(JsonValue::Str(_))) {
            errs.push(format!("entry #{i}: missing string mode"));
        }
        if !matches!(get(entry, "runs"), Some(JsonValue::Uint(_))) {
            errs.push(format!("entry #{i}: missing uint runs"));
        }
        let Some(JsonValue::Array(scenarios)) = get(entry, "scenarios") else {
            errs.push(format!("entry #{i}: scenarios must be an array"));
            continue;
        };
        let mut seen = Vec::new();
        for s in scenarios {
            let name = match get(s, "name") {
                Some(JsonValue::Str(n)) => n.clone(),
                _ => {
                    errs.push(format!("entry #{i}: scenario missing name"));
                    continue;
                }
            };
            for field in SCENARIO_NUMBER_FIELDS {
                if get(s, field).and_then(as_number).is_none() {
                    errs.push(format!(
                        "entry #{i} scenario {name}: missing number {field}"
                    ));
                }
            }
            if get(s, "sim_bytes_per_sec").and_then(as_number).is_none() {
                errs.push(format!(
                    "entry #{i} scenario {name}: missing number sim_bytes_per_sec"
                ));
            }
            seen.push(name);
        }
        for want in SCENARIO_NAMES {
            if !seen.iter().any(|n| n == want) {
                errs.push(format!("entry #{i}: scenario {want} missing"));
            }
        }
    }
    errs
}

fn events_per_sec_of(entry: &JsonValue, scenario: &str) -> Option<f64> {
    let JsonValue::Array(scenarios) = get(entry, "scenarios")? else {
        return None;
    };
    scenarios
        .iter()
        .find(|s| matches!(get(s, "name"), Some(JsonValue::Str(n)) if n == scenario))
        .and_then(|s| get(s, "events_per_sec"))
        .and_then(as_number)
}

// ---------------------------------------------------------------------------
// Main

struct Cli {
    smoke: bool,
    runs: Option<usize>,
    json_path: String,
    label: String,
    no_write: bool,
    validate_path: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        smoke: false,
        runs: None,
        json_path: "BENCH_perf.json".to_string(),
        label: "dev".to_string(),
        no_write: false,
        validate_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => cli.smoke = true,
            "--no-write" => cli.no_write = true,
            "--runs" => {
                cli.runs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--runs requires a positive integer")),
                )
            }
            "--json" => {
                cli.json_path = args
                    .next()
                    .unwrap_or_else(|| usage("--json requires a path"))
            }
            "--label" => {
                cli.label = args
                    .next()
                    .unwrap_or_else(|| usage("--label requires a value"))
            }
            "--validate" => {
                cli.validate_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--validate requires a path")),
                )
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    cli
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("perf: {err}");
    }
    eprintln!(
        "usage: perf [--smoke] [--runs N] [--json PATH] [--label NAME] [--no-write]\n       perf --validate PATH"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let cli = parse_cli();

    if let Some(path) = &cli.validate_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf: cannot read {path}: {e}");
            std::process::exit(1);
        });
        let doc = JsonReader::parse(&text).unwrap_or_else(|e| {
            eprintln!("perf: {path} is not valid JSON: {e}");
            std::process::exit(1);
        });
        let errs = validate(&doc);
        if errs.is_empty() {
            println!("perf: {path} conforms to {SCHEMA}");
            return;
        }
        for e in &errs {
            eprintln!("perf: {path}: {e}");
        }
        std::process::exit(1);
    }

    let runs = cli.runs.unwrap_or(if cli.smoke { 2 } else { 3 });
    if runs == 0 {
        usage("--runs must be >= 1");
    }
    let mode = if cli.smoke { "smoke" } else { "full" };
    eprintln!("perf: mode={mode} runs={runs} label={}", cli.label);

    let smoke = cli.smoke;
    let scenarios = vec![
        measure("fig4_flush", runs, || fig4_flush(smoke)),
        measure("fig6_clone", runs, || fig6_clone(smoke)),
        measure("table1_seq", runs, || table1_seq(smoke)),
        measure("simnet_churn", runs, || simnet_churn(smoke)),
    ];

    println!("\nWall-clock throughput (median of {runs} runs, {mode} mode):\n");
    println!(
        "{:<14} {:>12} {:>14} {:>16} {:>18}",
        "scenario", "wall secs", "events/sec", "rpc rt/sec", "sim bytes/sec"
    );
    for s in &scenarios {
        let name = match get(s, "name") {
            Some(JsonValue::Str(n)) => n.clone(),
            _ => unreachable!("scenario entries always carry a name"),
        };
        let num = |k: &str| get(s, k).and_then(as_number).unwrap_or(0.0);
        println!(
            "{:<14} {:>12.3} {:>14.0} {:>16.0} {:>18.0}",
            name,
            num("wall_secs_median"),
            num("events_per_sec"),
            num("rpc_roundtrips_per_sec"),
            num("sim_bytes_per_sec")
        );
    }

    let entry = JsonValue::object([
        ("label", JsonValue::Str(cli.label.clone())),
        ("mode", JsonValue::Str(mode.to_string())),
        ("runs", JsonValue::Uint(runs as u64)),
        ("scenarios", JsonValue::Array(scenarios)),
    ]);

    if cli.no_write {
        return;
    }

    // Append to (or create) the trajectory file, then re-validate it.
    let mut trajectory = match std::fs::read_to_string(&cli.json_path) {
        Ok(text) => match JsonReader::parse(&text) {
            Ok(doc) => match get(&doc, "trajectory") {
                Some(JsonValue::Array(entries)) => entries.clone(),
                _ => {
                    eprintln!(
                        "perf: {} has no trajectory array; refusing to overwrite",
                        cli.json_path
                    );
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!(
                    "perf: {} is not valid JSON ({e}); refusing to overwrite",
                    cli.json_path
                );
                std::process::exit(1);
            }
        },
        Err(_) => Vec::new(),
    };
    // Comparing against the first entry of the same mode shows the
    // trajectory's cumulative effect (e.g. pre- vs post-optimization).
    if let Some(first) = trajectory
        .iter()
        .find(|e| matches!(get(e, "mode"), Some(JsonValue::Str(m)) if m == mode))
    {
        for name in SCENARIO_NAMES {
            if let (Some(base), Some(now)) = (
                events_per_sec_of(first, name),
                events_per_sec_of(&entry, name),
            ) {
                if base > 0.0 {
                    println!(
                        "{name}: {:.2}x events/sec vs first {mode} entry",
                        now / base
                    );
                }
            }
        }
    }
    trajectory.push(entry);
    let doc = JsonValue::object([
        ("schema", JsonValue::Str(SCHEMA.to_string())),
        ("trajectory", JsonValue::Array(trajectory)),
    ]);
    let errs = validate(&doc);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("perf: generated document failed validation: {e}");
        }
        std::process::exit(1);
    }
    std::fs::write(&cli.json_path, format!("{doc}\n")).unwrap_or_else(|e| {
        eprintln!("perf: cannot write {}: {e}", cli.json_path);
        std::process::exit(1);
    });
    eprintln!("perf: appended entry '{}' to {}", cli.label, cli.json_path);
}
