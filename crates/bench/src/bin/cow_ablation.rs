//! CoW ablation — the CI guard for copy-on-write golden-snapshot
//! cloning (DESIGN.md §5.9):
//!
//! 1. runs reduced-scale cloning probes (WAN-S1 warm repeat, Fig 6
//!    WAN-S2 / WAN-S3) with CoW reference cloning on and off — dedup on
//!    in *both* lanes, so the comparison isolates the reference-file
//!    install path from the CAS itself,
//! 2. reports the timings and `cow.*` counters side by side, and
//!    enforces the warm-site contract: the Fig 6 S2 clone-latency sum
//!    with CoW on must be at least 40% below the `CowTuning::off()`
//!    lane,
//! 3. compares every `CowTuning::off()` timing bit-for-bit
//!    (`f64::to_bits`) against the committed baseline
//!    `reports/cow_off_baseline.txt` and fails if any diverges — the
//!    executable proof that the off() path still reproduces the
//!    materialized-install data paths exactly.
//!
//! `--write-baseline` regenerates the baseline file (use only when an
//! intentional change to the non-CoW paths shifts the numbers).

use std::path::PathBuf;

use gvfs::CowTuning;
use gvfs_bench::report::{render_table, scenario_report, write_report};
use gvfs_bench::{run_cloning, CloneParams, CloneResult, CloneScenario};

const BASELINE_PATH: &str = "reports/cow_off_baseline.txt";

/// Minimum saving CoW must buy on the Fig 6 S2 probe's clone-latency
/// sum (the warm-site acceptance bar).
const S2_MIN_SAVING_PCT: f64 = 40.0;

struct Probe {
    name: &'static str,
    scenario: CloneScenario,
    clones: usize,
    image_scale: u64,
}

/// Reduced-scale probes: small enough for CI, large enough that the
/// reference-install, CoW-break and diverged-flush paths all carry real
/// traffic. S1's repeats are the warmest case (same image over and
/// over); S2's sibling images share all but ~4% of their content, so
/// later clones install as near-complete recipes; S3 adds the LAN
/// second-level proxy in front.
const PROBES: &[Probe] = &[
    Probe {
        name: "fig6-s1",
        scenario: CloneScenario::WanS1,
        clones: 4,
        image_scale: 8,
    },
    Probe {
        name: "fig6-s2",
        scenario: CloneScenario::WanS2,
        clones: 4,
        image_scale: 8,
    },
    Probe {
        name: "fig6-s3",
        scenario: CloneScenario::WanS3,
        clones: 4,
        image_scale: 8,
    },
];

/// Sum of per-clone end-to-end latencies (the figure's headline).
fn latency_sum(res: &CloneResult) -> f64 {
    res.times.iter().map(|t| t.total.as_secs_f64()).sum()
}

fn main() {
    let mut json_path = Some(PathBuf::from("reports/cow_ablation.json"));
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--write-baseline" => write_baseline = true,
            "--no-json" => json_path = None,
            "--json" => {
                let p = args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                });
                json_path = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                eprintln!("usage: cow_ablation [--json PATH] [--no-json] [--write-baseline]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    println!("CoW ablation: copy-on-write reference cloning on/off (dedup on in both lanes)\n");
    let mut rows = Vec::new();
    let mut scenarios = Vec::new();
    let mut off_bits = Vec::new();
    let mut s2_saving = None;
    for p in PROBES {
        let mut sums = [0.0f64; 2];
        for (slot, enabled) in [(0usize, false), (1usize, true)] {
            // VMM CPU terms scale with the image (as in the fleet
            // scenario): at 1/8 size an unscaled 9 s compute floor
            // would bury the data path this ablation measures.
            let scaled = |full: simnet::SimDuration| {
                simnet::SimDuration::from_nanos(full.as_nanos() / p.image_scale)
            };
            let params = CloneParams {
                clones: p.clones,
                image_scale: Some(p.image_scale),
                device_cpu: scaled(simnet::SimDuration::from_secs(6)),
                configure_cpu: scaled(simnet::SimDuration::from_secs(3)),
                cow: if enabled {
                    CowTuning::on()
                } else {
                    CowTuning::off()
                },
                ..CloneParams::default()
            };
            let res = run_cloning(p.scenario, &params);
            sums[slot] = latency_sum(&res);
            let label = format!("{} cow={}", p.name, if enabled { "on" } else { "off" });
            scenarios.push(scenario_report(
                &label,
                res.total_virtual_secs,
                &res.snapshot,
            ));
            if enabled {
                let installs = res.snapshot.counter_sum("gvfs", ".cow.ref_installs");
                let pin_blocked = res
                    .snapshot
                    .counter_sum("gvfs", ".cas.pin_blocked_evictions");
                let saving = (1.0 - sums[1] / sums[0]) * 100.0;
                if p.name == "fig6-s2" {
                    s2_saving = Some(saving);
                }
                rows.push(vec![
                    p.name.to_string(),
                    format!("{:.3}", sums[0]),
                    format!("{:.3}", sums[1]),
                    format!("{saving:.1}%"),
                    format!("{installs}"),
                    format!("{pin_blocked}"),
                ]);
            } else {
                off_bits.push((p.name, res.total_virtual_secs));
            }
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "Probe",
                "off Σ (s)",
                "on Σ (s)",
                "saved",
                "ref installs",
                "pin-blocked"
            ],
            &rows,
        )
    );
    if let Some(path) = &json_path {
        write_report(path, "cow_ablation", scenarios);
    }

    let rendered: String = off_bits
        .iter()
        .map(|(name, secs)| format!("{name} {:016x}\n", secs.to_bits()))
        .collect();
    if write_baseline {
        if let Some(parent) = std::path::Path::new(BASELINE_PATH).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(BASELINE_PATH, &rendered).expect("write baseline");
        println!("baseline: wrote {BASELINE_PATH}");
        return;
    }

    let mut failed = false;
    match s2_saving {
        Some(saving) if saving >= S2_MIN_SAVING_PCT => {
            println!("warm-site bar: fig6-s2 clone-latency sum {saving:.1}% lower with CoW (>= {S2_MIN_SAVING_PCT:.0}%)");
        }
        Some(saving) => {
            eprintln!(
                "warm-site bar FAILED: fig6-s2 clone-latency sum only {saving:.1}% lower with \
                 CoW (bar: {S2_MIN_SAVING_PCT:.0}%)"
            );
            failed = true;
        }
        None => {
            eprintln!("warm-site bar FAILED: fig6-s2 probe missing");
            failed = true;
        }
    }

    match std::fs::read_to_string(BASELINE_PATH) {
        Ok(committed) => {
            if committed == rendered {
                println!("baseline: CowTuning::off() matches {BASELINE_PATH} bit-for-bit");
            } else {
                eprintln!(
                    "baseline MISMATCH: CowTuning::off() no longer reproduces the \
                     committed numbers.\n--- committed\n{committed}--- measured\n{rendered}\
                     If the change to the non-CoW paths is intentional, rerun with \
                     --write-baseline and commit the result."
                );
                failed = true;
            }
        }
        Err(e) => {
            eprintln!(
                "baseline: cannot read {BASELINE_PATH} ({e}); run with --write-baseline first"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
