//! fleet — fleet-scale cloning under seeded arrival load (DESIGN.md §5.8).
//!
//! Drives hundreds of clone requests through a sharded proxy tree
//! (origin → per-site shard proxies → per-host client proxies) with
//! Poisson and bursty on/off arrivals, and reports p50/p95/p99 clone
//! latency, origin WAN utilization, per-shard queue depth, and the
//! achieved `FETCH_BLOBS_BATCH` coalescing — with the batching ablation
//! (`FleetTuning::off()`) and the dedup ablation run side by side.
//!
//! ```text
//! cargo run -p gvfs-bench --release --bin fleet              # 512 clones, 4 sites
//! cargo run -p gvfs-bench --release --bin fleet -- --smoke   # 64 clones, 2 sites
//! cargo run -p gvfs-bench --release --bin fleet -- --bench   # wall-clock harness
//! ```
//!
//! The default run writes `reports/fleet.json`; the report is a pure
//! function of the seeds, so CI replays it and compares bytes (including
//! under `--sched-chaos`). `--bench` instead measures host throughput
//! (a 1000-process engine churn, a smoke fleet run, and the 10,240-clone
//! `fleet_10k` scenario) and appends to the committed `BENCH_fleet.json`
//! trajectory (schema `gvfs.fleet-perf.v1`, checked by `perf
//! --validate`); it requires an explicit per-PR `--label`.
//!
//! `--ten-k` runs the diurnal 10,240-clone / 16-site / 4-region fleet
//! twice — digest gossip on and off — writes `reports/fleet10k.json`,
//! and enforces the scenario's two contracts via the exit code: gossip
//! must cut cold-region WAN-down bytes by at least 40%, and each lane
//! must finish inside the printed wall-clock budget.

use gvfs::{CowTuning, DedupTuning, FleetTuning};
use gvfs_bench::fleet::{run_fleet, ArrivalMode, FleetParams, FleetResult};
use gvfs_bench::perfjson::{
    append_trajectory, get, measure, rpc_roundtrips, sim_bytes, wall_time, Measure, FLEET_SCHEMA,
};
use gvfs_bench::report::{render_table, scenario_report, write_report};
use simnet::{Env, JsonValue, SimDuration, Simulation};

struct Cli {
    smoke: bool,
    json_path: Option<String>,
    trace: bool,
    seed: Option<u64>,
    rate: Option<f64>,
    clones: Option<usize>,
    bench: bool,
    bench_json: String,
    runs: usize,
    label: Option<String>,
    ten_k: bool,
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("fleet: {err}");
    }
    eprintln!(
        "usage: fleet [--smoke] [--json PATH] [--no-json] [--trace] [--seed N] [--rate R]\n             [--clones N] [--sched-chaos SEED]\n       fleet --ten-k [--clones N] [--seed N] [--json PATH] [--no-json]\n       fleet --bench --label NAME [--runs N] [--bench-json PATH]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        smoke: false,
        json_path: Some("reports/fleet.json".to_string()),
        trace: false,
        seed: None,
        rate: None,
        clones: None,
        bench: false,
        bench_json: "BENCH_fleet.json".to_string(),
        runs: 2,
        label: None,
        ten_k: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => cli.smoke = true,
            "--trace" => cli.trace = true,
            "--no-json" => cli.json_path = None,
            "--bench" => cli.bench = true,
            "--ten-k" => cli.ten_k = true,
            "--json" => {
                cli.json_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--json requires a path")),
                )
            }
            "--bench-json" => {
                cli.bench_json = args
                    .next()
                    .unwrap_or_else(|| usage("--bench-json requires a path"))
            }
            "--seed" => {
                cli.seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed requires a u64")),
                )
            }
            "--rate" => {
                cli.rate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--rate requires a float")),
                )
            }
            "--clones" => {
                cli.clones = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--clones requires a positive integer")),
                )
            }
            "--runs" => {
                cli.runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--runs requires a positive integer"))
            }
            "--label" => {
                cli.label = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--label requires a value")),
                )
            }
            "--sched-chaos" => {
                let seed: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--sched-chaos requires a u64 seed"));
                // Install process-wide so every Simulation::new() in
                // library code runs under the adversarial schedule. The
                // report must stay byte-identical (DESIGN.md §5.7).
                simnet::set_default_sched_policy(simnet::SchedPolicy::chaos(seed));
                eprintln!("fleet: schedule-chaos policy active (seed {seed})");
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    cli
}

/// The scenario's report slice: the standard snapshot-derived body plus
/// a `fleet` object with the latency percentiles and fleet telemetry.
fn fleet_json(label: &str, r: &FleetResult) -> JsonValue {
    let base = scenario_report(label, r.total_virtual_secs, &r.snapshot);
    let JsonValue::Object(mut fields) = base else {
        unreachable!("scenario_report returns an object");
    };
    fields.push((
        "fleet".to_string(),
        JsonValue::object([
            ("clones", JsonValue::Uint(r.latency.count)),
            ("p50_secs", JsonValue::Float(r.latency.p50_secs)),
            ("p95_secs", JsonValue::Float(r.latency.p95_secs)),
            ("p99_secs", JsonValue::Float(r.latency.p99_secs)),
            ("mean_secs", JsonValue::Float(r.latency.mean_secs)),
            ("max_secs", JsonValue::Float(r.latency.max_secs)),
            (
                "shard_queue_high_water",
                JsonValue::Array(
                    r.shard_queue_high_water
                        .iter()
                        .map(|w| JsonValue::Uint(*w))
                        .collect(),
                ),
            ),
            (
                "wan_down_utilization",
                JsonValue::Float(r.wan_down_utilization),
            ),
            ("wan_up_utilization", JsonValue::Float(r.wan_up_utilization)),
            ("batches", JsonValue::Uint(r.batches)),
            ("batched_items", JsonValue::Uint(r.batched_items)),
        ]),
    ));
    JsonValue::Object(fields)
}

/// 1000 concurrent processes of pure engine churn: the fleet-scale
/// scheduler-throughput floor (the PR 6 fig6 events/sec number is the
/// regression bar).
fn churn_1000() -> Measure {
    let sim = Simulation::new();
    let h = sim.handle();
    for p in 0..1000u64 {
        sim.spawn(format!("churn{p}"), move |env: Env| {
            let mut s = p + 1;
            for _ in 0..1_000 {
                s = simnet::splitmix64(s);
                env.sleep(SimDuration::from_micros(1 + s % 128));
                env.yield_now();
            }
        });
    }
    let end = sim.run();
    Measure {
        events: h.events_processed(),
        rpc_roundtrips: 0,
        sim_bytes: 0,
        virtual_secs: end.as_secs_f64(),
        procs: h.processes_spawned(),
    }
}

fn fleet_smoke() -> Measure {
    let r = run_fleet(&FleetParams::smoke());
    Measure {
        events: r.events_processed,
        rpc_roundtrips: rpc_roundtrips(&r.snapshot),
        sim_bytes: sim_bytes(&r.snapshot),
        virtual_secs: r.total_virtual_secs,
        procs: r.processes_spawned,
    }
}

/// The full 10,240-clone diurnal fleet with gossip on — the scenario the
/// `--ten-k` report mode gates on, measured here for the trajectory.
/// Single run: one lane takes minutes of wall time, and the report is a
/// pure function of the seed anyway.
fn fleet_10k() -> Measure {
    let r = run_fleet(&FleetParams::ten_k());
    Measure {
        events: r.events_processed,
        rpc_roundtrips: rpc_roundtrips(&r.snapshot),
        sim_bytes: sim_bytes(&r.snapshot),
        virtual_secs: r.total_virtual_secs,
        procs: r.processes_spawned,
    }
}

fn run_bench(cli: &Cli) {
    if cli.runs == 0 {
        usage("--runs must be >= 1");
    }
    // Trajectory hygiene: entries carry a per-PR label ("pr8-batched",
    // "pr10-wheel", ...) so the history reads as a sequence of changes;
    // `perf --validate` rejects "dev" and duplicates, so demand one up
    // front rather than writing an entry that fails validation.
    let label = cli.label.clone().unwrap_or_else(|| {
        usage("--bench requires --label NAME (a per-PR label like \"pr10-wheel\")")
    });
    let scenarios = vec![
        measure("churn_1000", cli.runs, churn_1000),
        measure("fleet_smoke", cli.runs, fleet_smoke),
        // fleet_10k is an *extra* scenario (not in FLEET_SCENARIOS), so
        // entries from before this scenario existed still validate.
        measure("fleet_10k", 1, fleet_10k),
    ];
    for s in &scenarios {
        let name = match get(s, "name") {
            Some(JsonValue::Str(n)) => n.clone(),
            _ => unreachable!("scenario entries always carry a name"),
        };
        let num = |k: &str| {
            get(s, k)
                .and_then(gvfs_bench::perfjson::as_number)
                .unwrap_or(0.0)
        };
        println!(
            "{:<12} {:>10.3}s wall {:>14.0} events/sec {:>16.0} sim bytes/sec",
            name,
            num("wall_secs_median"),
            num("events_per_sec"),
            num("sim_bytes_per_sec")
        );
    }
    let entry = JsonValue::object([
        ("label", JsonValue::Str(label)),
        ("mode", JsonValue::Str("bench".to_string())),
        ("runs", JsonValue::Uint(cli.runs as u64)),
        ("scenarios", JsonValue::Array(scenarios)),
    ]);
    append_trajectory(&cli.bench_json, FLEET_SCHEMA, entry);
}

/// Wall-clock budget for one 10,240-clone lane on the CI host. The
/// budget is part of the scenario's contract — a run that no longer
/// fits means the engine or the fleet wiring regressed — and is printed
/// alongside the measured wall time so the report shows the headroom.
const TEN_K_WALL_BUDGET_SECS: f64 = 300.0;

/// Minimum WAN-down-bytes reduction digest gossip must buy over the
/// gossip-off ablation on the identical arrival schedule. Cold golden
/// chunks should cross the WAN roughly once per 4-site *region* instead
/// of once per site, so well over half the cold bytes are avoidable;
/// 40% leaves slack for chunks that arrive before gossip propagates.
const TEN_K_WAN_REDUCTION_PCT: f64 = 40.0;

/// The ten-k report slice: the standard fleet body plus a `wan` object
/// with the absolute byte counts the gossip gate is computed from.
/// (Kept out of `fleet_json` so `reports/fleet.json` stays byte-stable.)
fn ten_k_json(label: &str, r: &FleetResult, sites: usize) -> JsonValue {
    let base = fleet_json(label, r);
    let JsonValue::Object(mut fields) = base else {
        unreachable!("fleet_json returns an object");
    };
    fields.push((
        "wan".to_string(),
        JsonValue::object([
            ("down_bytes", JsonValue::Uint(r.wan_down_bytes)),
            (
                "down_bytes_per_site",
                JsonValue::Uint(r.wan_down_bytes / sites.max(1) as u64),
            ),
            ("gossip_peer_hits", JsonValue::Uint(r.gossip_peer_hits)),
            ("gossip_peer_bytes", JsonValue::Uint(r.gossip_peer_bytes)),
        ]),
    ));
    JsonValue::Object(fields)
}

/// The 10,240-clone scenario: gossip-off ablation and gossip-on lane on
/// the identical diurnal arrival schedule, gated on WAN reduction and
/// wall-clock budget.
fn run_ten_k(cli: &Cli) {
    let mut base = FleetParams::ten_k();
    if let Some(seed) = cli.seed {
        base.seed = seed;
    }
    if let Some(rate) = cli.rate {
        base.rate_per_sec = rate;
    }
    if let Some(clones) = cli.clones {
        base.clones = clones;
    }
    base.trace = cli.trace;

    // Ablation first: same params, gossip disabled (PR 8/9 shard tuning).
    let lanes: Vec<(&str, FleetParams)> = vec![
        (
            "fleet10k-nogossip",
            FleetParams {
                fleet: FleetTuning::shard(),
                ..base
            },
        ),
        ("fleet10k-gossip", base),
    ];

    let mut rows = Vec::new();
    let mut report = Vec::new();
    let mut results: Vec<(&str, FleetResult, f64)> = Vec::new();
    for (label, params) in lanes {
        eprintln!(
            "fleet: {label} ({} clones, {} sites / {} regions, seed {:#x})...",
            params.clones, params.sites, params.regions, params.seed
        );
        let (r, wall) = wall_time(|| run_fleet(&params));
        rows.push(vec![
            label.to_string(),
            format!("{}", r.latency.count),
            format!("{:.2}", r.latency.p50_secs),
            format!("{:.2}", r.latency.p95_secs),
            format!("{:.2}", r.latency.p99_secs),
            format!("{:.1}", r.wan_down_bytes as f64 / (1u64 << 20) as f64),
            format!(
                "{:.1}",
                r.wan_down_bytes as f64 / params.sites.max(1) as f64 / (1u64 << 20) as f64
            ),
            format!("{}", r.gossip_peer_hits),
            format!("{:.1}s", wall),
        ]);
        report.push(ten_k_json(label, &r, params.sites));
        results.push((label, r, wall));
    }

    println!(
        "\n10k fleet ({} clones, {} sites, {} regions, {} users, diurnal peak {}/s):\n",
        base.clones, base.sites, base.regions, base.users, base.rate_per_sec
    );
    print!(
        "{}",
        render_table(
            &[
                "scenario",
                "clones",
                "p50 s",
                "p95 s",
                "p99 s",
                "wan MiB",
                "MiB/site",
                "peer hits",
                "wall"
            ],
            &rows
        )
    );

    let mut failed = false;
    let (off, on) = (&results[0], &results[1]);
    if off.1.wan_down_bytes > 0 {
        let lower = (1.0 - on.1.wan_down_bytes as f64 / off.1.wan_down_bytes as f64) * 100.0;
        println!(
            "\nwan-down bytes: {} with gossip vs {} without ({lower:.0}% lower; gate >= {TEN_K_WAN_REDUCTION_PCT:.0}%)",
            on.1.wan_down_bytes, off.1.wan_down_bytes
        );
        println!(
            "gossip served {} peer fetches ({} bytes) inside regions",
            on.1.gossip_peer_hits, on.1.gossip_peer_bytes
        );
        if lower < TEN_K_WAN_REDUCTION_PCT {
            eprintln!(
                "fleet: FAIL — gossip WAN reduction {lower:.0}% below the {TEN_K_WAN_REDUCTION_PCT:.0}% gate"
            );
            failed = true;
        }
    }
    for (label, _, wall) in &results {
        println!("{label}: {wall:.1}s wall (budget {TEN_K_WALL_BUDGET_SECS:.0}s)");
        if *wall > TEN_K_WALL_BUDGET_SECS {
            eprintln!(
                "fleet: FAIL — {label} exceeded the {TEN_K_WALL_BUDGET_SECS:.0}s wall budget"
            );
            failed = true;
        }
    }

    if let Some(path) = &cli.json_path {
        write_report(std::path::Path::new(path), "fleet10k", report);
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let mut cli = parse_cli();
    if cli.bench {
        run_bench(&cli);
        return;
    }
    if cli.ten_k {
        // The ten-k report gets its own file unless --json overrode the
        // default, so the 512-clone report CI byte-compares is untouched.
        if cli.json_path.as_deref() == Some("reports/fleet.json") {
            cli.json_path = Some("reports/fleet10k.json".to_string());
        }
        run_ten_k(&cli);
        return;
    }

    let mut base = if cli.smoke {
        FleetParams::smoke()
    } else {
        FleetParams::default()
    };
    if let Some(seed) = cli.seed {
        base.seed = seed;
    }
    if let Some(rate) = cli.rate {
        base.rate_per_sec = rate;
    }
    if let Some(clones) = cli.clones {
        base.clones = clones;
    }
    base.trace = cli.trace;

    // Arrival modes × batching, plus the dedup ablation (with dedup off
    // the client proxies never speak the channel's digest protocol, so
    // there is nothing for the shard tier to batch — FleetTuning::off()
    // is the only meaningful pairing). The batching lanes run with CoW
    // off: they measure the *cold* fleet, and the ≥30% p99 bar below is
    // only meaningful on cold WAN traffic. The `-cow` lanes are the
    // warm-site scenario — golden content prestaged per site, clones
    // installing as reference files — compared against their cow-off
    // twins on the same arrival schedule.
    let matrix: Vec<(&str, ArrivalMode, FleetTuning, DedupTuning, CowTuning)> = vec![
        (
            "fleet-poisson-batch",
            ArrivalMode::Poisson,
            FleetTuning::shard(),
            base.dedup,
            CowTuning::off(),
        ),
        (
            "fleet-poisson-nobatch",
            ArrivalMode::Poisson,
            FleetTuning::off(),
            base.dedup,
            CowTuning::off(),
        ),
        (
            "fleet-bursty-batch",
            ArrivalMode::Bursty,
            FleetTuning::shard(),
            base.dedup,
            CowTuning::off(),
        ),
        (
            "fleet-bursty-nobatch",
            ArrivalMode::Bursty,
            FleetTuning::off(),
            base.dedup,
            CowTuning::off(),
        ),
        (
            "fleet-poisson-nodedup",
            ArrivalMode::Poisson,
            FleetTuning::off(),
            DedupTuning::off(),
            CowTuning::off(),
        ),
        (
            "fleet-poisson-cow",
            ArrivalMode::Poisson,
            FleetTuning::shard(),
            base.dedup,
            CowTuning::on(),
        ),
        (
            "fleet-bursty-cow",
            ArrivalMode::Bursty,
            FleetTuning::shard(),
            base.dedup,
            CowTuning::on(),
        ),
    ];

    let mut rows = Vec::new();
    let mut report = Vec::new();
    let mut results: Vec<(&str, FleetResult)> = Vec::new();
    for (label, arrival, fleet, dedup, cow) in matrix {
        eprintln!(
            "fleet: {label} ({} clones, {} sites, seed {:#x})...",
            base.clones, base.sites, base.seed
        );
        let params = FleetParams {
            arrival,
            fleet,
            dedup,
            cow,
            ..base
        };
        let r = run_fleet(&params);
        rows.push(vec![
            label.to_string(),
            format!("{}", r.latency.count),
            format!("{:.2}", r.latency.p50_secs),
            format!("{:.2}", r.latency.p95_secs),
            format!("{:.2}", r.latency.p99_secs),
            format!("{:.2}", r.latency.max_secs),
            format!("{:.1}%", r.wan_down_utilization * 100.0),
            format!("{}", r.shard_queue_high_water.iter().max().unwrap_or(&0)),
            format!("{}", r.batches),
        ]);
        report.push(fleet_json(label, &r));
        results.push((label, r));
    }

    println!(
        "\nFleet cloning latency ({} clones, {} sites, {} hosts/site, rate {}/s):\n",
        base.clones, base.sites, base.hosts_per_site, base.rate_per_sec
    );
    print!(
        "{}",
        render_table(
            &[
                "scenario", "clones", "p50 s", "p95 s", "p99 s", "max s", "wan dn", "shard q",
                "batches"
            ],
            &rows
        )
    );

    let p99 = |label: &str| {
        results
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, r)| r.latency.p99_secs)
    };
    let mut ablation_failed = false;
    for (on, off, mode) in [
        ("fleet-poisson-batch", "fleet-poisson-nobatch", "poisson"),
        ("fleet-bursty-batch", "fleet-bursty-nobatch", "bursty"),
    ] {
        if let (Some(b), Some(n)) = (p99(on), p99(off)) {
            if n > 0.0 {
                let lower = (1.0 - b / n) * 100.0;
                println!(
                    "\n{mode}: p99 with batching {b:.2}s vs {n:.2}s without ({lower:.0}% lower)"
                );
                // The scenario's contract: envelope coalescing must buy
                // at least 30% of the p99 tail on the same arrival
                // schedule, or the batching path has regressed.
                if lower < 30.0 {
                    eprintln!(
                        "fleet: FAIL — {mode} batching ablation below the 30% p99 bar ({lower:.0}%)"
                    );
                    ablation_failed = true;
                }
            }
        }
    }

    // CoW contract: a warm site cloning through reference files must
    // beat the same arrival schedule's cold batched run at the tail.
    for (cow, cold, mode) in [
        ("fleet-poisson-cow", "fleet-poisson-batch", "poisson"),
        ("fleet-bursty-cow", "fleet-bursty-batch", "bursty"),
    ] {
        if let (Some(c), Some(b)) = (p99(cow), p99(cold)) {
            if b > 0.0 {
                let lower = (1.0 - c / b) * 100.0;
                println!(
                    "{mode}: p99 warm-site CoW {c:.2}s vs cold batched {b:.2}s ({lower:.0}% lower)"
                );
                if c >= b {
                    eprintln!(
                        "fleet: FAIL — {mode} warm-site CoW p99 does not beat the cold batched run"
                    );
                    ablation_failed = true;
                }
            }
        }
    }

    if let Some(path) = &cli.json_path {
        write_report(std::path::Path::new(path), "fleet", report);
    }
    if ablation_failed {
        std::process::exit(1);
    }
}
