//! Dedup ablation — the CI guard for content-addressed redundancy
//! elimination (DESIGN.md §5.5):
//!
//! 1. runs the channel ablation (one WAN-S1 cloning) and reduced-scale
//!    Fig 6 WAN-S2 / WAN-S3 probes with dedup on and off,
//! 2. reports the timings and `dedup.*` counters side by side,
//! 3. compares every `DedupTuning::off()` timing bit-for-bit
//!    (`f64::to_bits`) against the committed baseline
//!    `reports/dedup_off_baseline.txt` and fails if any diverges —
//!    the executable proof that the off() path still reproduces the
//!    pre-CAS data paths exactly.
//!
//! `--write-baseline` regenerates the baseline file (use only when an
//! intentional change to the non-dedup paths shifts the numbers).

use std::path::PathBuf;

use gvfs::DedupTuning;
use gvfs_bench::report::{render_table, scenario_report, write_report};
use gvfs_bench::{run_cloning, CloneParams, CloneScenario};

const BASELINE_PATH: &str = "reports/dedup_off_baseline.txt";

struct Probe {
    name: &'static str,
    scenario: CloneScenario,
    clones: usize,
    image_scale: u64,
}

/// Reduced-scale probes: small enough for CI, large enough that the
/// recipe, blob and LAN-share paths all carry real traffic.
const PROBES: &[Probe] = &[
    Probe {
        name: "channel-s1x1",
        scenario: CloneScenario::WanS1,
        clones: 1,
        image_scale: 4,
    },
    Probe {
        name: "fig6-s2",
        scenario: CloneScenario::WanS2,
        clones: 4,
        image_scale: 8,
    },
    Probe {
        name: "fig6-s3",
        scenario: CloneScenario::WanS3,
        clones: 4,
        image_scale: 8,
    },
];

fn main() {
    let mut json_path = Some(PathBuf::from("reports/dedup_ablation.json"));
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--write-baseline" => write_baseline = true,
            "--no-json" => json_path = None,
            "--json" => {
                let p = args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                });
                json_path = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                eprintln!("usage: dedup_ablation [--json PATH] [--no-json] [--write-baseline]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    println!("Dedup ablation: content-addressed redundancy elimination on/off\n");
    let mut rows = Vec::new();
    let mut scenarios = Vec::new();
    let mut off_bits = Vec::new();
    for p in PROBES {
        let mut secs = [0.0f64; 2];
        for (slot, enabled) in [(0usize, false), (1usize, true)] {
            let params = CloneParams {
                clones: p.clones,
                image_scale: Some(p.image_scale),
                dedup: if enabled {
                    DedupTuning::default()
                } else {
                    DedupTuning::off()
                },
                // This ablation isolates dedup; CoW cloning has its own
                // (cow_ablation), which holds dedup fixed instead.
                cow: gvfs::CowTuning::off(),
                ..CloneParams::default()
            };
            let res = run_cloning(p.scenario, &params);
            secs[slot] = res.total_virtual_secs;
            let label = format!("{} dedup={}", p.name, if enabled { "on" } else { "off" });
            scenarios.push(scenario_report(
                &label,
                res.total_virtual_secs,
                &res.snapshot,
            ));
            if enabled {
                let avoided = res.snapshot.counter_sum("gvfs", ".dedup.bytes_avoided");
                let skips = res.snapshot.counter_sum("gvfs", ".dedup.acked_skips");
                rows.push(vec![
                    p.name.to_string(),
                    format!("{:.3}", secs[0]),
                    format!("{:.3}", secs[1]),
                    format!("{:.1}%", (1.0 - secs[1] / secs[0]) * 100.0),
                    format!("{:.1}", avoided as f64 / (1 << 20) as f64),
                    format!("{skips}"),
                ]);
            } else {
                off_bits.push((p.name, res.total_virtual_secs));
            }
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "Probe",
                "off (s)",
                "on (s)",
                "saved",
                "avoided MiB",
                "acked skips"
            ],
            &rows,
        )
    );
    if let Some(path) = &json_path {
        write_report(path, "dedup_ablation", scenarios);
    }

    let rendered: String = off_bits
        .iter()
        .map(|(name, secs)| format!("{name} {:016x}\n", secs.to_bits()))
        .collect();
    if write_baseline {
        if let Some(parent) = std::path::Path::new(BASELINE_PATH).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(BASELINE_PATH, &rendered).expect("write baseline");
        println!("baseline: wrote {BASELINE_PATH}");
        return;
    }
    match std::fs::read_to_string(BASELINE_PATH) {
        Ok(committed) => {
            if committed == rendered {
                println!("baseline: DedupTuning::off() matches {BASELINE_PATH} bit-for-bit");
            } else {
                eprintln!(
                    "baseline MISMATCH: DedupTuning::off() no longer reproduces the \
                     committed numbers.\n--- committed\n{committed}--- measured\n{rendered}\
                     If the change to the non-dedup paths is intentional, rerun with \
                     --write-baseline and commit the result."
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!(
                "baseline: cannot read {BASELINE_PATH} ({e}); run with --write-baseline first"
            );
            std::process::exit(1);
        }
    }
}
