//! Figure 4 — LaTeX benchmark execution times (seconds): first
//! iteration, mean of iterations 2–20, and total, under
//! Local / LAN / WAN / WAN+C; plus the full-download/upload and
//! write-back flush reference numbers quoted in §4.2.2.

use gvfs_bench::report::{render_table, scenario_report, write_report, BenchCli};
use gvfs_bench::{run_app_scenario, AppParams, AppScenario};
use simnet::SimDuration;
use workloads::latex::{generate, LatexParams};
use workloads::scp::ScpModel;

fn main() {
    let cli = BenchCli::parse("fig4_latex");
    let params = AppParams {
        trace: cli.trace,
        ..AppParams::default()
    };
    let wl = generate(&LatexParams::default());
    println!("Figure 4: LaTeX benchmark execution times (seconds)\n");

    let mut rows = Vec::new();
    let mut flush = None;
    let mut keyed = Vec::new();
    let mut scenarios = Vec::new();
    for scn in AppScenario::all() {
        let res = run_app_scenario(scn, &wl, &params, 1);
        scenarios.push(scenario_report(
            scn.label(),
            res.total_virtual_secs,
            &res.snapshot,
        ));
        let run = &res.runs[0];
        let first = run.phases[0].1;
        let rest: Vec<f64> = run.phases[1..].iter().map(|(_, s)| *s).collect();
        let mean = rest.iter().sum::<f64>() / rest.len() as f64;
        rows.push(vec![
            scn.label().to_string(),
            format!("{first:.2}"),
            format!("{mean:.2}"),
            format!("{:.1}", run.total),
        ]);
        keyed.push((scn, first, mean, run.total));
        if scn == AppScenario::WanC {
            flush = res.flush_secs;
        }
    }
    if let Some(path) = &cli.json_path {
        write_report(path, "fig4_latex", scenarios);
    }
    println!(
        "{}",
        render_table(
            &["Scenario", "First iteration", "Mean of 2-20", "Total"],
            &rows
        )
    );

    let get = |s: AppScenario| *keyed.iter().find(|(k, ..)| *k == s).unwrap();
    let (_, first_local, mean_local, _) = get(AppScenario::Local);
    let (_, first_wan, mean_wan, _) = get(AppScenario::Wan);
    let (_, first_wanc, mean_wanc, _) = get(AppScenario::WanC);
    let (_, _, mean_lan, _) = get(AppScenario::Lan);

    println!("Shape vs paper:");
    println!("  first iteration Local ≈12s       measured {first_local:.1}s");
    println!("  first iteration WAN ≈225.7s      measured {first_wan:.1}s");
    println!("  first iteration WAN+C ≈217.3s    measured {first_wanc:.1}s");
    println!("  mean 2-20: Local 11.51 / LAN 12.54 / WAN 19.53 / WAN+C 13.37");
    println!(
        "             measured {mean_local:.2} / {mean_lan:.2} / {mean_wan:.2} / {mean_wanc:.2}"
    );
    println!(
        "  WAN+C mean vs Local  paper +8%    measured {:+.0}%",
        (mean_wanc / mean_local - 1.0) * 100.0
    );
    println!(
        "  WAN+C mean vs WAN    paper -35%   measured {:+.0}%",
        (mean_wanc / mean_wan - 1.0) * 100.0
    );
    if let Some(f) = flush {
        println!("  write-back flush     paper ≈160s  measured {f:.0}s");
    }

    // Reference numbers: downloading/uploading the whole VM state.
    let sim = simnet::Simulation::new();
    let h = sim.handle();
    let net = params.net;
    let down = simnet::Link::from_mbps(&h, "down", net.wan_down_mbps, net.wan_oneway);
    let up = simnet::Link::from_mbps(&h, "up", net.wan_up_mbps, net.wan_oneway);
    let state_bytes: u64 = (512 << 20) + (2_048 << 20);
    let scp = ScpModel::default();
    let dl: SimDuration = scp.idle_copy_time(&down, state_bytes);
    let ul: SimDuration = scp.idle_copy_time(&up, state_bytes);
    println!(
        "  full-state download  paper 2818s  estimated {:.0}s",
        dl.as_secs_f64()
    );
    println!(
        "  full-state upload    paper 4633s  estimated {:.0}s",
        ul.as_secs_f64()
    );
}
