//! Figure 6 — VM cloning times (seconds) for a sequence of eight images
//! (320 MB memory / 1.6 GB virtual disk) under Local, WAN-S1, WAN-S2,
//! WAN-S3; with the SCP full-copy and pure-NFS baselines quoted in the
//! caption.
//!
//! Paper's shape: SCP ≈ 1127 s; pure NFS ≈ 2060 s; first enhanced-GVFS
//! clone < 160 s; subsequent clones ≈ 25 s warm-local / ≈ 80 s warm-LAN.

use gvfs::{CowTuning, DedupTuning};
use gvfs_bench::report::{render_table, scenario_report, write_report, BenchCli};
use gvfs_bench::{pure_nfs_clone_secs, run_cloning, scp_baseline_secs, CloneParams, CloneScenario};

fn main() {
    let cli = BenchCli::parse("fig6_cloning");
    let params = CloneParams {
        trace: cli.trace,
        dedup: if cli.no_dedup {
            DedupTuning::off()
        } else {
            DedupTuning::default()
        },
        cow: if cli.no_cow {
            CowTuning::off()
        } else {
            CowTuning::on()
        },
        ..CloneParams::default()
    };
    println!(
        "Figure 6: VM cloning times (seconds), {} sequential clonings\n",
        params.clones
    );

    let scp = scp_baseline_secs(&params);
    println!("Baseline: full image copy via SCP      paper 1127s   measured {scp:.0}s");
    let nfs = pure_nfs_clone_secs(&params);
    println!("Baseline: cloning over pure NFS        paper 2060s   measured {nfs:.0}s\n");

    let mut rows = Vec::new();
    let mut keyed = Vec::new();
    for scn in CloneScenario::all() {
        let res = run_cloning(scn, &params);
        let mut row = vec![res.scenario.clone()];
        for t in &res.times {
            row.push(format!("{:.1}", t.total.as_secs_f64()));
        }
        rows.push(row);
        keyed.push(res);
    }
    let mut header: Vec<String> = vec!["Scenario".to_string()];
    for i in 1..=params.clones {
        header.push(format!("#{i}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));
    if let Some(path) = &cli.json_path {
        let scenarios = keyed
            .iter()
            .map(|res| scenario_report(&res.scenario, res.total_virtual_secs, &res.snapshot))
            .collect();
        write_report(path, "fig6_cloning", scenarios);
    }

    let s1 = keyed.iter().find(|r| r.scenario == "WAN-S1").unwrap();
    let s3 = keyed.iter().find(|r| r.scenario == "WAN-S3").unwrap();
    let first = s1.times[0].total.as_secs_f64();
    let warm: f64 = s1.times[1..]
        .iter()
        .map(|t| t.total.as_secs_f64())
        .sum::<f64>()
        / (s1.times.len() - 1) as f64;
    let lan_mean: f64 =
        s3.times.iter().map(|t| t.total.as_secs_f64()).sum::<f64>() / s3.times.len() as f64;
    println!("Shape vs paper:");
    println!("  first WAN-S1 clone     paper <160s   measured {first:.0}s");
    println!("  warm WAN-S1 clones     paper ≈25s    measured {warm:.0}s");
    println!("  LAN-cached clones (S3) paper ≈80s    measured {lan_mean:.0}s");
    println!("  speedup vs SCP (first clone):        {:.1}x", scp / first);
    println!("  speedup vs pure NFS (first clone):   {:.1}x", nfs / first);

    // Step breakdown of the first S1 clone, for the curious.
    let t = &s1.times[0];
    println!("\nFirst WAN-S1 clone step breakdown (s):");
    println!(
        "{}",
        render_table(
            &[
                "copy config",
                "copy memory",
                "links",
                "configure",
                "resume",
                "total"
            ],
            &[vec![
                format!("{:.2}", t.copy_config.as_secs_f64()),
                format!("{:.2}", t.copy_memory.as_secs_f64()),
                format!("{:.2}", t.links.as_secs_f64()),
                format!("{:.2}", t.configure.as_secs_f64()),
                format!("{:.2}", t.resume.as_secs_f64()),
                format!("{:.2}", t.total.as_secs_f64()),
            ]],
        )
    );
}
