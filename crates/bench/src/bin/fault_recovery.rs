//! Failure-domain scenario — the LaTeX benchmark (Figure 4's WAN+C
//! configuration) under injected WAN faults: sustained packet loss, a
//! 10-second WAN outage landing inside the write-back flush, and a
//! server restart mid-flush that discards unstable writes and rotates
//! the write verifier.
//!
//! Three runs:
//!
//! 1. **baseline** — fault-free, records the reference timings and the
//!    server's final filesystem digest;
//! 2. **probe** — packet loss only, locates where the write-back flush
//!    starts on the faulted timeline (deterministic seeds make this
//!    instant identical in the final run);
//! 3. **faulted** — same loss plus the mid-flush outage and server
//!    restart.
//!
//! The acceptance check is byte-exactness: the faulted run's server
//! filesystem digest must equal the baseline's — every acknowledged
//! byte survived the loss, the outage, and the restart. Recovery
//! counters (retransmits, duplicate-request-cache hits, verifier
//! mismatches, write-back requeues) go into the JSON report.

use gvfs_bench::report::{render_table, scenario_report, write_report, BenchCli};
use gvfs_bench::{run_app_scenario, AppParams, AppScenario, FaultSpec};
use simnet::{JsonValue, Snapshot};
use workloads::latex::{generate, LatexParams};

/// ≥1% loss each way, as the failure-domain spec demands.
const DROP_PROB: f64 = 0.015;
const SEED: u64 = 0x6762_7673;
const OUTAGE_SECS: f64 = 10.0;

fn recovery_counters(snap: &Snapshot) -> Vec<(&'static str, u64)> {
    vec![
        ("rpc_retransmits", snap.counter_sum("rpc", ".retransmits")),
        ("rpc_timeouts", snap.counter_sum("rpc", ".timeouts")),
        (
            "rpc_stale_replies",
            snap.counter_sum("rpc", ".stale_replies"),
        ),
        ("link_dropped", snap.counter_sum("link", ".dropped")),
        ("link_severed", snap.counter_sum("link", ".severed")),
        ("drc_hits", snap.counter_sum("nfs3", ".drc.hits")),
        (
            "verf_mismatches",
            snap.counter_sum("gvfs", ".verf_mismatches"),
        ),
        ("wb_queued", snap.counter_sum("gvfs", ".wb_queued")),
        ("wb_drained", snap.counter_sum("gvfs", ".wb_drained")),
        (
            "flush_retry_rounds",
            snap.counter_sum("gvfs", ".flush_retry_rounds"),
        ),
    ]
}

fn main() {
    let cli = BenchCli::parse("fault_recovery");
    let wl = generate(&LatexParams::default());
    println!("Failure domain: LaTeX WAN+C under loss, outage, and server restart\n");

    // 1. Fault-free reference run.
    let base_params = AppParams {
        trace: cli.trace,
        ..AppParams::default()
    };
    let base = run_app_scenario(AppScenario::WanC, &wl, &base_params, 1);
    let base_digest = base
        .server_fs_digest
        .expect("network scenario has a digest");
    let base_flush = base.flush_secs.unwrap_or(0.0);

    // 2. Probe run, loss only: locate the flush start on the faulted
    // timeline. The final run shares seeds and schedule, so its timeline
    // is identical up to the first outage/restart divergence — meaning
    // its flush starts at this same virtual instant.
    let probe_params = AppParams {
        trace: false,
        fault: Some(FaultSpec {
            seed: SEED,
            drop_prob: DROP_PROB,
            outage_start_secs: 0.0,
            outage_secs: 0.0,
            restart_at_secs: None,
        }),
        ..AppParams::default()
    };
    let probe = run_app_scenario(AppScenario::WanC, &wl, &probe_params, 1);
    let probe_flush = probe.flush_secs.unwrap_or(0.0);
    let flush_start = probe.total_virtual_secs - probe_flush;
    assert_eq!(
        probe.server_fs_digest,
        Some(base_digest),
        "packet loss alone must not change the server's bytes"
    );

    // 3. Full fault schedule. Both faults land well inside the flush's
    // WRITE stream: a restart a quarter of the way in (so blocks already
    // written UNSTABLE are discarded and the later COMMIT returns a
    // rotated verifier — forcing a resend), and a WAN outage at the
    // halfway mark.
    let fault = FaultSpec {
        seed: SEED,
        drop_prob: DROP_PROB,
        outage_start_secs: flush_start + 0.5 * probe_flush,
        outage_secs: OUTAGE_SECS,
        restart_at_secs: Some(flush_start + 0.25 * probe_flush),
    };
    let fault_params = AppParams {
        trace: false,
        fault: Some(fault),
        ..AppParams::default()
    };
    let faulted = run_app_scenario(AppScenario::WanC, &wl, &fault_params, 1);
    let fault_flush = faulted.flush_secs.unwrap_or(0.0);
    let digest_match = faulted.server_fs_digest == Some(base_digest);

    let counters = recovery_counters(&faulted.snapshot);
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };

    let mut rows = vec![
        vec![
            "total (s)".to_string(),
            format!("{:.1}", base.total_virtual_secs),
            format!("{:.1}", faulted.total_virtual_secs),
        ],
        vec![
            "write-back flush (s)".to_string(),
            format!("{base_flush:.1}"),
            format!("{fault_flush:.1}"),
        ],
    ];
    for (name, value) in &counters {
        rows.push(vec![name.to_string(), "0".to_string(), value.to_string()]);
    }
    println!(
        "{}",
        render_table(&["Metric", "Baseline", "Faulted"], &rows)
    );
    println!(
        "Fault schedule: {:.1}% loss each way, {OUTAGE_SECS:.0}s outage at t={:.1}s, \
         server restart at t={:.1}s (flush starts at t={flush_start:.1}s)",
        DROP_PROB * 100.0,
        fault.outage_start_secs,
        fault.restart_at_secs.unwrap_or(0.0),
    );
    println!(
        "Flush recovery overhead: {:+.1}s ({:.1}s → {:.1}s)",
        fault_flush - base_flush,
        base_flush,
        fault_flush
    );
    println!(
        "Server state after recovery: {}",
        if digest_match {
            "byte-identical to the fault-free run"
        } else {
            "DIVERGED — bytes were lost"
        }
    );

    if let Some(path) = &cli.json_path {
        let recovery = JsonValue::object([
            ("scenario", JsonValue::Str("recovery".to_string())),
            ("digest_match", JsonValue::Bool(digest_match)),
            (
                "baseline_total_secs",
                JsonValue::Float(base.total_virtual_secs),
            ),
            (
                "faulted_total_secs",
                JsonValue::Float(faulted.total_virtual_secs),
            ),
            ("baseline_flush_secs", JsonValue::Float(base_flush)),
            ("faulted_flush_secs", JsonValue::Float(fault_flush)),
            ("flush_start_secs", JsonValue::Float(flush_start)),
            ("drop_prob", JsonValue::Float(DROP_PROB)),
            ("outage_secs", JsonValue::Float(OUTAGE_SECS)),
            (
                "counters",
                JsonValue::Object(
                    counters
                        .iter()
                        .map(|(n, v)| (n.to_string(), JsonValue::Uint(*v)))
                        .collect(),
                ),
            ),
        ]);
        write_report(
            path,
            "fault_recovery",
            vec![
                scenario_report("WAN+C baseline", base.total_virtual_secs, &base.snapshot),
                scenario_report(
                    "WAN+C faulted",
                    faulted.total_virtual_secs,
                    &faulted.snapshot,
                ),
                recovery,
            ],
        );
    }

    // Hard acceptance checks (the CI fault job runs this binary).
    assert!(digest_match, "faulted run lost or corrupted server bytes");
    assert!(
        get("rpc_retransmits") > 0 && get("link_dropped") > 0,
        "fault injection was not actually exercised"
    );
    println!("\nOK: zero lost bytes under loss + outage + restart");
}
