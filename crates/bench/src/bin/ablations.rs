//! Ablations of the design choices DESIGN.md calls out (not a paper
//! figure — extra evidence for *why* each GVFS mechanism earns its keep):
//!
//! 1. write-back vs write-through proxy caching (SPECseis phase 1),
//! 2. zero-map meta-data on/off (memory-state read over pure block NFS),
//! 3. compressed file channel vs block transfer (one cloning),
//! 4. in-text claim at full scale: reads filtered when resuming a 512 MB
//!    post-boot image at 8 KB granularity (paper: 60,452 / 65,750).

use gvfs::{DedupTuning, Middleware, WritePolicy};
use gvfs_bench::report::{scenario_report, write_report, BenchCli};
use gvfs_bench::{
    build_client, build_server, run_app_scenario, run_cloning, AppParams, AppScenario,
    ClientProxyOptions, CloneParams, CloneScenario, NetParams,
};
use nfs3::{KernelClient, KernelConfig, Nfs3Client};
use oncrpc::RpcClient;
use simnet::{Link, Simulation};
use vfs::FileIo;
use vmm::{install_image, VmImageSpec};
use workloads::specseis::{generate, SpecseisParams};

fn wan(h: &simnet::SimHandle) -> (Link, Link) {
    let net = NetParams::default();
    (
        Link::from_mbps(h, "wan-up", net.wan_up_mbps, net.wan_oneway),
        Link::from_mbps(h, "wan-down", net.wan_down_mbps, net.wan_oneway),
    )
}

/// Resume-style full read of a memory image; returns (reads, filtered,
/// total virtual seconds, telemetry snapshot).
fn zero_filter_counts(
    memory_mb: u64,
    with_meta: bool,
    trace: bool,
) -> (u64, u64, f64, simnet::Snapshot) {
    let sim = Simulation::new();
    let h = sim.handle();
    if trace {
        h.telemetry().set_trace(true);
    }
    let (up, down) = wan(&h);
    let server = build_server(&h, up, down, 768 << 20, true);
    let spec = VmImageSpec {
        name: "postboot".into(),
        memory_bytes: memory_mb << 20,
        disk_bytes: 64 << 20,
        mem_nonzero_fraction: 0.08,
        disk_used_fraction: 0.1,
        seed: 0x7373,
    };
    {
        let mut fs = server.fs.lock();
        let root = fs.root();
        let dir = fs.mkdir(root, "exports", 0o755, 0).unwrap();
        install_image(&mut fs, dir, &spec).unwrap();
        if with_meta {
            Middleware::generate_meta(&mut fs, "exports", "postboot.vmss", 8 * 1024, true, None)
                .unwrap();
        }
    }
    let mw = Middleware::new();
    let (_sid, cred) = mw.establish_session(&server.mapper, "u", 0, u64::MAX / 2);
    let client = build_client(
        &h,
        server.channel.clone(),
        cred.clone(),
        Some(ClientProxyOptions {
            block_cache: true,
            file_channel: true,
            write_policy: WritePolicy::WriteBack,
            cache_bytes: 8 << 30,
            dedup: DedupTuning::default(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        }),
        None,
    );
    let proxy = client.proxy.clone().unwrap();
    let out = std::sync::Arc::new(parking_lot::Mutex::new((0u64, 0u64)));
    let out2 = out.clone();
    sim.spawn("resume", move |env| {
        let nfs = Nfs3Client::new(RpcClient::new(client.channel.clone(), cred));
        let kc = KernelClient::mount(
            &env,
            nfs,
            "/exports",
            KernelConfig {
                rsize: 8 * 1024,
                wsize: 8 * 1024,
                ..KernelConfig::default()
            },
        )
        .unwrap();
        let fh = kc.lookup_path(&env, "postboot.vmss").unwrap();
        let mut off = 0u64;
        let total = memory_mb << 20;
        while off < total {
            let data = kc.read(&env, fh, off, 256 * 1024).unwrap();
            off += data.len() as u64;
        }
        let st = proxy.stats();
        *out2.lock() = (st.reads, st.zero_filtered);
    });
    let end = sim.run();
    let (reads, filtered) = *out.lock();
    (reads, filtered, end.as_secs_f64(), h.telemetry().snapshot())
}

fn main() {
    let cli = BenchCli::parse("ablations");
    let mut scenarios = Vec::new();
    println!("== Ablation 1: write-back vs write-through (SPECseis phase 1, WAN+C) ==");
    // WAN+C is write-back by construction; WAN (no cache) forwards every
    // write — the paper's two ends of the spectrum.
    let wl = generate(&SpecseisParams::default());
    let params = AppParams {
        trace: cli.trace,
        ..AppParams::default()
    };
    let wb = run_app_scenario(AppScenario::WanC, &wl, &params, 1);
    let wt = run_app_scenario(AppScenario::Wan, &wl, &params, 1);
    scenarios.push(scenario_report(
        "ablation1 write-back (WAN+C)",
        wb.total_virtual_secs,
        &wb.snapshot,
    ));
    scenarios.push(scenario_report(
        "ablation1 write-through (WAN)",
        wt.total_virtual_secs,
        &wt.snapshot,
    ));
    println!(
        "  phase 1: write-back {:.0}s   write-through/forwarding {:.0}s   ({:.1}x)\n",
        wb.runs[0].phases[0].1,
        wt.runs[0].phases[0].1,
        wt.runs[0].phases[0].1 / wb.runs[0].phases[0].1
    );

    println!("== Ablation 2: zero-map meta-data (64 MB post-boot memory read, 8 KB blocks) ==");
    let (reads_off, filt_off, secs_off, snap_off) = zero_filter_counts(64, false, cli.trace);
    let (reads_on, filt_on, secs_on, snap_on) = zero_filter_counts(64, true, cli.trace);
    scenarios.push(scenario_report(
        "ablation2 zero-map off",
        secs_off,
        &snap_off,
    ));
    scenarios.push(scenario_report("ablation2 zero-map on", secs_on, &snap_on));
    println!("  without meta: {reads_off} reads, {filt_off} filtered locally");
    println!("  with meta:    {reads_on} reads, {filt_on} filtered locally\n");

    println!("== Ablation 3: file channel vs pure block transfer (first cloning) ==");
    let quick = CloneParams {
        clones: 1,
        image_scale: Some(4),
        trace: cli.trace,
        // This ablation isolates the compressed file channel; CoW
        // reference cloning has its own binary (cow_ablation).
        cow: gvfs::CowTuning::off(),
        ..CloneParams::default()
    };
    let channel_res = run_cloning(CloneScenario::WanS1, &quick);
    scenarios.push(scenario_report(
        "ablation3 compressed channel (WAN-S1 x1)",
        channel_res.total_virtual_secs,
        &channel_res.snapshot,
    ));
    let with_channel = channel_res.times[0].total.as_secs_f64();
    // Channel off: strip the meta-data before cloning is not directly
    // exposed; the pure-NFS baseline is the closest no-GVFS bound.
    let no_gvfs = gvfs_bench::pure_nfs_clone_secs(&quick);
    println!(
        "  with compressed channel: {with_channel:.0}s   pure NFS: {no_gvfs:.0}s   ({:.1}x)\n",
        no_gvfs / with_channel
    );

    println!("== In-text claim: 512 MB post-boot resume, 8 KB reads ==");
    let (reads, filtered, claim_secs, claim_snap) = zero_filter_counts(512, true, cli.trace);
    scenarios.push(scenario_report(
        "in-text claim 512MB resume",
        claim_secs,
        &claim_snap,
    ));
    println!("  paper:    65,750 reads, 60,452 filtered (92.0%)");
    println!(
        "  measured: {reads} reads, {filtered} filtered ({:.1}%)",
        filtered as f64 / reads as f64 * 100.0
    );
    if let Some(path) = &cli.json_path {
        write_report(path, "ablations", scenarios);
    }
}
