//! Figure 3 — SPECseis benchmark execution times (minutes:seconds) for
//! each execution phase, under Local / LAN / WAN / WAN+C.
//!
//! Paper's shape to match: phase 4 within ~10% across scenarios; phase 1
//! WAN ≈ 2.1× WAN+C; WAN+C total ≈ 33% below WAN.

use gvfs_bench::report::{mmss, render_table, scenario_report, write_report, BenchCli};
use gvfs_bench::{run_app_scenario, AppParams, AppScenario};
use workloads::specseis::{generate, SpecseisParams};

fn main() {
    let cli = BenchCli::parse("fig3_specseis");
    let params = AppParams {
        trace: cli.trace,
        ..AppParams::default()
    };
    let wl = generate(&SpecseisParams::default());
    println!("Figure 3: SPECseis96 execution times (m:ss per phase)\n");

    let mut rows = Vec::new();
    let mut per_scn = Vec::new();
    let mut scenarios = Vec::new();
    for scn in AppScenario::all() {
        let res = run_app_scenario(scn, &wl, &params, 1);
        scenarios.push(scenario_report(
            scn.label(),
            res.total_virtual_secs,
            &res.snapshot,
        ));
        let run = &res.runs[0];
        let mut row = vec![scn.label().to_string()];
        for (_, secs) in &run.phases {
            row.push(mmss(*secs));
        }
        row.push(mmss(run.total));
        rows.push(row);
        per_scn.push((scn, run.clone()));
    }
    if let Some(path) = &cli.json_path {
        write_report(path, "fig3_specseis", scenarios);
    }
    println!(
        "{}",
        render_table(
            &["Scenario", "Phase 1", "Phase 2", "Phase 3", "Phase 4", "Total"],
            &rows
        )
    );

    // Shape checks against the paper.
    let get = |s: AppScenario| per_scn.iter().find(|(k, _)| *k == s).unwrap().1.clone();
    let wan = get(AppScenario::Wan);
    let wanc = get(AppScenario::WanC);
    let local = get(AppScenario::Local);
    let p1_ratio = wan.phases[0].1 / wanc.phases[0].1;
    let total_saving = 1.0 - wanc.total / wan.total;
    let p4_spread = {
        let p4: Vec<f64> = per_scn.iter().map(|(_, r)| r.phases[3].1).collect();
        let max = p4.iter().cloned().fold(f64::MIN, f64::max);
        let min = p4.iter().cloned().fold(f64::MAX, f64::min);
        (max - min) / min
    };
    println!("Shape vs paper:");
    println!("  phase 1 WAN / WAN+C            paper ≈ 2.1x    measured {p1_ratio:.2}x");
    println!(
        "  WAN+C total saving vs WAN      paper ≈ 33%     measured {:.0}%",
        total_saving * 100.0
    );
    println!(
        "  phase 4 spread across scenarios paper <10%      measured {:.1}%",
        p4_spread * 100.0
    );
    println!(
        "  WAN+C total vs Local            (overhead)      {:.1}%",
        (wanc.total / local.total - 1.0) * 100.0
    );
}
