//! Shared machinery for the wall-clock perf harnesses (`perf` and
//! `fleet --bench`): a minimal JSON reader (the repo's [`JsonValue`]
//! only prints), wall-time measurement with cross-run determinism
//! enforcement, and schema validation for the committed trajectory
//! files (`BENCH_perf.json`, `BENCH_fleet.json`).

use simnet::{JsonValue, Snapshot};

/// Virtual-time outcome of one scenario execution. Must be identical
/// across repeated runs — the simulation is deterministic, only the wall
/// clock may vary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measure {
    /// Scheduler events processed.
    pub events: u64,
    /// Completed client-side RPC calls.
    pub rpc_roundtrips: u64,
    /// Link-layer payload bytes moved.
    pub sim_bytes: u64,
    /// Final virtual clock.
    pub virtual_secs: f64,
    /// Processes spawned.
    pub procs: u64,
}

/// Completed client-side calls: one per RPC round trip. Server-side
/// `served.calls` would double-count multi-hop proxy chains.
pub fn rpc_roundtrips(snap: &Snapshot) -> u64 {
    snap.counters
        .iter()
        .filter(|c| c.layer == "rpc" && c.name.starts_with("client.") && c.name.ends_with(".calls"))
        .map(|c| c.value)
        .sum()
}

/// Link-layer payload bytes in `snap`.
pub fn sim_bytes(snap: &Snapshot) -> u64 {
    snap.counter_sum("link", ".bytes")
}

/// Run `f` once, returning its result and the wall seconds it took.
pub fn wall_time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // lint:allow(determinism): wall-clock measurement is this harness's entire purpose
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Median of `xs` (sorts in place).
pub fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Context switches this process has accumulated, summed over all live
/// threads from `/proc/self/task/*/status` (voluntary, nonvoluntary).
/// `/proc/self/status` alone only covers the main thread, which mostly
/// parks while simulation worker threads hand the baton around — the
/// per-task sum is what tracks scheduler pressure. Diagnostics only;
/// zero where unsupported, and an undercount if threads exited between
/// scenarios (the simulations here keep their worker pools alive until
/// the run ends, so deltas taken around a run are accurate).
pub fn ctx_switches() -> (u64, u64) {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return (0, 0);
    };
    let (mut vol, mut nonvol) = (0u64, 0u64);
    for task in tasks.flatten() {
        let Ok(status) = std::fs::read_to_string(task.path().join("status")) else {
            continue; // thread exited mid-scan
        };
        let field = |key: &str| {
            status
                .lines()
                .find(|l| l.starts_with(key))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0u64)
        };
        vol += field("voluntary_ctxt_switches:");
        nonvol += field("nonvoluntary_ctxt_switches:");
    }
    (vol, nonvol)
}

/// Measure one scenario `runs` times; enforce virtual-time determinism
/// across repeats (exit 3 on divergence); return its JSON entry.
pub fn measure(name: &str, runs: usize, f: impl Fn() -> Measure) -> JsonValue {
    eprintln!("perf: running {name} ({runs} repeats)...");
    let mut walls = Vec::with_capacity(runs);
    let mut first: Option<Measure> = None;
    for i in 0..runs {
        let (vol0, nonvol0) = ctx_switches();
        let (m, wall) = wall_time(&f);
        let (vol1, nonvol1) = ctx_switches();
        eprintln!(
            "perf:   run {}/{}: {:.3}s wall, {} events, {} rpc, {} sim bytes, {} procs, ctxsw +{}v/+{}nv",
            i + 1,
            runs,
            wall,
            m.events,
            m.rpc_roundtrips,
            m.sim_bytes,
            m.procs,
            vol1.saturating_sub(vol0),
            nonvol1.saturating_sub(nonvol0)
        );
        match &first {
            None => first = Some(m),
            Some(prev) if *prev != m => {
                eprintln!(
                    "perf: DETERMINISM ERROR in {name}: run {} produced {m:?}, run 1 produced {prev:?}",
                    i + 1
                );
                std::process::exit(3);
            }
            Some(_) => {}
        }
        walls.push(wall);
    }
    let m = first.expect("runs >= 1");
    let med = median(&mut walls);
    JsonValue::object([
        ("name", JsonValue::Str(name.to_string())),
        ("wall_secs_median", JsonValue::Float(med)),
        (
            "wall_secs_all",
            JsonValue::Array(walls.iter().map(|w| JsonValue::Float(*w)).collect()),
        ),
        ("virtual_secs", JsonValue::Float(m.virtual_secs)),
        ("events_processed", JsonValue::Uint(m.events)),
        ("rpc_roundtrips", JsonValue::Uint(m.rpc_roundtrips)),
        ("sim_bytes", JsonValue::Uint(m.sim_bytes)),
        ("events_per_sec", JsonValue::Float(m.events as f64 / med)),
        (
            "rpc_roundtrips_per_sec",
            JsonValue::Float(m.rpc_roundtrips as f64 / med),
        ),
        (
            "sim_bytes_per_sec",
            JsonValue::Float(m.sim_bytes as f64 / med),
        ),
    ])
}

/// Field lookup in a [`JsonValue::Object`].
pub fn get<'v>(obj: &'v JsonValue, key: &str) -> Option<&'v JsonValue> {
    match obj {
        JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Numeric view of a [`JsonValue`], if it is one.
pub fn as_number(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Uint(u) => Some(*u as f64),
        JsonValue::Float(f) => Some(*f),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Schema validation

/// Trajectory schema id for the engine perf harness (`perf`).
pub const PERF_SCHEMA: &str = "gvfs.perf.v1";
/// Scenario set every `gvfs.perf.v1` entry must carry.
pub const PERF_SCENARIOS: [&str; 4] = ["fig4_flush", "fig6_clone", "table1_seq", "simnet_churn"];
/// Trajectory schema id for the fleet harness (`fleet --bench`).
pub const FLEET_SCHEMA: &str = "gvfs.fleet-perf.v1";
/// Scenario set every `gvfs.fleet-perf.v1` entry must carry:
/// a 1000-process engine churn and a smoke-sized fleet run.
pub const FLEET_SCENARIOS: [&str; 2] = ["churn_1000", "fleet_smoke"];

/// Numeric fields every scenario entry must carry, in either schema.
pub const SCENARIO_NUMBER_FIELDS: [&str; 8] = [
    "wall_secs_median",
    "virtual_secs",
    "events_processed",
    "rpc_roundtrips",
    "sim_bytes",
    "events_per_sec",
    "rpc_roundtrips_per_sec",
    "sim_bytes_per_sec",
];

/// Required scenario names for a schema id, if it is one we know.
fn scenarios_for(schema: &str) -> Option<&'static [&'static str]> {
    match schema {
        PERF_SCHEMA => Some(&PERF_SCENARIOS),
        FLEET_SCHEMA => Some(&FLEET_SCENARIOS),
        _ => None,
    }
}

/// Validate a perf-trajectory document (either schema, dispatched on its
/// `schema` field); returns every problem found.
pub fn validate(doc: &JsonValue) -> Vec<String> {
    let mut errs = Vec::new();
    let required: &[&str] = match get(doc, "schema") {
        Some(JsonValue::Str(s)) => match scenarios_for(s) {
            Some(names) => names,
            None => {
                errs.push(format!(
                    "unknown schema \"{s}\" (expected \"{PERF_SCHEMA}\" or \"{FLEET_SCHEMA}\")"
                ));
                return errs;
            }
        },
        other => {
            errs.push(format!("schema field must be a string, got {other:?}"));
            return errs;
        }
    };
    let Some(JsonValue::Array(entries)) = get(doc, "trajectory") else {
        errs.push("trajectory must be an array".to_string());
        return errs;
    };
    if entries.is_empty() {
        errs.push("trajectory must not be empty".to_string());
    }
    let mut labels: Vec<&str> = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        match get(entry, "label") {
            Some(JsonValue::Str(l)) => {
                // Trajectory hygiene: entries are per-PR snapshots, so a
                // placeholder label ("dev", empty) or a reused one makes
                // the trajectory unreadable as history.
                if l.is_empty() || l == "dev" {
                    errs.push(format!(
                        "entry #{i}: unlabeled (\"{l}\") — use a per-PR label like \"pr8-batched\""
                    ));
                } else if labels.contains(&l.as_str()) {
                    errs.push(format!("entry #{i}: duplicate label \"{l}\""));
                }
                labels.push(l);
            }
            _ => errs.push(format!("entry #{i}: missing string label")),
        }
        if !matches!(get(entry, "mode"), Some(JsonValue::Str(_))) {
            errs.push(format!("entry #{i}: missing string mode"));
        }
        if !matches!(get(entry, "runs"), Some(JsonValue::Uint(_))) {
            errs.push(format!("entry #{i}: missing uint runs"));
        }
        let Some(JsonValue::Array(scenarios)) = get(entry, "scenarios") else {
            errs.push(format!("entry #{i}: scenarios must be an array"));
            continue;
        };
        let mut seen = Vec::new();
        for s in scenarios {
            let name = match get(s, "name") {
                Some(JsonValue::Str(n)) => n.clone(),
                _ => {
                    errs.push(format!("entry #{i}: scenario missing name"));
                    continue;
                }
            };
            for field in SCENARIO_NUMBER_FIELDS {
                if get(s, field).and_then(as_number).is_none() {
                    errs.push(format!(
                        "entry #{i} scenario {name}: missing number {field}"
                    ));
                }
            }
            seen.push(name);
        }
        for want in required {
            if !seen.iter().any(|n| n == want) {
                errs.push(format!("entry #{i}: scenario {want} missing"));
            }
        }
    }
    errs
}

/// `events_per_sec` of a named scenario in a trajectory entry.
pub fn events_per_sec_of(entry: &JsonValue, scenario: &str) -> Option<f64> {
    let JsonValue::Array(scenarios) = get(entry, "scenarios")? else {
        return None;
    };
    scenarios
        .iter()
        .find(|s| matches!(get(s, "name"), Some(JsonValue::Str(n)) if n == scenario))
        .and_then(|s| get(s, "events_per_sec"))
        .and_then(as_number)
}

/// Append `entry` to the trajectory file at `path` (creating it under
/// `schema` when absent), validating the result before writing. Exits
/// the process on any error — this is harness plumbing, not a library
/// for recovery.
pub fn append_trajectory(path: &str, schema: &str, entry: JsonValue) {
    let mut trajectory = match std::fs::read_to_string(path) {
        Ok(text) => match JsonReader::parse(&text) {
            Ok(doc) => match get(&doc, "trajectory") {
                Some(JsonValue::Array(entries)) => entries.clone(),
                _ => {
                    eprintln!("perf: {path} has no trajectory array; refusing to overwrite");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("perf: {path} is not valid JSON ({e}); refusing to overwrite");
                std::process::exit(1);
            }
        },
        Err(_) => Vec::new(),
    };
    trajectory.push(entry);
    let doc = JsonValue::object([
        ("schema", JsonValue::Str(schema.to_string())),
        ("trajectory", JsonValue::Array(trajectory)),
    ]);
    let errs = validate(&doc);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("perf: generated document failed validation: {e}");
        }
        std::process::exit(1);
    }
    std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| {
        eprintln!("perf: cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("perf: appended entry to {path}");
}

// ---------------------------------------------------------------------------
// Minimal JSON reader. Only needs to read files these harnesses wrote:
// objects, arrays, strings, numbers.

/// Recursive-descent reader producing [`JsonValue`] trees.
pub struct JsonReader<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> JsonReader<'a> {
    /// Parse `text` as one JSON document.
    pub fn parse(text: &'a str) -> Result<JsonValue, String> {
        let mut r = JsonReader {
            s: text.as_bytes(),
            pos: 0,
        };
        let v = r.value()?;
        r.skip_ws();
        if r.pos != r.s.len() {
            return Err(format!("trailing bytes at offset {}", r.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                c => return Err(format!("expected ',' or '}}', got '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                c => return Err(format!("expected ',' or ']', got '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.s.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-assemble multi-byte UTF-8 sequences verbatim.
                    let start = self.pos - 1;
                    while self.pos < self.s.len() && self.s[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.s[start..self.pos])
                            .map_err(|_| "invalid utf-8 in string")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len()
            && matches!(
                self.s[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).map_err(|_| "bad number")?;
        if text.is_empty() {
            return Err(format!("expected a value at offset {start}"));
        }
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::Uint(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_roundtrips_own_output() {
        let doc = JsonValue::object([
            ("schema", JsonValue::Str(FLEET_SCHEMA.to_string())),
            ("n", JsonValue::Uint(42)),
            ("x", JsonValue::Float(1.5)),
            (
                "arr",
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        let text = format!("{doc}");
        let back = JsonReader::parse(&text).unwrap();
        assert_eq!(format!("{back}"), text);
    }

    #[test]
    fn validate_accepts_both_schemas_and_rejects_unknown() {
        let entry = |names: &[&str]| {
            JsonValue::object([
                ("label", JsonValue::Str("t".into())),
                ("mode", JsonValue::Str("smoke".into())),
                ("runs", JsonValue::Uint(1)),
                (
                    "scenarios",
                    JsonValue::Array(
                        names
                            .iter()
                            .map(|n| {
                                let mut fields =
                                    vec![("name".to_string(), JsonValue::Str(n.to_string()))];
                                for f in SCENARIO_NUMBER_FIELDS {
                                    fields.push((f.to_string(), JsonValue::Float(1.0)));
                                }
                                JsonValue::Object(fields)
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let doc = |schema: &str, names: &[&str]| {
            JsonValue::object([
                ("schema", JsonValue::Str(schema.to_string())),
                ("trajectory", JsonValue::Array(vec![entry(names)])),
            ])
        };
        assert!(validate(&doc(PERF_SCHEMA, &PERF_SCENARIOS)).is_empty());
        assert!(validate(&doc(FLEET_SCHEMA, &FLEET_SCENARIOS)).is_empty());
        assert!(!validate(&doc("gvfs.bogus.v9", &PERF_SCENARIOS)).is_empty());
        // A fleet doc missing churn_1000 must fail.
        assert!(!validate(&doc(FLEET_SCHEMA, &["fleet_smoke"])).is_empty());
    }
}
