//! Criterion microbenchmarks for the hot data paths: the XDR codec, the
//! zero-aware compressor, the set-associative block cache's index math,
//! the sparse byte store, and an end-to-end RPC round trip on the
//! simulated transport. These guard the *wall-clock* cost of running the
//! figures, not virtual-time results.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use gvfs::{codec, BlockCache, BlockCacheConfig, Tag};
use oncrpc::{AuthSys, Dispatcher, OpaqueAuth, RpcClient, WireSpec};
use simnet::{Env, Link, SimDuration, Simulation};
use vfs::{Disk, DiskModel, SparseBytes};
use xdr::{Decoder, Encoder};

fn bench_xdr(c: &mut Criterion) {
    let mut g = c.benchmark_group("xdr");
    let block = vec![0xA5u8; 32 * 1024];
    g.throughput(Throughput::Bytes(block.len() as u64));
    g.bench_function("encode_32k_read_reply", |b| {
        b.iter(|| {
            let mut enc = Encoder::with_capacity(block.len() + 64);
            enc.put_u32(0);
            enc.put_bool(false);
            enc.put_u32(block.len() as u32);
            enc.put_bool(true);
            enc.put_opaque_var(&block);
            enc.into_bytes()
        })
    });
    let encoded = {
        let mut enc = Encoder::new();
        enc.put_u32(0);
        enc.put_bool(false);
        enc.put_u32(block.len() as u32);
        enc.put_bool(true);
        enc.put_opaque_var(&block);
        enc.into_bytes()
    };
    g.bench_function("decode_32k_read_reply", |b| {
        b.iter(|| {
            let mut dec = Decoder::new(&encoded);
            let _ = dec.get_u32().unwrap();
            let _ = dec.get_bool().unwrap();
            let _ = dec.get_u32().unwrap();
            let _ = dec.get_bool().unwrap();
            dec.get_opaque_var().unwrap()
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    // A memory-image-like megabyte: 90% zeros.
    let mut data = vec![0u8; 1 << 20];
    for i in 0..26 {
        let off = i * 40_000;
        for j in 0..4_000 {
            data[off + j] = ((i * 31 + j) % 251) as u8;
        }
    }
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_sparse_1m", |b| b.iter(|| codec::compress(&data)));
    let compressed = codec::compress(&data);
    g.bench_function("decompress_sparse_1m", |b| {
        b.iter(|| codec::decompress(&compressed).unwrap())
    });
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_bytes");
    g.bench_function("write_read_sparse_far_offset", |b| {
        b.iter_batched(
            SparseBytes::new,
            |mut s| {
                s.write_at(1 << 30, &[1u8; 65536]);
                s.truncate(2 << 30);
                s.read_range((1 << 30) - 100, 66000)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("is_zero_range_512m_hole", |b| {
        let mut s = SparseBytes::new();
        s.truncate(1 << 30);
        s.write_at(512 << 20, &[1]);
        b.iter(|| s.is_zero_range(0, 512 << 20))
    });
    g.finish();
}

fn bench_block_cache(c: &mut Criterion) {
    // Real virtual-time cache ops executed inside a tiny simulation.
    let mut g = c.benchmark_group("block_cache");
    g.bench_function("insert_lookup_1000", |b| {
        b.iter(|| {
            let sim = Simulation::new();
            let h = sim.handle();
            let cache = Arc::new(BlockCache::new(
                &h,
                Disk::new(&h, DiskModel::scsi_2004()),
                BlockCacheConfig::with_capacity(64 << 20, 16, 8, 32 * 1024),
            ));
            let c2 = cache.clone();
            sim.spawn("b", move |env: Env| {
                for i in 0..1000u64 {
                    let tag = Tag {
                        fileid: 1,
                        generation: 1,
                        block: i,
                    };
                    c2.insert(&env, tag, vec![0u8; 1024], false);
                }
                for i in 0..1000u64 {
                    let tag = Tag {
                        fileid: 1,
                        generation: 1,
                        block: i,
                    };
                    let _ = c2.lookup(&env, tag);
                }
            });
            sim.run()
        })
    });
    g.finish();
}

fn bench_rpc_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_rpc");
    g.bench_function("null_call_roundtrip_x100", |b| {
        b.iter(|| {
            let sim = Simulation::new();
            let h = sim.handle();
            let up = Link::new(&h, "up", 1e9, SimDuration::from_micros(50));
            let down = Link::new(&h, "down", 1e9, SimDuration::from_micros(50));
            let ep = oncrpc::endpoint(&h, up, down, WireSpec::plain());
            ep.listener
                .serve("echo", Dispatcher::new().into_handler(), 1);
            let rpc = RpcClient::new(ep.channel, OpaqueAuth::sys(&AuthSys::new("b", 1, 1)));
            sim.spawn("client", move |env: Env| {
                for _ in 0..100 {
                    // Unknown program: server answers PROG_UNAVAIL — a
                    // full encode/transfer/dispatch/reply cycle.
                    let _ = rpc.call(&env, 42, 1, 0, &[]);
                }
            });
            sim.run()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_xdr, bench_codec, bench_sparse, bench_block_cache, bench_rpc_roundtrip
}
criterion_main!(benches);
