//! Property-based invariants for the filesystem substrate.

use proptest::prelude::*;
use vfs::{Fs, LruMap, SparseBytes};

proptest! {
    /// SparseBytes matches a dense reference model under arbitrary
    /// write/truncate/read sequences.
    #[test]
    fn sparse_bytes_matches_dense_model(
        ops in proptest::collection::vec(
            prop_oneof![
                // (offset, data) write
                (0u64..300_000, proptest::collection::vec(any::<u8>(), 0..5_000)).prop_map(|(o, d)| (0u8, o, d)),
                // truncate
                (0u64..300_000).prop_map(|n| (1u8, n, Vec::new())),
            ],
            1..25
        )
    ) {
        let mut sparse = SparseBytes::new();
        let mut dense: Vec<u8> = Vec::new();
        for (kind, off, data) in ops {
            match kind {
                0 => {
                    sparse.write_at(off, &data);
                    let end = off as usize + data.len();
                    if dense.len() < end {
                        dense.resize(end, 0);
                    }
                    dense[off as usize..end].copy_from_slice(&data);
                }
                _ => {
                    sparse.truncate(off);
                    dense.resize(off as usize, 0);
                }
            }
            prop_assert_eq!(sparse.len(), dense.len() as u64);
        }
        // Full-content equality.
        prop_assert_eq!(sparse.read_range(0, dense.len()), dense.clone());
        // Random window equality.
        if !dense.is_empty() {
            let mid = dense.len() / 2;
            prop_assert_eq!(sparse.read_range(mid as u64, 1000),
                dense[mid..(mid + 1000).min(dense.len())].to_vec());
        }
        // is_zero_range agrees with the dense model.
        let probe = dense.len() / 3;
        let window = 700.min(dense.len().saturating_sub(probe));
        let dense_zero = dense[probe..probe + window].iter().all(|&b| b == 0);
        prop_assert_eq!(sparse.is_zero_range(probe as u64, window), dense_zero);
    }

    /// The LRU map never exceeds capacity, and membership matches a
    /// naive model.
    #[test]
    fn lru_matches_naive_model(
        cap in 1usize..20,
        ops in proptest::collection::vec((0u32..40, any::<bool>()), 1..200)
    ) {
        let mut lru = LruMap::new(cap);
        let mut model: Vec<u32> = Vec::new(); // MRU-first
        for (key, is_insert) in ops {
            if is_insert {
                lru.insert(key, ());
                model.retain(|&k| k != key);
                model.insert(0, key);
                model.truncate(cap);
            } else {
                let hit = lru.get(&key).is_some();
                let model_hit = model.contains(&key);
                prop_assert_eq!(hit, model_hit);
                if model_hit {
                    model.retain(|&k| k != key);
                    model.insert(0, key);
                }
            }
            prop_assert!(lru.len() <= cap);
            prop_assert_eq!(lru.len(), model.len());
        }
        let order: Vec<u32> = lru.iter_mru().map(|(k, _)| *k).collect();
        prop_assert_eq!(order, model);
    }

    /// Filesystem namespace operations keep lookup/readdir consistent.
    #[test]
    fn fs_namespace_stays_consistent(names in proptest::collection::vec("[a-z]{1,8}", 1..20)) {
        let mut fs = Fs::new(0);
        let root = fs.root();
        let mut expect: Vec<String> = Vec::new();
        for n in &names {
            match fs.create(root, n, 0o644, 0) {
                Ok(_) => expect.push(n.clone()),
                Err(vfs::FsError::Exists) => {}
                Err(e) => return Err(TestCaseError::fail(format!("{e:?}"))),
            }
        }
        expect.sort();
        expect.dedup();
        let listed: Vec<String> = fs.readdir(root).unwrap().into_iter().map(|(n, _)| n).collect();
        prop_assert_eq!(&listed, &expect);
        for n in &expect {
            prop_assert!(fs.lookup(root, n).is_ok());
        }
        // Remove half, verify again.
        let (gone, kept) = expect.split_at(expect.len() / 2);
        for n in gone {
            fs.remove(root, n, 1).unwrap();
        }
        for n in gone {
            prop_assert!(fs.lookup(root, n).is_err());
        }
        for n in kept {
            prop_assert!(fs.lookup(root, n).is_ok());
        }
    }

    /// File writes through Fs read back exactly (offset reads included).
    #[test]
    fn fs_file_io_round_trips(
        writes in proptest::collection::vec((0u64..100_000, proptest::collection::vec(any::<u8>(), 1..2_000)), 1..10)
    ) {
        let mut fs = Fs::new(0);
        let root = fs.root();
        let f = fs.create(root, "f", 0o644, 0).unwrap();
        let mut dense: Vec<u8> = Vec::new();
        for (off, data) in &writes {
            fs.write(f, *off, data, 0).unwrap();
            let end = *off as usize + data.len();
            if dense.len() < end {
                dense.resize(end, 0);
            }
            dense[*off as usize..end].copy_from_slice(data);
        }
        let (back, eof) = fs.read(f, 0, dense.len() + 10, 0).unwrap();
        prop_assert_eq!(back, dense.clone());
        prop_assert!(eof);
        prop_assert_eq!(fs.size(f).unwrap(), dense.len() as u64);
    }
}
