//! Host-side file I/O abstraction.
//!
//! The VM monitor model and the workload generators perform file I/O
//! through [`FileIo`], so the same guest trace can run against:
//!
//! * [`LocalIo`] — a local-disk filesystem on the compute server
//!   (the paper's **Local** scenario),
//! * `nfs3::KernelClient` — a kernel NFS client over a LAN or WAN mount,
//!   optionally behind GVFS proxies (the **LAN/WAN/WAN+C** scenarios), or
//! * a [`MountTable`] composing several of the above, which is how a
//!   cloned VM's local directory holds symlinks into the NFS-mounted
//!   image-server directory.

use std::sync::Arc;

use parking_lot::Mutex;
use simnet::Env;

use crate::disk::Disk;
use crate::fs::{Attr, Fs, FsError, Handle};
use crate::lru::LruMap;

/// Errors surfaced by host file I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// No such file or directory.
    NotFound,
    /// Already exists.
    Exists,
    /// Component is not a directory.
    NotDir,
    /// Target is a directory.
    IsDir,
    /// Directory not empty.
    NotEmpty,
    /// Stale handle.
    Stale,
    /// Invalid name.
    InvalidName,
    /// Wrong file type for the operation.
    BadType,
    /// Transport or protocol failure (NFS backends).
    Io(String),
    /// Operation unsupported by this backend.
    Unsupported,
}

impl From<FsError> for IoError {
    fn from(e: FsError) -> Self {
        match e {
            FsError::NotFound => IoError::NotFound,
            FsError::Exists => IoError::Exists,
            FsError::NotDir => IoError::NotDir,
            FsError::IsDir => IoError::IsDir,
            FsError::NotEmpty => IoError::NotEmpty,
            FsError::Stale => IoError::Stale,
            FsError::InvalidName => IoError::InvalidName,
            FsError::BadType => IoError::BadType,
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(m) => write!(f, "I/O error: {m}"),
            other => write!(f, "{other:?}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Result alias for host file I/O.
pub type IoResult<T> = Result<T, IoError>;

/// Blocking (in virtual time) file operations against one mounted
/// filesystem. Paths are relative to the mount root; handles come from
/// `lookup_path`/`create_path` and stay valid until removal.
pub trait FileIo: Send + Sync {
    /// Resolve a path to a handle.
    fn lookup_path(&self, env: &Env, path: &str) -> IoResult<Handle>;
    /// Attributes of a handle.
    fn getattr(&self, env: &Env, h: Handle) -> IoResult<Attr>;
    /// Read up to `len` bytes at `offset` (short only at EOF).
    fn read(&self, env: &Env, h: Handle, offset: u64, len: u32) -> IoResult<Vec<u8>>;
    /// Write bytes at `offset`.
    fn write(&self, env: &Env, h: Handle, offset: u64, data: &[u8]) -> IoResult<()>;
    /// Create a regular file (parent directories must exist).
    fn create_path(&self, env: &Env, path: &str) -> IoResult<Handle>;
    /// Create a directory.
    fn mkdir_path(&self, env: &Env, path: &str) -> IoResult<Handle>;
    /// Create a symlink at `path` pointing to `target`.
    fn symlink_path(&self, env: &Env, path: &str, target: &str) -> IoResult<()>;
    /// Read a symlink's target.
    fn readlink(&self, env: &Env, h: Handle) -> IoResult<String>;
    /// List directory entries (names only).
    fn readdir_path(&self, env: &Env, path: &str) -> IoResult<Vec<String>>;
    /// Remove a file or symlink.
    fn remove_path(&self, env: &Env, path: &str) -> IoResult<()>;
    /// Truncate/extend a file.
    fn set_size(&self, env: &Env, h: Handle, size: u64) -> IoResult<()>;
    /// Close-to-open: flush this file's dirty data.
    fn close(&self, env: &Env, h: Handle) -> IoResult<()>;
    /// Flush everything (unmount / session end).
    fn sync(&self, env: &Env) -> IoResult<()>;
}

/// Split a path into (parent, name).
pub fn split_path(path: &str) -> IoResult<(&str, &str)> {
    let trimmed = path.trim_end_matches('/');
    if trimmed.is_empty() {
        return Err(IoError::InvalidName);
    }
    match trimmed.rfind('/') {
        Some(i) => Ok((&trimmed[..i], &trimmed[i + 1..])),
        None => Ok(("", trimmed)),
    }
}

// ---------------------------------------------------------------------------
// LocalIo: local-disk filesystem with a page-cache model
// ---------------------------------------------------------------------------

/// Configuration for [`LocalIo`]'s page-cache model.
#[derive(Debug, Clone, Copy)]
pub struct LocalIoConfig {
    /// Page/block size for cache accounting.
    pub block_size: u32,
    /// Page cache capacity in bytes.
    pub cache_bytes: u64,
    /// CPU cost of a cache-hit block copy.
    pub hit_cost: simnet::SimDuration,
}

impl Default for LocalIoConfig {
    fn default() -> Self {
        LocalIoConfig {
            block_size: 32 * 1024,
            cache_bytes: 512 * 1024 * 1024,
            hit_cost: simnet::SimDuration::from_micros(20),
        }
    }
}

struct LocalState {
    fs: Fs,
    cache: LruMap<(u64, u64), bool>, // (fileid, block) -> dirty
    dirty_blocks: u64,
    last_block_read: Option<(u64, u64)>,
}

/// Local-disk backend: a [`Fs`] plus a [`Disk`] timing model and an LRU
/// page cache. Reads hit the cache or pay disk time (sequential reads are
/// detected and skip positioning); writes are write-back into the page
/// cache, flushed on [`FileIo::close`]/[`FileIo::sync`].
pub struct LocalIo {
    state: Mutex<LocalState>,
    disk: Disk,
    cfg: LocalIoConfig,
}

impl LocalIo {
    /// Create a local filesystem over `disk`.
    pub fn new(disk: Disk, cfg: LocalIoConfig, now_ns: u64) -> Arc<Self> {
        Arc::new(LocalIo {
            state: Mutex::new(LocalState {
                fs: Fs::new(now_ns),
                cache: LruMap::new(((cfg.cache_bytes / cfg.block_size as u64) as usize).max(1)),
                dirty_blocks: 0,
                last_block_read: None,
            }),
            disk,
            cfg,
        })
    }

    /// Run an arbitrary operation against the underlying [`Fs`] (used by
    /// scenario setup code to pre-populate images without timing cost).
    pub fn with_fs<R>(&self, f: impl FnOnce(&mut Fs) -> R) -> R {
        f(&mut self.state.lock().fs)
    }

    fn block_range(&self, offset: u64, len: usize) -> (u64, u64) {
        let bs = self.cfg.block_size as u64;
        let first = offset / bs;
        let last = if len == 0 {
            first
        } else {
            (offset + len as u64 - 1) / bs
        };
        (first, last)
    }

    /// Charge time for touching blocks `[first..=last]` of `fileid`;
    /// returns the number of cache misses.
    fn charge_read(&self, env: &Env, fileid: u64, first: u64, last: u64) -> u64 {
        let mut misses = 0;
        for b in first..=last {
            let (hit, sequential) = {
                let mut st = self.state.lock();
                let hit = st.cache.get(&(fileid, b)).is_some();
                let sequential = st.last_block_read == Some((fileid, b.wrapping_sub(1)));
                st.last_block_read = Some((fileid, b));
                if !hit {
                    if let Some(((_ef, _eb), dirty)) = st.cache.insert((fileid, b), false) {
                        if dirty {
                            st.dirty_blocks = st.dirty_blocks.saturating_sub(1);
                            // Evicted dirty page: background write-back
                            // coalesces, so charge streaming time.
                            drop(st);
                            self.disk.stream_io(env, self.cfg.block_size as u64);
                            misses += 1;
                            env.sleep(self.cfg.hit_cost);
                            continue;
                        }
                    }
                }
                (hit, sequential)
            };
            if hit {
                env.sleep(self.cfg.hit_cost);
            } else {
                misses += 1;
                if sequential {
                    self.disk.stream_io(env, self.cfg.block_size as u64);
                } else {
                    self.disk.random_io(env, self.cfg.block_size as u64);
                }
            }
        }
        misses
    }

    fn charge_write(&self, env: &Env, fileid: u64, first: u64, last: u64) {
        for b in first..=last {
            let evicted_dirty = {
                let mut st = self.state.lock();
                let was_dirty = st.cache.get(&(fileid, b)).copied().unwrap_or(false);
                let evicted = st.cache.insert((fileid, b), true);
                if !was_dirty {
                    st.dirty_blocks += 1;
                }
                match evicted {
                    Some((_, true)) => {
                        st.dirty_blocks = st.dirty_blocks.saturating_sub(1);
                        true
                    }
                    _ => false,
                }
            };
            env.sleep(self.cfg.hit_cost);
            if evicted_dirty {
                self.disk.stream_io(env, self.cfg.block_size as u64);
            }
        }
    }

    fn flush_dirty(&self, env: &Env, only_file: Option<u64>) {
        // Collect dirty blocks, clear their dirty bits, then pay one
        // sequential streaming charge — matching how a real page cache
        // coalesces write-back.
        let flushed = {
            let mut st = self.state.lock();
            let keys: Vec<(u64, u64)> = st
                .cache
                .iter_mru()
                .filter(|((f, _), dirty)| **dirty && only_file.is_none_or(|of| *f == of))
                .map(|(k, _)| *k)
                .collect();
            for k in &keys {
                if let Some(d) = st.cache.get_mut(k) {
                    *d = false;
                }
            }
            st.dirty_blocks = st.dirty_blocks.saturating_sub(keys.len() as u64);
            keys.len() as u64
        };
        if flushed > 0 {
            self.disk
                .sequential_io(env, flushed * self.cfg.block_size as u64);
        }
    }
}

impl FileIo for LocalIo {
    fn lookup_path(&self, _env: &Env, path: &str) -> IoResult<Handle> {
        Ok(self.state.lock().fs.resolve(path)?)
    }

    fn getattr(&self, _env: &Env, h: Handle) -> IoResult<Attr> {
        Ok(self.state.lock().fs.getattr(h)?)
    }

    fn read(&self, env: &Env, h: Handle, offset: u64, len: u32) -> IoResult<Vec<u8>> {
        let data = {
            let mut st = self.state.lock();
            let now = env.now().as_nanos();
            let (data, _eof) = st.fs.read(h, offset, len as usize, now)?;
            data
        };
        if !data.is_empty() {
            let (first, last) = self.block_range(offset, data.len());
            self.charge_read(env, h.fileid, first, last);
        }
        Ok(data)
    }

    fn write(&self, env: &Env, h: Handle, offset: u64, data: &[u8]) -> IoResult<()> {
        {
            let mut st = self.state.lock();
            let now = env.now().as_nanos();
            st.fs.write(h, offset, data, now)?;
        }
        if !data.is_empty() {
            let (first, last) = self.block_range(offset, data.len());
            self.charge_write(env, h.fileid, first, last);
        }
        Ok(())
    }

    fn create_path(&self, env: &Env, path: &str) -> IoResult<Handle> {
        let (parent, name) = split_path(path)?;
        let mut st = self.state.lock();
        let dir = st.fs.resolve(parent)?;
        let now = env.now().as_nanos();
        Ok(st.fs.create(dir, name, 0o644, now)?)
    }

    fn mkdir_path(&self, env: &Env, path: &str) -> IoResult<Handle> {
        let (parent, name) = split_path(path)?;
        let mut st = self.state.lock();
        let dir = st.fs.resolve(parent)?;
        let now = env.now().as_nanos();
        Ok(st.fs.mkdir(dir, name, 0o755, now)?)
    }

    fn symlink_path(&self, env: &Env, path: &str, target: &str) -> IoResult<()> {
        let (parent, name) = split_path(path)?;
        let mut st = self.state.lock();
        let dir = st.fs.resolve(parent)?;
        let now = env.now().as_nanos();
        st.fs.symlink(dir, name, target, now)?;
        Ok(())
    }

    fn readlink(&self, _env: &Env, h: Handle) -> IoResult<String> {
        Ok(self.state.lock().fs.readlink(h)?)
    }

    fn readdir_path(&self, _env: &Env, path: &str) -> IoResult<Vec<String>> {
        let st = self.state.lock();
        let dir = st.fs.resolve(path)?;
        Ok(st.fs.readdir(dir)?.into_iter().map(|(n, _)| n).collect())
    }

    fn remove_path(&self, env: &Env, path: &str) -> IoResult<()> {
        let (parent, name) = split_path(path)?;
        let mut st = self.state.lock();
        let dir = st.fs.resolve(parent)?;
        let now = env.now().as_nanos();
        match st.fs.remove(dir, name, now) {
            Ok(()) => Ok(()),
            Err(FsError::IsDir) => Ok(st.fs.rmdir(dir, name, now)?),
            Err(e) => Err(e.into()),
        }
    }

    fn set_size(&self, env: &Env, h: Handle, size: u64) -> IoResult<()> {
        let mut st = self.state.lock();
        let now = env.now().as_nanos();
        st.fs.setattr(h, Some(size), None, now)?;
        Ok(())
    }

    fn close(&self, env: &Env, h: Handle) -> IoResult<()> {
        self.flush_dirty(env, Some(h.fileid));
        Ok(())
    }

    fn sync(&self, env: &Env) -> IoResult<()> {
        self.flush_dirty(env, None);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MountTable: prefix-routed composition of FileIo backends
// ---------------------------------------------------------------------------

/// Routes absolute paths to mounted backends by longest prefix, and
/// resolves symlinks across mounts (a cloned VM's local `.vmdk` symlink
/// points into the NFS mount). This is the compute-server "host kernel
/// VFS" glue.
pub struct MountTable {
    mounts: Vec<(String, Arc<dyn FileIo>)>,
}

/// A handle plus the backend it belongs to, as returned by
/// [`MountTable::open`].
#[derive(Clone)]
pub struct OpenFile {
    /// Backend serving this file.
    pub io: Arc<dyn FileIo>,
    /// Backend-local handle.
    pub handle: Handle,
}

impl MountTable {
    /// Empty table.
    pub fn new() -> Self {
        MountTable { mounts: Vec::new() }
    }

    /// Mount `io` at absolute path `prefix` (e.g. `/vm` or `/mnt/gvfs`).
    pub fn mount(mut self, prefix: impl Into<String>, io: Arc<dyn FileIo>) -> Self {
        let mut p = prefix.into();
        if !p.starts_with('/') {
            p.insert(0, '/');
        }
        let trimmed = p.trim_end_matches('/');
        let key = if trimmed.is_empty() {
            "/".to_string()
        } else {
            trimmed.to_string()
        };
        self.mounts.push((key, io));
        // Longest prefix first.
        self.mounts.sort_by_key(|m| std::cmp::Reverse(m.0.len()));
        self
    }

    /// Find the backend and mount-relative path for an absolute path.
    pub fn route(&self, path: &str) -> IoResult<(Arc<dyn FileIo>, String)> {
        for (prefix, io) in &self.mounts {
            let rel = if prefix == "/" {
                Some(path.trim_start_matches('/'))
            } else if path == prefix {
                Some("")
            } else {
                path.strip_prefix(prefix.as_str())
                    .and_then(|r| r.strip_prefix('/'))
            };
            if let Some(rel) = rel {
                return Ok((io.clone(), rel.to_string()));
            }
        }
        Err(IoError::NotFound)
    }

    /// Resolve a path to an open file, following symlinks (bounded depth)
    /// across mounts.
    pub fn open(&self, env: &Env, path: &str) -> IoResult<OpenFile> {
        let mut current = path.to_string();
        for _ in 0..8 {
            let (io, rel) = self.route(&current)?;
            let h = io.lookup_path(env, &rel)?;
            let attr = io.getattr(env, h)?;
            if attr.ftype == crate::fs::FileType::Symlink {
                let target = io.readlink(env, h)?;
                current = if target.starts_with('/') {
                    target
                } else {
                    let (dir, _) = split_path(&current)?;
                    format!("{dir}/{target}")
                };
                continue;
            }
            return Ok(OpenFile { io, handle: h });
        }
        Err(IoError::Io("symlink loop".into()))
    }
}

impl Default for MountTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskModel;
    use simnet::{SimDuration, Simulation};

    fn local(sim: &Simulation) -> Arc<LocalIo> {
        LocalIo::new(
            Disk::new(&sim.handle(), DiskModel::scsi_2004()),
            LocalIoConfig::default(),
            0,
        )
    }

    #[test]
    fn local_io_create_write_read_round_trip() {
        let sim = Simulation::new();
        let io = local(&sim);
        sim.spawn("t", move |env| {
            io.mkdir_path(&env, "vm").unwrap();
            let h = io.create_path(&env, "vm/disk.vmdk").unwrap();
            io.write(&env, h, 0, b"hello vm").unwrap();
            let back = io.read(&env, h, 0, 100).unwrap();
            assert_eq!(back, b"hello vm");
            io.close(&env, h).unwrap();
        });
        sim.run();
    }

    #[test]
    fn cached_rereads_are_much_faster_than_cold() {
        let sim = Simulation::new();
        let io = local(&sim);
        sim.spawn("t", move |env| {
            let h = io.create_path(&env, "big").unwrap();
            io.write(&env, h, 0, &vec![7u8; 1 << 20]).unwrap();
            io.close(&env, h).unwrap();
            let t0 = env.now();
            io.read(&env, h, 0, 1 << 20).unwrap();
            let warm = env.now() - t0;
            // All blocks were just written => cache-resident; a warm read
            // of 32 blocks costs only hit time.
            assert!(warm < SimDuration::from_millis(10), "warm read took {warm}");
        });
        sim.run();
    }

    #[test]
    fn mount_table_routes_longest_prefix() {
        let sim = Simulation::new();
        let a = local(&sim);
        let b = local(&sim);
        let table = MountTable::new()
            .mount("/", a.clone())
            .mount("/mnt/images", b.clone());
        sim.spawn("t", move |env| {
            b.create_path(&env, "golden.vmdk").unwrap();
            a.mkdir_path(&env, "tmp").unwrap();
            a.create_path(&env, "tmp/x").unwrap();
            assert!(table.open(&env, "/mnt/images/golden.vmdk").is_ok());
            assert!(table.open(&env, "/tmp/x").is_ok());
            assert!(table.open(&env, "/mnt/images/nope").is_err());
        });
        sim.run();
    }

    #[test]
    fn symlinks_resolve_across_mounts() {
        let sim = Simulation::new();
        let localfs = local(&sim);
        let images = local(&sim);
        let table = MountTable::new()
            .mount("/", localfs.clone())
            .mount("/mnt/gvfs", images.clone());
        sim.spawn("t", move |env| {
            let gh = images.create_path(&env, "golden.vmdk").unwrap();
            images.write(&env, gh, 0, b"GOLDEN").unwrap();
            localfs.mkdir_path(&env, "vm").unwrap();
            localfs
                .symlink_path(&env, "vm/disk.vmdk", "/mnt/gvfs/golden.vmdk")
                .unwrap();
            let f = table.open(&env, "/vm/disk.vmdk").unwrap();
            let data = f.io.read(&env, f.handle, 0, 6).unwrap();
            assert_eq!(data, b"GOLDEN");
        });
        sim.run();
    }
}
