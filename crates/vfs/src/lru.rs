//! A small O(1) LRU map used for buffer-cache models.
//!
//! Both the NFS server's memory cache and the kernel NFS client's buffer
//! cache are modelled as block-granular LRU sets with bounded capacity —
//! the paper's motivation for proxy *disk* caches is precisely that these
//! memory caches suffer capacity misses on multi-gigabyte VM state.

use std::collections::HashMap;
use std::hash::Hash;

/// Doubly-linked-list node stored in a slab.
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// An LRU map with a fixed capacity in entries. Insertion beyond capacity
/// evicts the least-recently-used entry and returns it.
pub struct LruMap<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slab: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// Create an LRU map holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruMap {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn node(&self, idx: usize) -> &Node<K, V> {
        self.slab[idx].as_ref().expect("live LRU slot")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node<K, V> {
        self.slab[idx].as_mut().expect("live LRU slot")
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.node(idx);
            (n.prev, n.next)
        };
        if prev != NIL {
            self.node_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.node_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(idx);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up a key, marking it most-recently-used on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.node(idx).value)
    }

    /// Mutable lookup, marking the key most-recently-used on hit.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&mut self.node_mut(idx).value)
    }

    /// Whether a key is present, *without* touching recency.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert or update a key, marking it most-recently-used. Returns the
    /// evicted `(key, value)` if capacity was exceeded.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.node_mut(idx).value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL);
            self.unlink(tail);
            let node = self.slab[tail].take().expect("live LRU tail");
            self.map.remove(&node.key);
            self.free.push(tail);
            Some((node.key, node.value))
        } else {
            None
        };
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(node);
                i
            }
            None => {
                self.slab.push(Some(node));
                self.slab.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        let node = self.slab[idx].take().expect("live LRU slot");
        self.free.push(idx);
        Some(node.value)
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Iterate over `(key, value)` pairs from most- to least-recently-used.
    pub fn iter_mru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut idx = self.head;
        std::iter::from_fn(move || {
            if idx == NIL {
                return None;
            }
            let n = self.node(idx);
            idx = n.next;
            Some((&n.key, &n.value))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut lru = LruMap::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(&1), Some(&"a")); // 1 becomes MRU
        let evicted = lru.insert(3, "c");
        assert_eq!(evicted, Some((2, "b"))); // 2 was LRU
        assert!(lru.contains(&1));
        assert!(lru.contains(&3));
    }

    #[test]
    fn insert_existing_updates_value_without_evicting() {
        let mut lru = LruMap::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.insert(1, 11), None);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some(&11));
    }

    #[test]
    fn remove_frees_capacity() {
        let mut lru = LruMap::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.remove(&1), Some(10));
        assert_eq!(lru.insert(3, 30), None); // no eviction needed
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn eviction_order_is_strict_lru() {
        let mut lru = LruMap::new(3);
        for i in 0..3 {
            lru.insert(i, i);
        }
        lru.get(&0);
        lru.get(&2);
        // Recency now: 2, 0, 1 (MRU..LRU)
        assert_eq!(lru.insert(9, 9), Some((1, 1)));
        assert_eq!(lru.insert(10, 10), Some((0, 0)));
        assert_eq!(lru.insert(11, 11), Some((2, 2)));
    }

    #[test]
    fn iter_mru_walks_in_recency_order() {
        let mut lru = LruMap::new(4);
        for i in 0..4 {
            lru.insert(i, ());
        }
        lru.get(&1);
        let keys: Vec<i32> = lru.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 2, 0]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut lru = LruMap::new(2);
        lru.insert(1, 1);
        lru.clear();
        assert!(lru.is_empty());
        lru.insert(2, 2);
        assert_eq!(lru.get(&2), Some(&2));
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut lru = LruMap::new(64);
        for i in 0..10_000u64 {
            lru.insert(i % 200, i);
            if i % 3 == 0 {
                lru.get(&(i % 64));
            }
            if i % 7 == 0 {
                lru.remove(&(i % 50));
            }
            assert!(lru.len() <= 64);
        }
    }
}
