//! Disk timing model.
//!
//! Charges virtual time for disk accesses: a positioning cost per
//! operation plus a streaming cost per byte. A [`Disk`] wraps the model
//! with a FIFO arm resource, so concurrent simulated processes contend
//! for the spindle the way parallel clonings contend for the image
//! server's disk.

use simnet::{Env, Resource, SimDuration, SimHandle};

/// Pure timing model for one disk.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Positioning (seek + rotational) cost per random operation.
    pub seek: SimDuration,
    /// Streaming throughput, bytes per second.
    pub bytes_per_sec: f64,
}

impl DiskModel {
    /// A 2004-era SCSI disk like the compute servers' 18 GB drives:
    /// ~6 ms positioning, ~40 MB/s streaming.
    pub fn scsi_2004() -> Self {
        DiskModel {
            seek: SimDuration::from_micros(6_000),
            bytes_per_sec: 40.0e6,
        }
    }

    /// A RAID-backed server array: shorter effective positioning and
    /// higher throughput (the image servers' 45–576 GB arrays).
    pub fn server_array() -> Self {
        DiskModel {
            seek: SimDuration::from_micros(4_000),
            bytes_per_sec: 60.0e6,
        }
    }

    /// Time for a random access of `bytes`.
    pub fn random_access(&self, bytes: u64) -> SimDuration {
        self.seek + self.stream(bytes)
    }

    /// Time to stream `bytes` sequentially (no positioning cost).
    pub fn stream(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

/// A disk with contention: the arm is a FIFO resource, so only one
/// simulated operation positions/streams at a time.
#[derive(Clone)]
pub struct Disk {
    model: DiskModel,
    arm: Resource,
}

impl Disk {
    /// Create a disk from a timing model.
    pub fn new(handle: &SimHandle, model: DiskModel) -> Self {
        Disk {
            model,
            arm: Resource::new(handle, 1),
        }
    }

    /// The timing model.
    pub fn model(&self) -> DiskModel {
        self.model
    }

    /// Perform (pay for) a random read/write of `bytes`.
    pub fn random_io(&self, env: &Env, bytes: u64) {
        let _g = self.arm.acquire(env);
        // lint:allow(lock-guard-suspend): the arm Resource is held across the sleep on purpose — it models the head being busy for the access duration
        env.sleep(self.model.random_access(bytes));
    }

    /// Perform (pay for) a sequential transfer of `bytes` with a single
    /// initial positioning.
    pub fn sequential_io(&self, env: &Env, bytes: u64) {
        let _g = self.arm.acquire(env);
        // lint:allow(lock-guard-suspend): arm occupancy across the transfer is the serialization being simulated, not an accidental hold
        env.sleep(self.model.seek + self.model.stream(bytes));
    }

    /// Perform (pay for) a streaming continuation of `bytes`: no
    /// positioning cost. Used when the caller has detected that this
    /// access directly follows the previous one (readahead-style
    /// sequential block access).
    pub fn stream_io(&self, env: &Env, bytes: u64) {
        let _g = self.arm.acquire(env);
        // lint:allow(lock-guard-suspend): arm occupancy across the streamed transfer is intentional, same as sequential_io
        env.sleep(self.model.stream(bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Simulation;

    #[test]
    fn model_times_add_up() {
        let m = DiskModel {
            seek: SimDuration::from_millis(5),
            bytes_per_sec: 50e6,
        };
        let t = m.random_access(50_000_000);
        assert!((t.as_secs_f64() - 1.005).abs() < 1e-9);
        assert_eq!(m.stream(0), SimDuration::ZERO);
    }

    #[test]
    fn disk_serializes_concurrent_access() {
        let sim = Simulation::new();
        let h = sim.handle();
        let disk = Disk::new(
            &h,
            DiskModel {
                seek: SimDuration::from_millis(10),
                bytes_per_sec: 1e9,
            },
        );
        for i in 0..3 {
            let d = disk.clone();
            sim.spawn(format!("io{i}"), move |env| {
                d.random_io(&env, 0);
            });
        }
        let end = sim.run();
        // Three 10 ms seeks serialized on one arm.
        assert!((end.as_secs_f64() - 0.030).abs() < 1e-9);
    }
}
