//! # vfs — filesystem substrate for the GVFS reproduction
//!
//! An inode-based, sparse, in-memory filesystem ([`Fs`]) with
//! generation-checked handles; a disk timing model ([`Disk`],
//! [`DiskModel`]); and an O(1) [`LruMap`] used to model bounded
//! memory buffer caches.
//!
//! The simulated kernel NFS servers (image/data servers) export an `Fs`;
//! compute servers use one as the local disk filesystem; VM state files
//! (multi-gigabyte `.vmdk`/`.vmss`) are stored sparsely so the whole
//! evaluation fits comfortably in RAM.

#![warn(missing_docs)]

mod disk;
mod fs;
pub mod io;
mod lru;
mod sparse;

pub use disk::{Disk, DiskModel};
pub use fs::{Attr, FileId, FileType, Fs, FsError, FsResult, Handle};
pub use io::{FileIo, IoError, IoResult, LocalIo, LocalIoConfig, MountTable, OpenFile};
pub use lru::LruMap;
pub use sparse::{SparseBytes, CHUNK_SIZE};
