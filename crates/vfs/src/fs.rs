//! Inode-based in-memory filesystem.
//!
//! This is the storage substrate exported by the simulated kernel NFS
//! servers (image servers, data servers) and used for compute-server local
//! disks. It supports the full set of namespace operations NFSv3 needs —
//! lookup, create, mkdir, symlink, readlink, remove, rmdir, rename,
//! readdir — plus offset reads/writes backed by sparse storage, and
//! generation-checked file handles so stale handles are detected like on a
//! real server.

use std::collections::BTreeMap;

use crate::sparse::SparseBytes;

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

/// Opaque, generation-checked file handle (what NFS hands to clients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle {
    /// Inode number.
    pub fileid: u64,
    /// Inode generation, bumped on reuse, so stale handles are caught.
    pub generation: u64,
}

impl Handle {
    /// Serialize to the 16-byte opaque form used on the wire.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.fileid.to_be_bytes());
        b[8..].copy_from_slice(&self.generation.to_be_bytes());
        b
    }

    /// Parse the 16-byte opaque form.
    pub fn from_bytes(b: &[u8]) -> Option<Handle> {
        if b.len() != 16 {
            return None;
        }
        Some(Handle {
            fileid: u64::from_be_bytes(b[..8].try_into().unwrap()),
            generation: u64::from_be_bytes(b[8..].try_into().unwrap()),
        })
    }
}

/// File type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

/// Inode attributes (the information NFS `fattr3` reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// File type.
    pub ftype: FileType,
    /// Permission bits.
    pub mode: u32,
    /// Link count.
    pub nlink: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Logical size in bytes.
    pub size: u64,
    /// Bytes actually allocated.
    pub used: u64,
    /// Inode number.
    pub fileid: u64,
    /// Last access time, nanoseconds on the simulation clock.
    pub atime_ns: u64,
    /// Last modification time.
    pub mtime_ns: u64,
    /// Last attribute change time.
    pub ctime_ns: u64,
}

/// Filesystem errors, mirroring the NFSv3 status codes that matter here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// No such file or directory.
    NotFound,
    /// Operation on a non-directory where a directory was required.
    NotDir,
    /// Directory where a file was required.
    IsDir,
    /// Target already exists.
    Exists,
    /// Directory not empty.
    NotEmpty,
    /// Handle generation mismatch or never-allocated inode.
    Stale,
    /// Invalid name (empty, contains '/', or '.'/'..').
    InvalidName,
    /// Operation not supported on this file type.
    BadType,
}

/// Result alias for filesystem operations.
pub type FsResult<T> = Result<T, FsError>;

enum NodeData {
    File(SparseBytes),
    Dir(BTreeMap<String, u64>),
    Symlink(String),
}

struct Inode {
    generation: u64,
    mode: u32,
    uid: u32,
    gid: u32,
    nlink: u32,
    atime_ns: u64,
    mtime_ns: u64,
    ctime_ns: u64,
    data: NodeData,
}

/// The in-memory filesystem.
pub struct Fs {
    inodes: Vec<Option<Inode>>,
    free: Vec<usize>,
    next_generation: u64,
    root: Handle,
}

impl Fs {
    /// Create a filesystem with an empty root directory.
    pub fn new(now_ns: u64) -> Self {
        let root_inode = Inode {
            generation: 1,
            mode: 0o755,
            uid: 0,
            gid: 0,
            nlink: 2,
            atime_ns: now_ns,
            mtime_ns: now_ns,
            ctime_ns: now_ns,
            data: NodeData::Dir(BTreeMap::new()),
        };
        Fs {
            inodes: vec![Some(root_inode)],
            free: Vec::new(),
            next_generation: 2,
            root: Handle {
                fileid: 0,
                generation: 1,
            },
        }
    }

    /// Handle of the root directory.
    pub fn root(&self) -> Handle {
        self.root
    }

    fn check(&self, h: Handle) -> FsResult<&Inode> {
        self.inodes
            .get(h.fileid as usize)
            .and_then(|o| o.as_ref())
            .filter(|i| i.generation == h.generation)
            .ok_or(FsError::Stale)
    }

    fn check_mut(&mut self, h: Handle) -> FsResult<&mut Inode> {
        self.inodes
            .get_mut(h.fileid as usize)
            .and_then(|o| o.as_mut())
            .filter(|i| i.generation == h.generation)
            .ok_or(FsError::Stale)
    }

    fn alloc(&mut self, inode: Inode) -> Handle {
        let generation = inode.generation;
        let fileid = match self.free.pop() {
            Some(slot) => {
                self.inodes[slot] = Some(inode);
                slot as u64
            }
            None => {
                self.inodes.push(Some(inode));
                (self.inodes.len() - 1) as u64
            }
        };
        Handle { fileid, generation }
    }

    fn validate_name(name: &str) -> FsResult<()> {
        if name.is_empty() || name == "." || name == ".." || name.contains('/') {
            return Err(FsError::InvalidName);
        }
        Ok(())
    }

    /// Attributes for a handle.
    pub fn getattr(&self, h: Handle) -> FsResult<Attr> {
        let i = self.check(h)?;
        let (ftype, size, used) = match &i.data {
            NodeData::File(s) => (FileType::Regular, s.len(), s.allocated()),
            NodeData::Dir(d) => (FileType::Directory, d.len() as u64 * 32, 0),
            NodeData::Symlink(t) => (FileType::Symlink, t.len() as u64, 0),
        };
        Ok(Attr {
            ftype,
            mode: i.mode,
            nlink: i.nlink,
            uid: i.uid,
            gid: i.gid,
            size,
            used,
            fileid: h.fileid,
            atime_ns: i.atime_ns,
            mtime_ns: i.mtime_ns,
            ctime_ns: i.ctime_ns,
        })
    }

    /// Truncate/extend a file and/or update mode and times.
    pub fn setattr(
        &mut self,
        h: Handle,
        size: Option<u64>,
        mode: Option<u32>,
        now_ns: u64,
    ) -> FsResult<Attr> {
        let i = self.check_mut(h)?;
        if let Some(sz) = size {
            match &mut i.data {
                NodeData::File(s) => s.truncate(sz),
                _ => return Err(FsError::BadType),
            }
            i.mtime_ns = now_ns;
        }
        if let Some(m) = mode {
            i.mode = m;
        }
        i.ctime_ns = now_ns;
        self.getattr(h)
    }

    /// Look up `name` in directory `dir`.
    pub fn lookup(&self, dir: Handle, name: &str) -> FsResult<Handle> {
        let i = self.check(dir)?;
        let entries = match &i.data {
            NodeData::Dir(d) => d,
            _ => return Err(FsError::NotDir),
        };
        let &fileid = entries.get(name).ok_or(FsError::NotFound)?;
        let target = self.inodes[fileid as usize]
            .as_ref()
            .ok_or(FsError::Stale)?;
        Ok(Handle {
            fileid,
            generation: target.generation,
        })
    }

    /// Resolve a slash-separated path from the root.
    pub fn resolve(&self, path: &str) -> FsResult<Handle> {
        let mut h = self.root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            h = self.lookup(h, comp)?;
        }
        Ok(h)
    }

    /// Create a regular file in `dir`.
    pub fn create(&mut self, dir: Handle, name: &str, mode: u32, now_ns: u64) -> FsResult<Handle> {
        Self::validate_name(name)?;
        self.check(dir)?;
        {
            let i = self.check(dir)?;
            match &i.data {
                NodeData::Dir(d) => {
                    if d.contains_key(name) {
                        return Err(FsError::Exists);
                    }
                }
                _ => return Err(FsError::NotDir),
            }
        }
        let generation = self.next_generation;
        self.next_generation += 1;
        let h = self.alloc(Inode {
            generation,
            mode,
            uid: 0,
            gid: 0,
            nlink: 1,
            atime_ns: now_ns,
            mtime_ns: now_ns,
            ctime_ns: now_ns,
            data: NodeData::File(SparseBytes::new()),
        });
        let dir_inode = self.check_mut(dir)?;
        match &mut dir_inode.data {
            NodeData::Dir(d) => {
                d.insert(name.to_string(), h.fileid);
            }
            _ => unreachable!(),
        }
        dir_inode.mtime_ns = now_ns;
        Ok(h)
    }

    /// Create a directory in `dir`.
    pub fn mkdir(&mut self, dir: Handle, name: &str, mode: u32, now_ns: u64) -> FsResult<Handle> {
        Self::validate_name(name)?;
        {
            let i = self.check(dir)?;
            match &i.data {
                NodeData::Dir(d) => {
                    if d.contains_key(name) {
                        return Err(FsError::Exists);
                    }
                }
                _ => return Err(FsError::NotDir),
            }
        }
        let generation = self.next_generation;
        self.next_generation += 1;
        let h = self.alloc(Inode {
            generation,
            mode,
            uid: 0,
            gid: 0,
            nlink: 2,
            atime_ns: now_ns,
            mtime_ns: now_ns,
            ctime_ns: now_ns,
            data: NodeData::Dir(BTreeMap::new()),
        });
        let dir_inode = self.check_mut(dir)?;
        match &mut dir_inode.data {
            NodeData::Dir(d) => {
                d.insert(name.to_string(), h.fileid);
            }
            _ => unreachable!(),
        }
        dir_inode.nlink += 1;
        dir_inode.mtime_ns = now_ns;
        Ok(h)
    }

    /// Create a symbolic link in `dir` pointing at `target`.
    pub fn symlink(
        &mut self,
        dir: Handle,
        name: &str,
        target: &str,
        now_ns: u64,
    ) -> FsResult<Handle> {
        Self::validate_name(name)?;
        {
            let i = self.check(dir)?;
            match &i.data {
                NodeData::Dir(d) => {
                    if d.contains_key(name) {
                        return Err(FsError::Exists);
                    }
                }
                _ => return Err(FsError::NotDir),
            }
        }
        let generation = self.next_generation;
        self.next_generation += 1;
        let h = self.alloc(Inode {
            generation,
            mode: 0o777,
            uid: 0,
            gid: 0,
            nlink: 1,
            atime_ns: now_ns,
            mtime_ns: now_ns,
            ctime_ns: now_ns,
            data: NodeData::Symlink(target.to_string()),
        });
        let dir_inode = self.check_mut(dir)?;
        match &mut dir_inode.data {
            NodeData::Dir(d) => {
                d.insert(name.to_string(), h.fileid);
            }
            _ => unreachable!(),
        }
        dir_inode.mtime_ns = now_ns;
        Ok(h)
    }

    /// Read a symlink's target.
    pub fn readlink(&self, h: Handle) -> FsResult<String> {
        match &self.check(h)?.data {
            NodeData::Symlink(t) => Ok(t.clone()),
            _ => Err(FsError::BadType),
        }
    }

    /// Remove a regular file or symlink from `dir`.
    pub fn remove(&mut self, dir: Handle, name: &str, now_ns: u64) -> FsResult<()> {
        let target = self.lookup(dir, name)?;
        {
            let t = self.check(target)?;
            if matches!(t.data, NodeData::Dir(_)) {
                return Err(FsError::IsDir);
            }
        }
        let dir_inode = self.check_mut(dir)?;
        match &mut dir_inode.data {
            NodeData::Dir(d) => {
                d.remove(name);
            }
            _ => return Err(FsError::NotDir),
        }
        dir_inode.mtime_ns = now_ns;
        self.inodes[target.fileid as usize] = None;
        self.free.push(target.fileid as usize);
        Ok(())
    }

    /// Remove an empty directory from `dir`.
    pub fn rmdir(&mut self, dir: Handle, name: &str, now_ns: u64) -> FsResult<()> {
        let target = self.lookup(dir, name)?;
        {
            let t = self.check(target)?;
            match &t.data {
                NodeData::Dir(d) => {
                    if !d.is_empty() {
                        return Err(FsError::NotEmpty);
                    }
                }
                _ => return Err(FsError::NotDir),
            }
        }
        let dir_inode = self.check_mut(dir)?;
        match &mut dir_inode.data {
            NodeData::Dir(d) => {
                d.remove(name);
            }
            _ => return Err(FsError::NotDir),
        }
        dir_inode.nlink -= 1;
        dir_inode.mtime_ns = now_ns;
        self.inodes[target.fileid as usize] = None;
        self.free.push(target.fileid as usize);
        Ok(())
    }

    /// Rename `from_name` in `from_dir` to `to_name` in `to_dir`,
    /// replacing a non-directory target if present.
    pub fn rename(
        &mut self,
        from_dir: Handle,
        from_name: &str,
        to_dir: Handle,
        to_name: &str,
        now_ns: u64,
    ) -> FsResult<()> {
        Self::validate_name(to_name)?;
        let moving = self.lookup(from_dir, from_name)?;
        // If the destination exists, it must be removable (non-dir here;
        // directory-over-directory rename is not needed by our workloads).
        if let Ok(existing) = self.lookup(to_dir, to_name) {
            if existing != moving {
                let e = self.check(existing)?;
                if matches!(e.data, NodeData::Dir(_)) {
                    return Err(FsError::IsDir);
                }
                self.remove(to_dir, to_name, now_ns)?;
            } else {
                return Ok(()); // rename onto itself
            }
        }
        {
            let from_inode = self.check_mut(from_dir)?;
            match &mut from_inode.data {
                NodeData::Dir(d) => {
                    d.remove(from_name);
                }
                _ => return Err(FsError::NotDir),
            }
            from_inode.mtime_ns = now_ns;
        }
        let to_inode = self.check_mut(to_dir)?;
        match &mut to_inode.data {
            NodeData::Dir(d) => {
                d.insert(to_name.to_string(), moving.fileid);
            }
            _ => return Err(FsError::NotDir),
        }
        to_inode.mtime_ns = now_ns;
        Ok(())
    }

    /// List a directory's entries (sorted by name).
    pub fn readdir(&self, dir: Handle) -> FsResult<Vec<(String, Handle)>> {
        let i = self.check(dir)?;
        let entries = match &i.data {
            NodeData::Dir(d) => d,
            _ => return Err(FsError::NotDir),
        };
        Ok(entries
            .iter()
            .map(|(name, &fileid)| {
                let generation = self.inodes[fileid as usize]
                    .as_ref()
                    .map(|i| i.generation)
                    .unwrap_or(0);
                (name.clone(), Handle { fileid, generation })
            })
            .collect())
    }

    /// Read up to `len` bytes at `offset`; short only at EOF. Returns the
    /// data and an EOF flag.
    pub fn read(
        &mut self,
        h: Handle,
        offset: u64,
        len: usize,
        now_ns: u64,
    ) -> FsResult<(Vec<u8>, bool)> {
        let i = self.check_mut(h)?;
        let s = match &i.data {
            NodeData::File(s) => s,
            NodeData::Dir(_) => return Err(FsError::IsDir),
            NodeData::Symlink(_) => return Err(FsError::BadType),
        };
        let data = s.read_range(offset, len);
        let eof = offset + data.len() as u64 >= s.len();
        i.atime_ns = now_ns;
        Ok((data, eof))
    }

    /// Write `data` at `offset`, extending the file as needed. Returns the
    /// new file size.
    pub fn write(&mut self, h: Handle, offset: u64, data: &[u8], now_ns: u64) -> FsResult<u64> {
        let i = self.check_mut(h)?;
        let s = match &mut i.data {
            NodeData::File(s) => s,
            NodeData::Dir(_) => return Err(FsError::IsDir),
            NodeData::Symlink(_) => return Err(FsError::BadType),
        };
        s.write_at(offset, data);
        i.mtime_ns = now_ns;
        i.ctime_ns = now_ns;
        Ok(s.len())
    }

    /// Whether a file range is entirely zero (holes included). Used by the
    /// GVFS zero-map generator.
    pub fn is_zero_range(&self, h: Handle, offset: u64, len: usize) -> FsResult<bool> {
        let i = self.check(h)?;
        match &i.data {
            NodeData::File(s) => Ok(s.is_zero_range(offset, len)),
            _ => Err(FsError::BadType),
        }
    }

    /// Logical size of a file.
    pub fn size(&self, h: Handle) -> FsResult<u64> {
        Ok(self.getattr(h)?.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Fs {
        Fs::new(0)
    }

    #[test]
    fn create_lookup_read_write() {
        let mut f = fs();
        let root = f.root();
        let file = f.create(root, "data.bin", 0o644, 1).unwrap();
        assert_eq!(f.lookup(root, "data.bin").unwrap(), file);
        f.write(file, 5, b"world", 2).unwrap();
        let (data, eof) = f.read(file, 0, 100, 3).unwrap();
        assert_eq!(&data[..5], &[0; 5]);
        assert_eq!(&data[5..], b"world");
        assert!(eof);
    }

    #[test]
    fn duplicate_create_fails() {
        let mut f = fs();
        let root = f.root();
        f.create(root, "x", 0o644, 0).unwrap();
        assert_eq!(f.create(root, "x", 0o644, 0), Err(FsError::Exists));
    }

    #[test]
    fn invalid_names_are_rejected() {
        let mut f = fs();
        let root = f.root();
        for bad in ["", ".", "..", "a/b"] {
            assert_eq!(f.create(root, bad, 0o644, 0), Err(FsError::InvalidName));
        }
    }

    #[test]
    fn mkdir_and_nested_resolve() {
        let mut f = fs();
        let root = f.root();
        let images = f.mkdir(root, "images", 0o755, 0).unwrap();
        let vm1 = f.mkdir(images, "vm1", 0o755, 0).unwrap();
        let disk = f.create(vm1, "vm.vmdk", 0o644, 0).unwrap();
        assert_eq!(f.resolve("/images/vm1/vm.vmdk").unwrap(), disk);
        assert_eq!(f.resolve("images/vm1").unwrap(), vm1);
        assert_eq!(f.resolve("images/nope"), Err(FsError::NotFound));
    }

    #[test]
    fn symlink_round_trips() {
        let mut f = fs();
        let root = f.root();
        let l = f
            .symlink(root, "link", "/images/golden/vm.vmdk", 0)
            .unwrap();
        assert_eq!(f.readlink(l).unwrap(), "/images/golden/vm.vmdk");
        assert_eq!(f.getattr(l).unwrap().ftype, FileType::Symlink);
    }

    #[test]
    fn remove_then_handle_is_stale() {
        let mut f = fs();
        let root = f.root();
        let file = f.create(root, "x", 0o644, 0).unwrap();
        f.remove(root, "x", 1).unwrap();
        assert_eq!(f.getattr(file), Err(FsError::Stale));
        assert_eq!(f.lookup(root, "x"), Err(FsError::NotFound));
    }

    #[test]
    fn inode_reuse_bumps_generation() {
        let mut f = fs();
        let root = f.root();
        let a = f.create(root, "a", 0o644, 0).unwrap();
        f.remove(root, "a", 1).unwrap();
        let b = f.create(root, "b", 0o644, 2).unwrap();
        // Slot reused but generation differs: old handle stays stale.
        assert_eq!(a.fileid, b.fileid);
        assert_ne!(a.generation, b.generation);
        assert_eq!(f.getattr(a), Err(FsError::Stale));
        assert!(f.getattr(b).is_ok());
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut f = fs();
        let root = f.root();
        let d = f.mkdir(root, "d", 0o755, 0).unwrap();
        f.create(d, "f", 0o644, 0).unwrap();
        assert_eq!(f.rmdir(root, "d", 1), Err(FsError::NotEmpty));
        f.remove(d, "f", 2).unwrap();
        f.rmdir(root, "d", 3).unwrap();
        assert_eq!(f.lookup(root, "d"), Err(FsError::NotFound));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut f = fs();
        let root = f.root();
        let a = f.create(root, "a", 0o644, 0).unwrap();
        f.write(a, 0, b"AAA", 0).unwrap();
        let b = f.create(root, "b", 0o644, 0).unwrap();
        f.write(b, 0, b"BBB", 0).unwrap();
        f.rename(root, "a", root, "b", 1).unwrap();
        assert_eq!(f.lookup(root, "a"), Err(FsError::NotFound));
        let got = f.lookup(root, "b").unwrap();
        assert_eq!(got, a);
        let (data, _) = f.read(got, 0, 3, 2).unwrap();
        assert_eq!(data, b"AAA");
    }

    #[test]
    fn setattr_truncates_and_updates_times() {
        let mut f = fs();
        let root = f.root();
        let file = f.create(root, "x", 0o644, 0).unwrap();
        f.write(file, 0, &[1u8; 100], 5).unwrap();
        let attr = f.setattr(file, Some(10), Some(0o600), 9).unwrap();
        assert_eq!(attr.size, 10);
        assert_eq!(attr.mode, 0o600);
        assert_eq!(attr.ctime_ns, 9);
    }

    #[test]
    fn readdir_is_sorted() {
        let mut f = fs();
        let root = f.root();
        for name in ["zeta", "alpha", "mid"] {
            f.create(root, name, 0o644, 0).unwrap();
        }
        let names: Vec<String> = f
            .readdir(root)
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn directory_reads_fail_with_isdir() {
        let mut f = fs();
        let root = f.root();
        assert_eq!(f.read(root, 0, 10, 0).unwrap_err(), FsError::IsDir);
        assert_eq!(f.write(root, 0, b"x", 0).unwrap_err(), FsError::IsDir);
    }

    #[test]
    fn handle_bytes_round_trip() {
        let h = Handle {
            fileid: 77,
            generation: 12345,
        };
        assert_eq!(Handle::from_bytes(&h.to_bytes()), Some(h));
        assert_eq!(Handle::from_bytes(&[0u8; 3]), None);
    }
}
