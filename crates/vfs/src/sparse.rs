//! Sparse byte storage for large, mostly-empty files.
//!
//! VM state files are huge but sparse: a 1.6 GB virtual disk whose guest
//! filesystem holds a few hundred megabytes, or a 512 MB memory image that
//! is overwhelmingly zero-filled after boot (the paper's zero-block
//! filtering removes 60,452 of 65,750 reads when resuming such a VM).
//! Storing them densely would make the reproduction needlessly heavy, so
//! file contents live in fixed-size chunks allocated on first write;
//! reads of unwritten ranges yield zeros, exactly like holes in a real
//! filesystem.

use std::collections::BTreeMap;

/// Chunk granularity for sparse allocation (64 KB).
pub const CHUNK_SIZE: usize = 64 * 1024;

/// A sparse, growable byte array.
#[derive(Debug, Clone, Default)]
pub struct SparseBytes {
    len: u64,
    chunks: BTreeMap<u64, Box<[u8]>>,
}

impl SparseBytes {
    /// Empty storage.
    pub fn new() -> Self {
        SparseBytes::default()
    }

    /// Logical length in bytes (includes trailing holes).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes actually allocated (the "used" attribute NFS reports).
    pub fn allocated(&self) -> u64 {
        self.chunks.len() as u64 * CHUNK_SIZE as u64
    }

    /// Set the logical length; shrinking drops whole chunks beyond the new
    /// end and zeroes the tail of the boundary chunk.
    pub fn truncate(&mut self, new_len: u64) {
        if new_len < self.len {
            let first_dead_chunk = new_len.div_ceil(CHUNK_SIZE as u64);
            self.chunks.retain(|&idx, _| idx < first_dead_chunk);
            // Zero the tail of the boundary chunk so a later re-extend
            // reads zeros there.
            let boundary = new_len / CHUNK_SIZE as u64;
            let within = (new_len % CHUNK_SIZE as u64) as usize;
            if within > 0 {
                if let Some(chunk) = self.chunks.get_mut(&boundary) {
                    chunk[within..].fill(0);
                }
            }
        }
        self.len = new_len;
    }

    /// Read `buf.len()` bytes at `offset`. Returns the number of bytes
    /// read, which is short only at end-of-file; holes read as zeros.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> usize {
        if offset >= self.len {
            return 0;
        }
        let n = buf.len().min((self.len - offset) as usize);
        let out = &mut buf[..n];
        out.fill(0);
        let mut pos = 0usize;
        while pos < n {
            let abs = offset + pos as u64;
            let chunk_idx = abs / CHUNK_SIZE as u64;
            let within = (abs % CHUNK_SIZE as u64) as usize;
            let take = (CHUNK_SIZE - within).min(n - pos);
            if let Some(chunk) = self.chunks.get(&chunk_idx) {
                out[pos..pos + take].copy_from_slice(&chunk[within..within + take]);
            }
            pos += take;
        }
        n
    }

    /// Read a range as a fresh vector (short at EOF).
    pub fn read_range(&self, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        let n = self.read_at(offset, &mut buf);
        buf.truncate(n);
        buf
    }

    /// Write `data` at `offset`, extending the logical length if needed.
    /// Writing all-zero data into a hole does not allocate a chunk. A
    /// zero-length write still extends the file to `offset` (it behaves
    /// like the degenerate end of a write ending at `offset`), matching
    /// the dense reference model the property tests check against.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) {
        let end = offset + data.len() as u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let chunk_idx = abs / CHUNK_SIZE as u64;
            let within = (abs % CHUNK_SIZE as u64) as usize;
            let take = (CHUNK_SIZE - within).min(data.len() - pos);
            let src = &data[pos..pos + take];
            match self.chunks.get_mut(&chunk_idx) {
                Some(chunk) => chunk[within..within + take].copy_from_slice(src),
                None => {
                    if src.iter().any(|&b| b != 0) {
                        let mut chunk = vec![0u8; CHUNK_SIZE].into_boxed_slice();
                        chunk[within..within + take].copy_from_slice(src);
                        self.chunks.insert(chunk_idx, chunk);
                    }
                }
            }
            pos += take;
        }
        self.len = self.len.max(end);
    }

    /// Whether the given range contains only zeros (holes count as zero).
    pub fn is_zero_range(&self, offset: u64, len: usize) -> bool {
        if len == 0 {
            return true;
        }
        let end = offset + len as u64;
        let first = offset / CHUNK_SIZE as u64;
        let last = (end - 1) / CHUNK_SIZE as u64;
        for (idx, chunk) in self.chunks.range(first..=last) {
            let chunk_start = idx * CHUNK_SIZE as u64;
            let lo = offset.saturating_sub(chunk_start).min(CHUNK_SIZE as u64) as usize;
            let hi = (end - chunk_start).min(CHUNK_SIZE as u64) as usize;
            if chunk[lo..hi].iter().any(|&b| b != 0) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_from_empty_are_empty() {
        let s = SparseBytes::new();
        assert_eq!(s.read_range(0, 16), Vec::<u8>::new());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = SparseBytes::new();
        s.write_at(10, b"hello");
        assert_eq!(s.len(), 15);
        assert_eq!(s.read_range(10, 5), b"hello");
        // The hole before the write reads as zeros.
        assert_eq!(s.read_range(0, 10), vec![0u8; 10]);
    }

    #[test]
    fn cross_chunk_writes_work() {
        let mut s = SparseBytes::new();
        let data: Vec<u8> = (0..=255u8).cycle().take(CHUNK_SIZE + 100).collect();
        let off = CHUNK_SIZE as u64 - 50;
        s.write_at(off, &data);
        assert_eq!(s.read_range(off, data.len()), data);
    }

    #[test]
    fn zero_writes_into_holes_do_not_allocate() {
        let mut s = SparseBytes::new();
        s.write_at(0, &vec![0u8; 4 * CHUNK_SIZE]);
        assert_eq!(s.len(), 4 * CHUNK_SIZE as u64);
        assert_eq!(s.allocated(), 0);
        // But nonzero writes do.
        s.write_at(0, &[1]);
        assert_eq!(s.allocated(), CHUNK_SIZE as u64);
    }

    #[test]
    fn truncate_shrinks_and_zeroes_boundary() {
        let mut s = SparseBytes::new();
        s.write_at(0, &vec![0xAB; 2 * CHUNK_SIZE]);
        s.truncate(100);
        assert_eq!(s.len(), 100);
        // Re-extend: bytes past 100 must read zero even inside the kept chunk.
        s.truncate(200);
        let r = s.read_range(0, 200);
        assert!(r[..100].iter().all(|&b| b == 0xAB));
        assert!(r[100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn is_zero_range_sees_holes_and_data() {
        let mut s = SparseBytes::new();
        s.write_at(CHUNK_SIZE as u64 * 2, &[7]);
        s.truncate(CHUNK_SIZE as u64 * 4);
        assert!(s.is_zero_range(0, CHUNK_SIZE * 2));
        assert!(!s.is_zero_range(CHUNK_SIZE as u64 * 2, 1));
        assert!(s.is_zero_range(CHUNK_SIZE as u64 * 2 + 1, CHUNK_SIZE));
    }

    #[test]
    fn short_read_at_eof() {
        let mut s = SparseBytes::new();
        s.write_at(0, b"abc");
        assert_eq!(s.read_range(1, 100), b"bc");
        assert_eq!(s.read_range(3, 100), b"");
    }
}
