//! Population-driven clone assignment for fleet-scale scenarios.
//!
//! A fleet run clones hundreds of VMs from a small set of golden images
//! on behalf of a simulated user population. Which image a request asks
//! for, which LAN site it lands on, and how much the clone diverges
//! right after resume are all properties of the *population*, not of the
//! benchmark loop — so they live here as pure functions of a seed and
//! the clone index. Two populations with the same seed make identical
//! choices; changing the seed reshuffles every assignment while keeping
//! the marginal distributions fixed.

use simnet::splitmix64;

/// Deterministic per-clone assignment: image choice, site placement and
/// post-resume divergence, all derived from `(seed, clone index)`.
#[derive(Debug, Clone, Copy)]
pub struct ClonePopulation {
    seed: u64,
    images: usize,
    sites: usize,
    /// Simulated users behind the requests; `0` disables the user model
    /// entirely (the pre-10k population, bit-exact).
    users: usize,
}

/// Domain-separation tags so the image, site and divergence streams stay
/// independent: reseeding one never shifts the others.
const TAG_IMAGE: u64 = 0x1A6E_0001;
const TAG_DIVERGE: u64 = 0x1A6E_0002;
const TAG_USER: u64 = 0x1A6E_0003;
const TAG_PREF: u64 = 0x1A6E_0004;
const TAG_LOYAL: u64 = 0x1A6E_0005;

/// Of 100 requests a user makes, how many ask for their preferred image
/// (the rest roam uniformly). 80/20 gives a strongly skewed — but never
/// degenerate — image popularity: every image still sees load.
const AFFINITY_PCT: u64 = 80;

impl ClonePopulation {
    /// A population drawing from `images` golden images spread over
    /// `sites` LAN sites. Both must be nonzero.
    pub fn new(seed: u64, images: usize, sites: usize) -> Self {
        assert!(images > 0 && sites > 0, "population needs images and sites");
        ClonePopulation {
            seed,
            images,
            sites,
            users: 0,
        }
    }

    /// A population of `users` simulated users, each with a sticky
    /// preferred image ([`AFFINITY_PCT`]% of their requests). Warm/cold
    /// skew emerges instead of uniform image popularity: the images many
    /// users prefer stay hot at their sites while tail images arrive
    /// cold — the regime the 10k fleet run exists to exercise. With the
    /// same `(seed, images, sites)`, site placement and divergence are
    /// identical to [`ClonePopulation::new`]; only image choice changes.
    pub fn with_users(seed: u64, images: usize, sites: usize, users: usize) -> Self {
        assert!(users > 0, "user model needs at least one user");
        ClonePopulation {
            users,
            ..ClonePopulation::new(seed, images, sites)
        }
    }

    /// Number of distinct golden images in the population.
    pub fn images(&self) -> usize {
        self.images
    }

    /// Number of LAN sites clones land on.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Golden image requested by clone `i`. Without a user model:
    /// hashed, not round-robin — a real population's image popularity is
    /// not phase-locked to the arrival order, and hashing keeps bursts
    /// heterogeneous. With one: [`AFFINITY_PCT`]% of a user's requests
    /// go to their sticky preferred image, the rest roam uniformly.
    pub fn image_of(&self, i: usize) -> usize {
        let roam = (splitmix64(self.seed ^ TAG_IMAGE ^ (i as u64).wrapping_mul(0x9E37))
            % self.images as u64) as usize;
        if self.users == 0 {
            return roam;
        }
        let u = self.user_of(i) as u64;
        let loyal = splitmix64(self.seed ^ TAG_LOYAL ^ (i as u64).wrapping_mul(0x6B43)) % 100;
        if loyal < AFFINITY_PCT {
            // Quadratic preference draw: users pile up on the low image
            // indices (P(image 0 of 8) ≈ 35%), so the *aggregate*
            // popularity is skewed, not just sticky per user — a uniform
            // preference would average back to uniform popularity and
            // leave no warm/cold contrast to measure.
            let r = splitmix64(self.seed ^ TAG_PREF ^ u.wrapping_mul(0x9E37));
            let f = (r >> 11) as f64 / (1u64 << 53) as f64;
            (((f * f) * self.images as f64) as usize).min(self.images - 1)
        } else {
            roam
        }
    }

    /// User behind clone `i` (0 when no user model is configured).
    /// Hashed: a user's sessions are spread through the day, not
    /// contiguous in arrival order.
    pub fn user_of(&self, i: usize) -> usize {
        if self.users == 0 {
            return 0;
        }
        (splitmix64(self.seed ^ TAG_USER ^ (i as u64).wrapping_mul(0x79B9)) % self.users as u64)
            as usize
    }

    /// LAN site clone `i` lands on. Round-robin: grid schedulers
    /// balance placement, and it guarantees every site sees load.
    pub fn site_of(&self, i: usize) -> usize {
        i % self.sites
    }

    /// Per-clone divergence seed (distinct stream from image content
    /// seeds and from the golden-image divergence used at install time).
    pub fn diverge_seed_of(&self, i: usize) -> u64 {
        splitmix64(self.seed ^ TAG_DIVERGE ^ (i as u64).wrapping_mul(0x79B9))
    }

    /// Distinct golden images that the first `clones` requests landing
    /// on `site` will ask for, in ascending image order. Lets a warm-site
    /// scenario prestage exactly the content its arrivals will need —
    /// no more — before the arrival clock starts.
    pub fn images_for_site(&self, site: usize, clones: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..clones)
            .filter(|&i| self.site_of(i) == site)
            .map(|i| self.image_of(i))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Bytes clone `i` dirties right after resume, between 1% and 5% of
    /// `memory_bytes` — the paper's picture of sibling VMs descending
    /// from one install and immediately drifting apart.
    pub fn diverge_bytes_of(&self, i: usize, memory_bytes: u64) -> u64 {
        let pct = 1 + self.diverge_seed_of(i) % 5; // 1..=5
        (memory_bytes / 100).max(1) * pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignments_are_reproducible_and_seed_sensitive() {
        let a = ClonePopulation::new(7, 8, 4);
        let b = ClonePopulation::new(7, 8, 4);
        let c = ClonePopulation::new(8, 8, 4);
        let pick = |p: &ClonePopulation| -> Vec<(usize, usize, u64)> {
            (0..64)
                .map(|i| (p.image_of(i), p.site_of(i), p.diverge_seed_of(i)))
                .collect()
        };
        assert_eq!(pick(&a), pick(&b));
        assert_ne!(pick(&a), pick(&c));
    }

    #[test]
    fn every_image_and_site_gets_load() {
        let p = ClonePopulation::new(42, 8, 4);
        let mut images = vec![0usize; 8];
        let mut sites = vec![0usize; 4];
        for i in 0..512 {
            images[p.image_of(i)] += 1;
            sites[p.site_of(i)] += 1;
        }
        assert!(images.iter().all(|&n| n > 0), "cold image: {images:?}");
        assert!(sites.iter().all(|&n| n > 0), "cold site: {sites:?}");
    }

    #[test]
    fn images_for_site_matches_the_assignment_exactly() {
        let p = ClonePopulation::new(42, 8, 4);
        for site in 0..4 {
            let staged = p.images_for_site(site, 512);
            // Sorted, deduplicated, and exactly the images requested.
            assert!(staged.windows(2).all(|w| w[0] < w[1]));
            for i in 0..512 {
                if p.site_of(i) == site {
                    assert!(
                        staged.contains(&p.image_of(i)),
                        "site {site} missing image for clone {i}"
                    );
                }
            }
            for &img in &staged {
                assert!(
                    (0..512).any(|i| p.site_of(i) == site && p.image_of(i) == img),
                    "site {site} staged unused image {img}"
                );
            }
        }
        assert!(p.images_for_site(0, 0).is_empty());
    }

    #[test]
    fn user_model_skews_image_popularity_without_cold_images() {
        let uniform = ClonePopulation::new(42, 8, 4);
        let skewed = ClonePopulation::with_users(42, 8, 4, 64);
        let counts = |p: &ClonePopulation| {
            let mut c = vec![0usize; 8];
            for i in 0..4096 {
                c[p.image_of(i)] += 1;
            }
            c
        };
        let (u, s) = (counts(&uniform), counts(&skewed));
        // Affinity concentrates load: the hottest image under the user
        // model clearly exceeds the hottest under uniform hashing...
        assert!(s.iter().max() > u.iter().max().map(|m| m * 3 / 2).as_ref());
        // ...while the 20% roaming share keeps every image warm enough
        // to exist in the run.
        assert!(s.iter().all(|&n| n > 0), "cold image: {s:?}");
        // Site placement and divergence are untouched by the user model.
        for i in 0..256 {
            assert_eq!(uniform.site_of(i), skewed.site_of(i));
            assert_eq!(uniform.diverge_seed_of(i), skewed.diverge_seed_of(i));
        }
    }

    #[test]
    fn user_assignment_is_reproducible() {
        let a = ClonePopulation::with_users(7, 8, 4, 32);
        let b = ClonePopulation::with_users(7, 8, 4, 32);
        for i in 0..128 {
            assert_eq!(a.user_of(i), b.user_of(i));
            assert_eq!(a.image_of(i), b.image_of(i));
            assert!(a.user_of(i) < 32);
        }
    }

    #[test]
    fn divergence_is_bounded() {
        let p = ClonePopulation::new(3, 4, 2);
        let mem = 320u64 << 20;
        for i in 0..128 {
            let d = p.diverge_bytes_of(i, mem);
            assert!(d >= mem / 100 && d <= mem / 20, "clone {i}: {d} bytes");
        }
    }
}
