//! The hosted VM monitor model.
//!
//! Models a VMware-GSX-style hosted VMM **purely in terms of host file
//! I/O on its state files** — which is the paper's transparency claim:
//! the monitor is unmodified and unaware of GVFS; it simply opens
//! `.vmx`/`.vmss`/`.vmdk` files that may live on a local disk, an NFS
//! mount, or behind symlinks into a GVFS mount.
//!
//! * `resume` reads the configuration and then the **entire** memory
//!   state file sequentially (the behaviour that motivates meta-data
//!   handling), then spends device-restore CPU time.
//! * `run` executes a guest I/O trace against the virtual disk, through
//!   a guest page cache (the VM's own RAM) and optionally a redo log
//!   (non-persistent mode).
//! * `suspend` writes the memory image back out.

use parking_lot::Mutex;
use simnet::{Env, SimDuration};
use vfs::{IoError, IoResult, LruMap, MountTable, OpenFile};

use crate::image::VmImageSpec;
use crate::redo::RedoLog;

/// A guest-level operation, produced by workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestOp {
    /// Pure computation for the given virtual time.
    Compute(SimDuration),
    /// Guest disk read.
    DiskRead {
        /// Byte offset on the virtual disk.
        offset: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Guest disk write.
    DiskWrite {
        /// Byte offset on the virtual disk.
        offset: u64,
        /// Length in bytes.
        len: u32,
    },
}

/// VM monitor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Fraction of guest RAM acting as guest page cache.
    pub guest_cache_fraction: f64,
    /// Guest block size.
    pub guest_block: u32,
    /// CPU cost of a guest-cache hit.
    pub guest_hit_cost: SimDuration,
    /// Chunk size the VMM uses to read the memory state on resume.
    pub resume_chunk: u32,
    /// Device save/restore CPU on resume/suspend.
    pub device_cpu: SimDuration,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            guest_cache_fraction: 0.5,
            guest_block: 4096,
            guest_hit_cost: SimDuration::from_micros(3),
            resume_chunk: 256 * 1024,
            device_cpu: SimDuration::from_secs(2),
        }
    }
}

/// Monitor counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct VmStats {
    /// Guest disk reads executed.
    pub guest_reads: u64,
    /// Guest disk writes executed.
    pub guest_writes: u64,
    /// Guest-cache block hits.
    pub guest_cache_hits: u64,
    /// Guest-cache block misses (host I/O issued).
    pub guest_cache_misses: u64,
    /// Bytes read from host files.
    pub host_bytes_read: u64,
    /// Bytes written to host files.
    pub host_bytes_written: u64,
}

struct VmState {
    guest_cache: LruMap<u64, ()>,
    redo: Option<RedoLog>,
    stats: VmStats,
    resumed: bool,
}

/// One virtual machine instance attached to its state files.
pub struct VmMonitor {
    spec: VmImageSpec,
    cfg: VmConfig,
    vmx: OpenFile,
    vmss: OpenFile,
    vmdk: OpenFile,
    /// Backend holding the redo log file (when non-persistent).
    redo_io: Option<OpenFile>,
    state: Mutex<VmState>,
}

impl VmMonitor {
    /// Attach to the VM whose state files live in `vm_dir` (resolved
    /// through the host's mount table, following symlinks — so a cloned
    /// VM's `.vmdk` symlink transparently lands on the GVFS mount).
    ///
    /// `redo_path`: when `Some`, the disk runs non-persistent and guest
    /// writes go to a fresh redo log created at that path.
    pub fn attach(
        env: &Env,
        mounts: &MountTable,
        vm_dir: &str,
        spec: VmImageSpec,
        cfg: VmConfig,
        redo_path: Option<&str>,
    ) -> IoResult<VmMonitor> {
        let vmx = mounts.open(env, &format!("{vm_dir}/{}", spec.vmx_name()))?;
        let vmss = mounts.open(env, &format!("{vm_dir}/{}", spec.vmss_name()))?;
        let vmdk = mounts.open(env, &format!("{vm_dir}/{}", spec.vmdk_name()))?;
        let (redo_io, redo) = match redo_path {
            Some(p) => {
                let (io, rel) = mounts.route(p)?;
                let h = io.create_path(env, &rel)?;
                let open = OpenFile { io, handle: h };
                let log = RedoLog::new(h);
                (Some(open), Some(log))
            }
            None => (None, None),
        };
        let cache_blocks = ((spec.memory_bytes as f64 * cfg.guest_cache_fraction) as u64
            / cfg.guest_block as u64)
            .max(1) as usize;
        Ok(VmMonitor {
            spec,
            cfg,
            vmx,
            vmss,
            vmdk,
            redo_io,
            state: Mutex::new(VmState {
                guest_cache: LruMap::new(cache_blocks),
                redo,
                stats: VmStats::default(),
                resumed: false,
            }),
        })
    }

    /// Image parameters.
    pub fn spec(&self) -> &VmImageSpec {
        &self.spec
    }

    /// Counter snapshot.
    pub fn stats(&self) -> VmStats {
        self.state.lock().stats
    }

    /// Whether `resume` has completed.
    pub fn is_resumed(&self) -> bool {
        self.state.lock().resumed
    }

    /// Resume the VM: read the config, read the **whole** memory state
    /// file, restore devices. Returns the memory bytes read.
    pub fn resume(&self, env: &Env) -> IoResult<u64> {
        // Config: one small read.
        let vmx_size = self.vmx.io.getattr(env, self.vmx.handle)?.size;
        let _cfg_bytes =
            self.vmx
                .io
                .read(env, self.vmx.handle, 0, vmx_size.min(64 * 1024) as u32)?;
        // Memory state: sequential full-file read, like VMware resuming a
        // suspended VM.
        let mem_size = self.vmss.io.getattr(env, self.vmss.handle)?.size;
        let mut off = 0u64;
        let mut total = 0u64;
        while off < mem_size {
            let want = (self.cfg.resume_chunk as u64).min(mem_size - off) as u32;
            let data = self.vmss.io.read(env, self.vmss.handle, off, want)?;
            if data.is_empty() {
                return Err(IoError::Io("short memory state read".into()));
            }
            total += data.len() as u64;
            off += data.len() as u64;
        }
        self.vmss.io.close(env, self.vmss.handle)?;
        env.sleep(self.cfg.device_cpu);
        let mut st = self.state.lock();
        st.stats.host_bytes_read += total;
        st.resumed = true;
        Ok(total)
    }

    /// Execute a guest trace against the virtual disk.
    pub fn run(&self, env: &Env, ops: &[GuestOp]) -> IoResult<()> {
        for op in ops {
            match *op {
                GuestOp::Compute(d) => env.sleep(d),
                GuestOp::DiskRead { offset, len } => self.guest_read(env, offset, len)?,
                GuestOp::DiskWrite { offset, len } => self.guest_write(env, offset, len)?,
            }
        }
        Ok(())
    }

    fn guest_blocks(&self, offset: u64, len: u32) -> (u64, u64) {
        let gb = self.cfg.guest_block as u64;
        let first = offset / gb;
        let last = if len == 0 {
            first
        } else {
            (offset + len as u64 - 1) / gb
        };
        (first, last)
    }

    fn guest_read(&self, env: &Env, offset: u64, len: u32) -> IoResult<()> {
        let (first, last) = self.guest_blocks(offset, len);
        let gb = self.cfg.guest_block as u64;
        // Partition into cache hits and host runs of consecutive misses.
        let mut miss_runs: Vec<(u64, u64)> = Vec::new(); // (first, last) inclusive
        {
            let mut st = self.state.lock();
            st.stats.guest_reads += 1;
            for b in first..=last {
                if st.guest_cache.get(&b).is_some() {
                    st.stats.guest_cache_hits += 1;
                } else {
                    st.stats.guest_cache_misses += 1;
                    st.guest_cache.insert(b, ());
                    match miss_runs.last_mut() {
                        Some((_, l)) if *l + 1 == b => *l = b,
                        _ => miss_runs.push((b, b)),
                    }
                }
            }
        }
        for b in first..=last {
            let _ = b;
            env.sleep(self.cfg.guest_hit_cost);
        }
        for (f, l) in miss_runs {
            let off = f * gb;
            let want = ((l - f + 1) * gb) as u32;
            // Take the redo log out of the state so no lock is held while
            // the simulated I/O blocks in virtual time.
            let redo_opt = { self.state.lock().redo.take() };
            let result = match &redo_opt {
                Some(redo) => {
                    let redo_io = self.redo_io.as_ref().expect("redo io present");
                    redo.read(
                        env,
                        &*redo_io.io,
                        &*self.vmdk.io,
                        self.vmdk.handle,
                        off,
                        want,
                    )
                }
                None => self.vmdk.io.read(env, self.vmdk.handle, off, want),
            };
            {
                let mut st = self.state.lock();
                if let Some(r) = redo_opt {
                    st.redo = Some(r);
                }
                let data = result?;
                st.stats.host_bytes_read += data.len() as u64;
            }
        }
        Ok(())
    }

    fn guest_write(&self, env: &Env, offset: u64, len: u32) -> IoResult<()> {
        let (first, last) = self.guest_blocks(offset, len);
        {
            let mut st = self.state.lock();
            st.stats.guest_writes += 1;
            for b in first..=last {
                st.guest_cache.insert(b, ());
            }
        }
        // Deterministic page-ish payload so caches/codecs see real bytes.
        let data: Vec<u8> = (0..len)
            .map(|i| ((offset + i as u64) % 251) as u8)
            .collect();
        let redo_opt = { self.state.lock().redo.take() };
        match redo_opt {
            Some(mut redo) => {
                let redo_io = self.redo_io.as_ref().expect("redo io present");
                let result = redo.write(env, &*redo_io.io, offset, &data);
                let mut st = self.state.lock();
                st.redo = Some(redo);
                result?;
                st.stats.host_bytes_written += data.len() as u64;
            }
            None => {
                self.vmdk.io.write(env, self.vmdk.handle, offset, &data)?;
                self.state.lock().stats.host_bytes_written += data.len() as u64;
            }
        }
        Ok(())
    }

    /// Suspend: write the memory image back to the `.vmss` file (whole
    /// file, zero pages included, like VMware), then flush it.
    pub fn suspend(&self, env: &Env) -> IoResult<u64> {
        env.sleep(self.cfg.device_cpu);
        let mem = self.spec.memory_bytes;
        let chunk = self.cfg.resume_chunk as u64;
        let nonzero_every = (1.0 / self.spec.mem_nonzero_fraction.max(0.01)) as u64;
        let mut off = 0u64;
        while off < mem {
            let n = chunk.min(mem - off);
            // Mostly-zero content with periodic dirty pages.
            let mut data = vec![0u8; n as usize];
            let mut p = 0u64;
            while p < n {
                if ((off + p) / 4096).is_multiple_of(nonzero_every) {
                    let end = (p + 4096).min(n);
                    for (i, byte) in data[p as usize..end as usize].iter_mut().enumerate() {
                        *byte = ((off + p) as usize + i) as u8 | 1;
                    }
                }
                p += 4096;
            }
            self.vmss.io.write(env, self.vmss.handle, off, &data)?;
            off += n;
        }
        self.vmss.io.close(env, self.vmss.handle)?;
        let mut st = self.state.lock();
        st.stats.host_bytes_written += mem;
        st.resumed = false;
        Ok(mem)
    }

    /// Periodic guest sync: the guest OS flushes its filesystem every few
    /// seconds (ext2 bdflush), which a hosted VMM turns into host-level
    /// flushes of the virtual disk. Benchmark drivers call this at phase
    /// boundaries so write costs land in the phase that produced them.
    pub fn sync_disk(&self, env: &Env) -> IoResult<()> {
        if let Some(redo_io) = &self.redo_io {
            redo_io.io.close(env, redo_io.handle)?;
        }
        self.vmdk.io.close(env, self.vmdk.handle)?;
        Ok(())
    }

    /// Flush guest state at the end of a session (closes the disk).
    pub fn shutdown(&self, env: &Env) -> IoResult<()> {
        if let Some(redo_io) = &self.redo_io {
            redo_io.io.close(env, redo_io.handle)?;
        }
        self.vmdk.io.close(env, self.vmdk.handle)?;
        Ok(())
    }

    /// Bytes appended to the redo log so far (non-persistent mode).
    pub fn redo_bytes(&self) -> Option<u64> {
        self.state.lock().redo.as_ref().map(|r| r.log_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{install_image, VmImageSpec};
    use simnet::Simulation;
    use std::sync::Arc;
    use vfs::{Disk, DiskModel, FileIo, LocalIo, LocalIoConfig};

    fn spec() -> VmImageSpec {
        VmImageSpec {
            name: "vm".into(),
            memory_bytes: 4 << 20,
            disk_bytes: 32 << 20,
            mem_nonzero_fraction: 0.1,
            disk_used_fraction: 0.2,
            seed: 7,
        }
    }

    fn host(sim: &Simulation) -> (Arc<LocalIo>, MountTable) {
        let local = LocalIo::new(
            Disk::new(&sim.handle(), DiskModel::scsi_2004()),
            LocalIoConfig::default(),
            0,
        );
        local.with_fs(|fs| {
            let root = fs.root();
            let dir = fs.mkdir(root, "vm", 0o755, 0).unwrap();
            install_image(fs, dir, &spec()).unwrap();
        });
        let table = MountTable::new().mount("/", local.clone());
        (local, table)
    }

    #[test]
    fn resume_reads_entire_memory_state() {
        let sim = Simulation::new();
        let (_local, table) = host(&sim);
        sim.spawn("t", move |env| {
            let vm =
                VmMonitor::attach(&env, &table, "/vm", spec(), VmConfig::default(), None).unwrap();
            let read = vm.resume(&env).unwrap();
            assert_eq!(read, 4 << 20);
            assert!(vm.is_resumed());
            // Device restore CPU is included.
            assert!(env.now().as_secs_f64() >= 2.0);
        });
        sim.run();
    }

    #[test]
    fn guest_rereads_hit_guest_cache() {
        let sim = Simulation::new();
        let (_local, table) = host(&sim);
        sim.spawn("t", move |env| {
            let vm =
                VmMonitor::attach(&env, &table, "/vm", spec(), VmConfig::default(), None).unwrap();
            let ops = vec![
                GuestOp::DiskRead {
                    offset: 0,
                    len: 64 * 1024,
                },
                GuestOp::DiskRead {
                    offset: 0,
                    len: 64 * 1024,
                },
            ];
            vm.run(&env, &ops).unwrap();
            let st = vm.stats();
            assert_eq!(st.guest_reads, 2);
            assert_eq!(st.guest_cache_hits, 16); // second pass: 16 x 4K blocks
            assert_eq!(st.guest_cache_misses, 16);
            assert_eq!(st.host_bytes_read, 64 * 1024);
        });
        sim.run();
    }

    #[test]
    fn nonpersistent_writes_go_to_redo_not_vmdk() {
        let sim = Simulation::new();
        let (local, table) = host(&sim);
        sim.spawn("t", move |env| {
            let vm = VmMonitor::attach(
                &env,
                &table,
                "/vm",
                spec(),
                VmConfig::default(),
                Some("/vm/clone.REDO"),
            )
            .unwrap();
            let vmdk_before = {
                let h = local.lookup_path(&env, "vm/vm.vmdk").unwrap();
                local.read(&env, h, 1 << 20, 4096).unwrap()
            };
            vm.run(
                &env,
                &[GuestOp::DiskWrite {
                    offset: 1 << 20,
                    len: 4096,
                }],
            )
            .unwrap();
            // Base vmdk unchanged; redo log grew.
            let vmdk_after = {
                let h = local.lookup_path(&env, "vm/vm.vmdk").unwrap();
                local.read(&env, h, 1 << 20, 4096).unwrap()
            };
            assert_eq!(vmdk_before, vmdk_after);
            assert_eq!(vm.redo_bytes(), Some(4096 + 12));
            // Read-back sees the redo data.
            vm.run(
                &env,
                &[GuestOp::DiskRead {
                    offset: 1 << 20,
                    len: 4096,
                }],
            )
            .unwrap();
        });
        sim.run();
    }

    #[test]
    fn suspend_writes_memory_size_bytes() {
        let sim = Simulation::new();
        let (local, table) = host(&sim);
        sim.spawn("t", move |env| {
            let vm =
                VmMonitor::attach(&env, &table, "/vm", spec(), VmConfig::default(), None).unwrap();
            vm.resume(&env).unwrap();
            let written = vm.suspend(&env).unwrap();
            assert_eq!(written, 4 << 20);
            assert!(!vm.is_resumed());
            let h = local.lookup_path(&env, "vm/vm.vmss").unwrap();
            assert_eq!(local.getattr(&env, h).unwrap().size, 4 << 20);
        });
        sim.run();
    }
}
