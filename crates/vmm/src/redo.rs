//! Redo logs for non-persistent virtual disks.
//!
//! A cloned (non-persistent) VM never writes its golden `.vmdk`; guest
//! writes append to a per-clone redo log, and guest reads consult the
//! redo log before the base disk — VMware's undoable/non-persistent disk
//! mode. The log is an ordinary file, so it can live on the local disk or
//! on the GVFS mount, where proxy write-back caching absorbs its latency
//! ("write-back can help save user time for writes to the redo logs").
//!
//! On-file format: a sequence of records `[guest_offset u64][len u32][data]`.
//! An in-memory extent index maps guest ranges to log positions.

use std::collections::BTreeMap;

use simnet::Env;
use vfs::{FileIo, Handle, IoResult};

/// A redo log bound to an open log file.
pub struct RedoLog {
    file: Handle,
    /// Guest offset -> (log data offset, length). Non-overlapping: new
    /// writes split/replace older extents.
    index: BTreeMap<u64, (u64, u32)>,
    /// Append position in the log file.
    tail: u64,
}

const RECORD_HEADER: u64 = 12;

impl RedoLog {
    /// Open a fresh redo log over an (empty) file.
    pub fn new(file: Handle) -> Self {
        RedoLog {
            file,
            index: BTreeMap::new(),
            tail: 0,
        }
    }

    /// The underlying file handle.
    pub fn file(&self) -> Handle {
        self.file
    }

    /// Bytes appended so far.
    pub fn log_bytes(&self) -> u64 {
        self.tail
    }

    /// Number of live extents in the index.
    pub fn extent_count(&self) -> usize {
        self.index.len()
    }

    /// Remove/split any indexed extents overlapping `[start, end)`.
    fn punch(&mut self, start: u64, end: u64) {
        // Collect overlapping extents (including one starting before).
        let mut touched: Vec<(u64, (u64, u32))> = Vec::new();
        if let Some((&gs, &v)) = self.index.range(..start).next_back() {
            if gs + v.1 as u64 > start {
                touched.push((gs, v));
            }
        }
        for (&gs, &v) in self.index.range(start..end) {
            touched.push((gs, v));
        }
        for (gs, (lo, len)) in touched {
            self.index.remove(&gs);
            let ge = gs + len as u64;
            if gs < start {
                // Keep the left part.
                self.index.insert(gs, (lo, (start - gs) as u32));
            }
            if ge > end {
                // Keep the right part.
                let cut = end - gs;
                self.index.insert(end, (lo + cut, (ge - end) as u32));
            }
        }
    }

    /// Record a guest write: append to the log file via `io` and index it.
    pub fn write(&mut self, env: &Env, io: &dyn FileIo, offset: u64, data: &[u8]) -> IoResult<()> {
        if data.is_empty() {
            return Ok(());
        }
        let mut rec = Vec::with_capacity(RECORD_HEADER as usize + data.len());
        rec.extend_from_slice(&offset.to_be_bytes());
        rec.extend_from_slice(&(data.len() as u32).to_be_bytes());
        rec.extend_from_slice(data);
        io.write(env, self.file, self.tail, &rec)?;
        let data_pos = self.tail + RECORD_HEADER;
        self.tail += rec.len() as u64;
        self.punch(offset, offset + data.len() as u64);
        self.index.insert(offset, (data_pos, data.len() as u32));
        Ok(())
    }

    /// Read `len` guest bytes at `offset`: redo extents override the base
    /// disk, which is read through `base_io`/`base`.
    pub fn read(
        &self,
        env: &Env,
        io: &dyn FileIo,
        base_io: &dyn FileIo,
        base: Handle,
        offset: u64,
        len: u32,
    ) -> IoResult<Vec<u8>> {
        let end = offset + len as u64;
        let mut out = vec![0u8; len as usize];
        // Base first (one read), then overlay redo extents.
        let base_data = base_io.read(env, base, offset, len)?;
        out[..base_data.len()].copy_from_slice(&base_data);
        // Find overlapping extents.
        let mut overlaps: Vec<(u64, (u64, u32))> = Vec::new();
        if let Some((&gs, &v)) = self.index.range(..offset).next_back() {
            if gs + v.1 as u64 > offset {
                overlaps.push((gs, v));
            }
        }
        for (&gs, &v) in self.index.range(offset..end) {
            overlaps.push((gs, v));
        }
        for (gs, (lo, elen)) in overlaps {
            let ge = gs + elen as u64;
            let from = gs.max(offset);
            let to = ge.min(end);
            if from >= to {
                continue;
            }
            let log_off = lo + (from - gs);
            let chunk = io.read(env, self.file, log_off, (to - from) as u32)?;
            out[(from - offset) as usize..(from - offset) as usize + chunk.len()]
                .copy_from_slice(&chunk);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Simulation;
    use std::sync::Arc;
    use vfs::{Disk, DiskModel, LocalIo, LocalIoConfig};

    fn setup(sim: &Simulation) -> Arc<LocalIo> {
        LocalIo::new(
            Disk::new(&sim.handle(), DiskModel::scsi_2004()),
            LocalIoConfig::default(),
            0,
        )
    }

    #[test]
    fn reads_fall_through_to_base_when_log_empty() {
        let sim = Simulation::new();
        let io = setup(&sim);
        sim.spawn("t", move |env| {
            let base = io.create_path(&env, "base.vmdk").unwrap();
            io.write(&env, base, 0, b"BASEDATA").unwrap();
            let log_file = io.create_path(&env, "clone.REDO").unwrap();
            let redo = RedoLog::new(log_file);
            let got = redo.read(&env, &*io, &*io, base, 0, 8).unwrap();
            assert_eq!(got, b"BASEDATA");
        });
        sim.run();
    }

    #[test]
    fn writes_overlay_base_data() {
        let sim = Simulation::new();
        let io = setup(&sim);
        sim.spawn("t", move |env| {
            let base = io.create_path(&env, "base.vmdk").unwrap();
            io.write(&env, base, 0, &[0xBB; 100]).unwrap();
            let log_file = io.create_path(&env, "clone.REDO").unwrap();
            let mut redo = RedoLog::new(log_file);
            redo.write(&env, &*io, 10, b"XXXXX").unwrap();
            let got = redo.read(&env, &*io, &*io, base, 0, 100).unwrap();
            assert_eq!(&got[..10], &[0xBB; 10]);
            assert_eq!(&got[10..15], b"XXXXX");
            assert_eq!(&got[15..], &[0xBB; 85]);
        });
        sim.run();
    }

    #[test]
    fn overlapping_rewrites_use_latest_data() {
        let sim = Simulation::new();
        let io = setup(&sim);
        sim.spawn("t", move |env| {
            let base = io.create_path(&env, "base.vmdk").unwrap();
            io.write(&env, base, 0, &[0u8; 64]).unwrap();
            let log_file = io.create_path(&env, "c.REDO").unwrap();
            let mut redo = RedoLog::new(log_file);
            redo.write(&env, &*io, 0, &[1u8; 32]).unwrap();
            redo.write(&env, &*io, 16, &[2u8; 32]).unwrap(); // overlaps tail
            redo.write(&env, &*io, 8, &[3u8; 4]).unwrap(); // punches a hole
            let got = redo.read(&env, &*io, &*io, base, 0, 64).unwrap();
            assert_eq!(&got[0..8], &[1u8; 8]);
            assert_eq!(&got[8..12], &[3u8; 4]);
            assert_eq!(&got[12..16], &[1u8; 4]);
            assert_eq!(&got[16..48], &[2u8; 32]);
            assert_eq!(&got[48..64], &[0u8; 16]);
        });
        sim.run();
    }

    #[test]
    fn log_grows_with_record_overhead() {
        let sim = Simulation::new();
        let io = setup(&sim);
        sim.spawn("t", move |env| {
            let log_file = io.create_path(&env, "c.REDO").unwrap();
            let mut redo = RedoLog::new(log_file);
            redo.write(&env, &*io, 0, &[1u8; 100]).unwrap();
            redo.write(&env, &*io, 500, &[2u8; 200]).unwrap();
            assert_eq!(redo.log_bytes(), 100 + 200 + 2 * 12);
            assert_eq!(redo.extent_count(), 2);
        });
        sim.run();
    }

    #[test]
    fn partial_overlap_reads_merge_correctly() {
        let sim = Simulation::new();
        let io = setup(&sim);
        sim.spawn("t", move |env| {
            let base = io.create_path(&env, "base.vmdk").unwrap();
            io.write(&env, base, 0, &[9u8; 200]).unwrap();
            let log_file = io.create_path(&env, "c.REDO").unwrap();
            let mut redo = RedoLog::new(log_file);
            redo.write(&env, &*io, 50, &[7u8; 100]).unwrap();
            // Read a window that cuts the extent on both sides.
            let got = redo.read(&env, &*io, &*io, base, 60, 50).unwrap();
            assert_eq!(got, vec![7u8; 50]);
            let got2 = redo.read(&env, &*io, &*io, base, 140, 40).unwrap();
            assert_eq!(&got2[..10], &[7u8; 10]);
            assert_eq!(&got2[10..], &[9u8; 30]);
        });
        sim.run();
    }
}
