//! VM image construction.
//!
//! A hosted VM's state lives in ordinary files — that is the property the
//! whole paper rests on ("so long as the monitor allows for state to be
//! stored in file systems that can be mounted via NFS"):
//!
//! * `<name>.vmx`  — small text configuration,
//! * `<name>.vmss` — suspended memory state (RAM-sized, mostly zero
//!   pages after boot),
//! * `<name>.vmdk` — plain-mode virtual disk (full-size file, sparsely
//!   used by the guest filesystem).
//!
//! Generators here produce deterministic, realistic content: memory
//! images with a nonzero kernel/application region plus scattered dirty
//! pages, and virtual disks with clustered guest data. Determinism makes
//! every figure reproducible bit-for-bit.

use vfs::{Fs, FsResult, Handle};

/// Parameters of a VM image.
#[derive(Debug, Clone)]
pub struct VmImageSpec {
    /// Base name for the three state files.
    pub name: String,
    /// Virtual RAM size (`.vmss` size).
    pub memory_bytes: u64,
    /// Virtual disk size (`.vmdk` size; plain mode = full size).
    pub disk_bytes: u64,
    /// Fraction of memory pages that are non-zero. The paper measures a
    /// post-boot 512 MB RedHat 7.3 image at 60,452 / 65,750 zero reads,
    /// i.e. ~8% non-zero.
    pub mem_nonzero_fraction: f64,
    /// Fraction of the virtual disk holding guest data.
    pub disk_used_fraction: f64,
    /// RNG seed for content placement.
    pub seed: u64,
}

impl VmImageSpec {
    /// The cloning-experiment image: 320 MB RAM, 1.6 GB disk.
    pub fn clone_benchmark(name: &str) -> Self {
        VmImageSpec {
            name: name.to_string(),
            memory_bytes: 320 << 20,
            disk_bytes: 1_600 << 20,
            // Cloning images are application-configured (services started,
            // tools loaded), denser than a bare post-boot image.
            mem_nonzero_fraction: 0.12,
            disk_used_fraction: 0.25,
            seed: 0x1234_5678,
        }
    }

    /// The application-execution image: 512 MB RAM, 2 GB disk
    /// (RedHat 7.3 plus benchmarks and datasets).
    pub fn app_benchmark(name: &str) -> Self {
        VmImageSpec {
            name: name.to_string(),
            memory_bytes: 512 << 20,
            disk_bytes: 2_048 << 20,
            mem_nonzero_fraction: 0.08,
            disk_used_fraction: 0.30,
            seed: 0x8765_4321,
        }
    }

    /// File names.
    pub fn vmx_name(&self) -> String {
        format!("{}.vmx", self.name)
    }
    /// Memory state file name.
    pub fn vmss_name(&self) -> String {
        format!("{}.vmss", self.name)
    }
    /// Virtual disk file name.
    pub fn vmdk_name(&self) -> String {
        format!("{}.vmdk", self.name)
    }
}

/// Handles of an installed image.
#[derive(Debug, Clone, Copy)]
pub struct InstalledImage {
    /// Config file handle.
    pub vmx: Handle,
    /// Memory state handle.
    pub vmss: Handle,
    /// Virtual disk handle.
    pub vmdk: Handle,
}

/// Page granularity for memory content placement.
pub const PAGE: u64 = 4096;

/// Deterministic per-image PRNG (xorshift64*).
pub struct Prng(u64);

impl Prng {
    /// Seeded PRNG.
    pub fn new(seed: u64) -> Self {
        Prng(seed | 1)
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

fn page_payload(rng: &mut Prng, len: usize) -> Vec<u8> {
    // Realistic page content: runs of repeated bytes (heap/stack patterns)
    // mixed with less compressible words — so the codec sees GZIP-like
    // structure rather than pure noise or pure zeros.
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let r = rng.next_u64();
        if r.is_multiple_of(4) {
            let run = 32 + (r >> 8) % 224;
            let b = (r >> 32) as u8;
            for _ in 0..run.min((len - out.len()) as u64) {
                out.push(b);
            }
        } else {
            let n = (16 + (r >> 8) % 48).min((len - out.len()) as u64);
            let mut x = r;
            for _ in 0..n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                out.push((x >> 56) as u8);
            }
        }
    }
    out
}

/// Install the three state files of `spec` into directory `dir` of `fs`.
/// Runs at scenario-setup time (no simulation cost).
pub fn install_image(fs: &mut Fs, dir: Handle, spec: &VmImageSpec) -> FsResult<InstalledImage> {
    let mut rng = Prng::new(spec.seed);

    // .vmx: a small key=value config.
    let vmx = fs.create(dir, &spec.vmx_name(), 0o644, 0)?;
    let config = format!(
        "config.version = \"8\"\nvirtualHW.version = \"3\"\nmemsize = \"{}\"\n\
         scsi0:0.fileName = \"{}\"\ndisplayName = \"{}\"\nguestOS = \"linux\"\n\
         checkpoint.vmState = \"{}\"\n",
        spec.memory_bytes >> 20,
        spec.vmdk_name(),
        spec.name,
        spec.vmss_name(),
    );
    fs.write(vmx, 0, config.as_bytes(), 0)?;

    // .vmss: device header + kernel region + scattered dirty pages.
    let vmss = fs.create(dir, &spec.vmss_name(), 0o644, 0)?;
    fs.setattr(vmss, Some(spec.memory_bytes), None, 0)?;
    let header = page_payload(&mut rng, 64 * 1024);
    fs.write(vmss, 0, &header, 0)?;
    let total_pages = spec.memory_bytes / PAGE;
    let nonzero_pages = ((total_pages as f64) * spec.mem_nonzero_fraction) as u64;
    // Two-thirds contiguous (kernel, libraries, daemons) from the bottom;
    // one-third scattered (page-allocator churn).
    let contiguous = nonzero_pages * 2 / 3;
    for p in 0..contiguous {
        let payload = page_payload(&mut rng, PAGE as usize);
        fs.write(vmss, 64 * 1024 + p * PAGE, &payload, 0)?;
    }
    // Scattered dirty pages come in 64 KB clusters (16 pages): buddy
    // allocation and slab locality make isolated dirty pages rare, and
    // clustering keeps sparse storage proportional to real content.
    let cluster_pages = 16u64;
    let clusters = (nonzero_pages - contiguous) / cluster_pages;
    for _ in 0..clusters {
        let p = rng.below(total_pages.saturating_sub(cluster_pages).max(1));
        let payload = page_payload(&mut rng, (cluster_pages * PAGE) as usize);
        fs.write(
            vmss,
            (p * PAGE).min(spec.memory_bytes.saturating_sub(cluster_pages * PAGE)),
            &payload,
            0,
        )?;
    }

    // .vmdk: plain-mode disk. Guest data clustered into extents.
    let vmdk = fs.create(dir, &spec.vmdk_name(), 0o644, 0)?;
    fs.setattr(vmdk, Some(spec.disk_bytes), None, 0)?;
    let used_bytes = (spec.disk_bytes as f64 * spec.disk_used_fraction) as u64;
    let extent = 4 << 20; // 4 MB extents
    let mut written = 0u64;
    while written < used_bytes {
        let pos = rng.below(spec.disk_bytes / extent) * extent;
        let chunk = page_payload(&mut rng, 64 * 1024);
        // One 64 KB representative chunk per extent start: keeps setup
        // fast while making the extent non-zero for cache/codec purposes.
        fs.write(
            vmdk,
            pos.min(spec.disk_bytes - chunk.len() as u64),
            &chunk,
            0,
        )?;
        written += extent;
    }

    Ok(InstalledImage { vmx, vmss, vmdk })
}

/// Granularity of divergence between sibling images: modified state
/// (logs, service configuration, page-cache churn) clusters into a few
/// megabyte-scale regions rather than scattering page by page.
pub const DIVERGE_REGION: u64 = 2 << 20;

/// Rewrite a clustered `fraction` of `img`'s memory state with fresh
/// content so a derived image diverges from its base install.
///
/// This is the picture a grid sees when a fleet of VMs descends from
/// one golden install: hostname, logs and service state differ, the
/// bulk of RAM does not. Regions are chosen by a PRNG seeded per image,
/// so siblings diverge in different places; some regions land on
/// previously-zero memory (new dirty pages), others overwrite base
/// content. Runs at scenario-setup time (no simulation cost).
pub fn diverge_image(
    fs: &mut Fs,
    img: &InstalledImage,
    spec: &VmImageSpec,
    seed: u64,
    fraction: f64,
) -> FsResult<()> {
    if spec.memory_bytes == 0 {
        return Ok(());
    }
    let mut rng = Prng::new(seed);
    let region = DIVERGE_REGION.clamp(PAGE, spec.memory_bytes.max(PAGE));
    let regions = ((spec.memory_bytes as f64 * fraction) / region as f64).ceil() as u64;
    // Slot count must cover the partial tail region of images whose
    // length is not a region multiple: flooring here would both exempt
    // the tail from ever diverging and, for images smaller than one
    // region, round the slot count (and with it all divergence) to zero.
    let slots = spec.memory_bytes.div_ceil(region);
    for _ in 0..regions {
        let pos = rng.below(slots) * region;
        // The tail slot is short; clamp so divergence never writes past
        // (and so never extends) the image.
        let len = region.min(spec.memory_bytes - pos) as usize;
        let payload = page_payload(&mut rng, len);
        fs.write(img.vmss, pos, &payload, 0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> VmImageSpec {
        VmImageSpec {
            name: "test".into(),
            memory_bytes: 8 << 20,
            disk_bytes: 64 << 20,
            mem_nonzero_fraction: 0.10,
            disk_used_fraction: 0.2,
            seed: 42,
        }
    }

    #[test]
    fn install_creates_three_files_with_right_sizes() {
        let mut fs = Fs::new(0);
        let root = fs.root();
        let img = install_image(&mut fs, root, &small_spec()).unwrap();
        assert_eq!(fs.size(img.vmss).unwrap(), 8 << 20);
        assert_eq!(fs.size(img.vmdk).unwrap(), 64 << 20);
        let vmx_size = fs.size(img.vmx).unwrap();
        assert!(vmx_size > 100 && vmx_size < 4096);
        assert!(fs.resolve("test.vmss").is_ok());
        assert!(fs.resolve("test.vmdk").is_ok());
        assert!(fs.resolve("test.vmx").is_ok());
    }

    #[test]
    fn memory_image_is_mostly_zero_but_not_entirely() {
        let mut fs = Fs::new(0);
        let root = fs.root();
        let img = install_image(&mut fs, root, &small_spec()).unwrap();
        let total = 8 << 20;
        let block = 32 * 1024;
        let mut zero_blocks = 0;
        for off in (0..total).step_by(block) {
            if fs.is_zero_range(img.vmss, off as u64, block).unwrap() {
                zero_blocks += 1;
            }
        }
        let nblocks = total / block;
        // ~10% nonzero pages clustered: most 32K blocks outside the
        // cluster stay zero.
        assert!(
            zero_blocks > nblocks / 2,
            "only {zero_blocks}/{nblocks} zero"
        );
        assert!(zero_blocks < nblocks, "image must not be all zero");
    }

    #[test]
    fn generation_is_deterministic() {
        let build = || {
            let mut fs = Fs::new(0);
            let root = fs.root();
            let img = install_image(&mut fs, root, &small_spec()).unwrap();
            let (a, _) = fs.read(img.vmss, 0, 1 << 20, 0).unwrap();
            let (b, _) = fs.read(img.vmdk, 0, 1 << 20, 0).unwrap();
            (a, b)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn diverged_sibling_shares_most_content_with_base() {
        let spec = small_spec();
        let build = |diverge: Option<u64>| {
            let mut fs = Fs::new(0);
            let root = fs.root();
            let img = install_image(&mut fs, root, &spec).unwrap();
            if let Some(seed) = diverge {
                diverge_image(&mut fs, &img, &spec, seed, 0.04).unwrap();
            }
            let (bytes, _) = fs.read(img.vmss, 0, spec.memory_bytes as usize, 0).unwrap();
            bytes
        };
        let base = build(None);
        let sib_a = build(Some(7));
        let sib_b = build(Some(8));
        assert_ne!(base, sib_a);
        assert_ne!(sib_a, sib_b, "per-image seeds must diverge differently");
        // Compare at the region granularity: writes are region-aligned,
        // so at most `ceil(4% / region)` regions change (fewer when the
        // PRNG collides), and at least one must.
        let region = DIVERGE_REGION as usize;
        let total = base.len().div_ceil(region);
        let expected = ((base.len() as f64 * 0.04) / region as f64).ceil() as usize;
        let changed = (0..total)
            .filter(|i| {
                let lo = i * region;
                let hi = (lo + region).min(base.len());
                base[lo..hi] != sib_a[lo..hi]
            })
            .count();
        assert!(changed >= 1, "divergence must change something");
        assert!(
            changed <= expected,
            "{changed}/{total} regions changed; wrote at most {expected}"
        );
        assert!(changed < total, "most of the image must stay shared");
    }

    /// Divergence on an image whose length is not a region multiple must
    /// be able to land on the short tail slot — and clamp there rather
    /// than writing past (or extending) the image.
    #[test]
    fn divergence_reaches_the_tail_of_unaligned_images() {
        let spec = VmImageSpec {
            memory_bytes: 5 << 20, // 2.5 regions: tail slot is 1 MB short
            ..small_spec()
        };
        let tail_lo = (2 * DIVERGE_REGION) as usize;
        let mut tail_hit = false;
        for seed in 0..64 {
            let mut fs = Fs::new(0);
            let root = fs.root();
            let img = install_image(&mut fs, root, &spec).unwrap();
            let (before, _) = fs.read(img.vmss, 0, spec.memory_bytes as usize, 0).unwrap();
            diverge_image(&mut fs, &img, &spec, seed, 1.0).unwrap();
            assert_eq!(
                fs.size(img.vmss).unwrap(),
                spec.memory_bytes,
                "seed {seed}: divergence must never extend the image"
            );
            let (after, _) = fs.read(img.vmss, 0, spec.memory_bytes as usize, 0).unwrap();
            if before[tail_lo..] != after[tail_lo..] {
                tail_hit = true;
            }
        }
        assert!(tail_hit, "tail region must be eligible for divergence");
    }

    /// An image smaller than one divergence region still diverges: the
    /// slot count must not round down to zero.
    #[test]
    fn sub_region_image_still_diverges() {
        let spec = VmImageSpec {
            memory_bytes: 1 << 20,
            ..small_spec()
        };
        let mut fs = Fs::new(0);
        let root = fs.root();
        let img = install_image(&mut fs, root, &spec).unwrap();
        let (before, _) = fs.read(img.vmss, 0, spec.memory_bytes as usize, 0).unwrap();
        diverge_image(&mut fs, &img, &spec, 9, 0.02).unwrap();
        assert_eq!(fs.size(img.vmss).unwrap(), spec.memory_bytes);
        let (after, _) = fs.read(img.vmss, 0, spec.memory_bytes as usize, 0).unwrap();
        assert_ne!(before, after, "small image must still diverge");
    }

    /// Sweep awkward sizes (page-odd tails, exact multiples, sub-region)
    /// at full divergence: the file length is invariant for every seed.
    #[test]
    fn divergence_preserves_image_length_across_boundary_sizes() {
        // Sizes start above the 64 KB device header install_image lays
        // down; sub-header images are outside the installer's contract.
        for memory_bytes in [
            (1 << 20) + PAGE,
            DIVERGE_REGION,
            DIVERGE_REGION + PAGE,
            (5 << 20) + 3 * PAGE,
            8 << 20,
        ] {
            let spec = VmImageSpec {
                memory_bytes,
                ..small_spec()
            };
            let mut fs = Fs::new(0);
            let root = fs.root();
            let img = install_image(&mut fs, root, &spec).unwrap();
            for seed in 0..8 {
                diverge_image(&mut fs, &img, &spec, seed, 1.0).unwrap();
            }
            assert_eq!(
                fs.size(img.vmss).unwrap(),
                memory_bytes,
                "{memory_bytes}-byte image changed length under divergence"
            );
        }
    }

    #[test]
    fn vmx_mentions_state_files() {
        let mut fs = Fs::new(0);
        let root = fs.root();
        let img = install_image(&mut fs, root, &small_spec()).unwrap();
        let size = fs.size(img.vmx).unwrap();
        let (bytes, _) = fs.read(img.vmx, 0, size as usize, 0).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("test.vmdk"));
        assert!(text.contains("test.vmss"));
        assert!(text.contains("memsize = \"8\""));
    }
}
