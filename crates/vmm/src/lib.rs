//! # vmm — hosted virtual machine monitor model
//!
//! The VM substrate of the GVFS reproduction. Models a VMware-GSX-style
//! hosted VMM whose entire interaction with the world is **file I/O on
//! its state files** (`.vmx` config, `.vmss` memory state, `.vmdk`
//! plain-mode virtual disk):
//!
//! * [`image`] — deterministic generators for realistic VM images
//!   (mostly-zero post-boot memory, sparsely-used virtual disks),
//! * [`VmMonitor`] — resume (full sequential memory-state read), guest
//!   trace execution through a guest page cache, suspend, shutdown,
//! * [`RedoLog`] — non-persistent disk mode: guest writes land in a redo
//!   log file, reads overlay it on the golden disk,
//! * [`clone`] — the paper's cloning workflow: copy config, copy memory
//!   state, symlink virtual disks, configure, resume.
//!
//! Because all I/O goes through [`vfs::FileIo`] and a [`vfs::MountTable`],
//! the same monitor runs against a local disk, a plain NFS mount, or a
//! GVFS proxy chain — without knowing which (the paper's transparency
//! claim).

#![warn(missing_docs)]

pub mod clone;
pub mod image;
pub mod monitor;
pub mod population;
pub mod redo;

pub use clone::{clone_vm, CloneConfig, CloneTimes};
pub use image::{
    diverge_image, install_image, InstalledImage, Prng, VmImageSpec, DIVERGE_REGION, PAGE,
};
pub use monitor::{GuestOp, VmConfig, VmMonitor, VmStats};
pub use population::ClonePopulation;
pub use redo::RedoLog;
