//! VM cloning (paper §3.2.3 and §4.3).
//!
//! "The cloning scheme ... includes copying the VM configuration file,
//! copying the VM memory state file, building symbolic links to the
//! virtual disk files, configuring the cloned VM, and at last resume the
//! new VM."
//!
//! The memory-state copy reads through the GVFS mount — which is where
//! zero maps, the compressed file channel and the proxy disk caches pay
//! off — and writes to the compute server's local disk. The virtual disk
//! is *not* copied: a local symlink points into the mount, and guest
//! accesses fault blocks over on demand.

use simnet::{Env, SimDuration, SimTime};
use vfs::{IoResult, MountTable};

use crate::image::VmImageSpec;
use crate::monitor::{VmConfig, VmMonitor};

/// Cloning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CloneConfig {
    /// Chunk size for the memory-state copy.
    pub copy_chunk: u32,
    /// CPU time for configuring the clone (edit config, set identity).
    pub configure_cpu: SimDuration,
    /// Monitor configuration for the resumed clone.
    pub vm: VmConfig,
    /// Copy-on-write memory state: symlink the `.vmss` into the mount
    /// (like the `.vmdk`) instead of materializing a local byte copy, so
    /// resume reads stream through GVFS where the proxy's golden-snapshot
    /// reference cache serves them. Only sound for non-persistent clones:
    /// resume merely *reads* the memory state, and a clone that never
    /// suspends never writes it back through the link.
    pub cow_memory: bool,
}

impl Default for CloneConfig {
    fn default() -> Self {
        CloneConfig {
            copy_chunk: 1 << 20,
            configure_cpu: SimDuration::from_millis(3000),
            vm: VmConfig::default(),
            cow_memory: false,
        }
    }
}

/// Per-step wall-clock (virtual) durations of one cloning.
#[derive(Debug, Clone, Copy, Default)]
pub struct CloneTimes {
    /// Copying the `.vmx`.
    pub copy_config: SimDuration,
    /// Copying the `.vmss` (the dominant step).
    pub copy_memory: SimDuration,
    /// Building the `.vmdk` symlink.
    pub links: SimDuration,
    /// Configuring the clone.
    pub configure: SimDuration,
    /// Resuming (reads the local memory copy, restores devices).
    pub resume: SimDuration,
    /// End-to-end.
    pub total: SimDuration,
}

fn copy_file(env: &Env, mounts: &MountTable, src: &str, dst: &str, chunk: u32) -> IoResult<u64> {
    let from = mounts.open(env, src)?;
    let (dst_io, dst_rel) = mounts.route(dst)?;
    let to = dst_io.create_path(env, &dst_rel)?;
    let size = from.io.getattr(env, from.handle)?.size;
    let mut off = 0u64;
    while off < size {
        let want = (chunk as u64).min(size - off) as u32;
        let data = from.io.read(env, from.handle, off, want)?;
        if data.is_empty() {
            break;
        }
        dst_io.write(env, to, off, &data)?;
        off += data.len() as u64;
    }
    from.io.close(env, from.handle)?;
    dst_io.close(env, to)?;
    Ok(off)
}

/// Clone the golden image `spec` from `golden_dir` (a path on the GVFS
/// mount, as seen in the host namespace — e.g. `/mnt/gvfs/images`) into
/// the local directory `clone_dir`, then resume it. Returns the per-step
/// times and the running monitor (non-persistent: redo log in
/// `clone_dir`).
pub fn clone_vm(
    env: &Env,
    mounts: &MountTable,
    golden_dir: &str,
    spec: &VmImageSpec,
    clone_dir: &str,
    cfg: CloneConfig,
) -> IoResult<(CloneTimes, VmMonitor)> {
    let mut times = CloneTimes::default();
    let t0: SimTime = env.now();

    // Clone directory on the local filesystem.
    let (local_io, clone_rel) = mounts.route(clone_dir)?;
    if local_io.lookup_path(env, &clone_rel).is_err() {
        local_io.mkdir_path(env, &clone_rel)?;
    }

    // 1. Copy the VM configuration file.
    let t = env.now();
    copy_file(
        env,
        mounts,
        &format!("{golden_dir}/{}", spec.vmx_name()),
        &format!("{clone_dir}/{}", spec.vmx_name()),
        cfg.copy_chunk,
    )?;
    times.copy_config = env.now() - t;

    // 2. Memory state. Default: copy through GVFS (zero maps / file
    //    channel / proxy caches all apply on the mount side) into a
    //    local file. CoW: symlink into the mount instead — the resume
    //    step reads through the link, served by the proxy's reference
    //    cache, and no local materialization cost is paid up front.
    let t = env.now();
    if cfg.cow_memory {
        local_io.symlink_path(
            env,
            &format!("{clone_rel}/{}", spec.vmss_name()),
            &format!("{golden_dir}/{}", spec.vmss_name()),
        )?;
    } else {
        copy_file(
            env,
            mounts,
            &format!("{golden_dir}/{}", spec.vmss_name()),
            &format!("{clone_dir}/{}", spec.vmss_name()),
            cfg.copy_chunk,
        )?;
    }
    times.copy_memory = env.now() - t;

    // 3. Symbolic link to the virtual disk on the image server mount.
    let t = env.now();
    local_io.symlink_path(
        env,
        &format!("{clone_rel}/{}", spec.vmdk_name()),
        &format!("{golden_dir}/{}", spec.vmdk_name()),
    )?;
    times.links = env.now() - t;

    // 4. Configure the clone (hostname, identity, devices).
    let t = env.now();
    let vmx_path = format!("{clone_rel}/{}", spec.vmx_name());
    let vmx = local_io.lookup_path(env, &vmx_path)?;
    let patch = format!(
        "displayName = \"{}-clone\"\nuuid.action = \"create\"\n",
        spec.name
    );
    let size = local_io.getattr(env, vmx)?.size;
    local_io.write(env, vmx, size, patch.as_bytes())?;
    local_io.close(env, vmx)?;
    env.sleep(cfg.configure_cpu);
    times.configure = env.now() - t;

    // 5. Resume from the local memory copy; disk reads go through the
    //    symlink to the mount, with guest writes in a local redo log.
    let t = env.now();
    let redo_path = format!("{clone_dir}/{}.REDO", spec.name);
    let vm = VmMonitor::attach(
        env,
        mounts,
        clone_dir,
        spec.clone(),
        cfg.vm,
        Some(&redo_path),
    )?;
    vm.resume(env)?;
    times.resume = env.now() - t;

    times.total = env.now() - t0;
    Ok((times, vm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::install_image;
    use crate::monitor::GuestOp;
    use simnet::Simulation;
    use std::sync::Arc;
    use vfs::{Disk, DiskModel, FileIo, LocalIo, LocalIoConfig};

    fn spec() -> VmImageSpec {
        VmImageSpec {
            name: "golden".into(),
            memory_bytes: 4 << 20,
            disk_bytes: 32 << 20,
            mem_nonzero_fraction: 0.1,
            disk_used_fraction: 0.2,
            seed: 11,
        }
    }

    /// Both "image server" and compute server on local disks — exercises
    /// the mechanics; the WAN behaviour is covered by the bench crate.
    fn hosts(sim: &Simulation) -> (Arc<LocalIo>, Arc<LocalIo>, MountTable) {
        let local = LocalIo::new(
            Disk::new(&sim.handle(), DiskModel::scsi_2004()),
            LocalIoConfig::default(),
            0,
        );
        let images = LocalIo::new(
            Disk::new(&sim.handle(), DiskModel::server_array()),
            LocalIoConfig::default(),
            0,
        );
        images.with_fs(|fs| {
            let root = fs.root();
            let dir = fs.mkdir(root, "images", 0o755, 0).unwrap();
            install_image(fs, dir, &spec()).unwrap();
        });
        let table = MountTable::new()
            .mount("/", local.clone())
            .mount("/mnt/gvfs", images.clone());
        (local, images, table)
    }

    #[test]
    fn clone_produces_runnable_vm_with_symlinked_disk() {
        let sim = Simulation::new();
        let (local, _images, table) = hosts(&sim);
        sim.spawn("cloner", move |env| {
            let (times, vm) = clone_vm(
                &env,
                &table,
                "/mnt/gvfs/images",
                &spec(),
                "/clone1",
                CloneConfig::default(),
            )
            .unwrap();
            assert!(vm.is_resumed());
            // Memory copy dominates config copy.
            assert!(times.copy_memory > times.copy_config);
            assert!(times.total.as_secs_f64() > 0.0);
            // The local dir holds vmx + vmss + symlink + redo.
            let mut names = local.readdir_path(&env, "clone1").unwrap();
            names.sort();
            assert_eq!(
                names,
                vec!["golden.REDO", "golden.vmdk", "golden.vmss", "golden.vmx"]
            );
            // The vmdk is a symlink into the mount.
            let lh = local.lookup_path(&env, "clone1/golden.vmdk").unwrap();
            assert_eq!(
                local.readlink(&env, lh).unwrap(),
                "/mnt/gvfs/images/golden.vmdk"
            );
            // Guest I/O works: reads come from the golden disk, writes go
            // to the redo log.
            vm.run(
                &env,
                &[
                    GuestOp::DiskRead {
                        offset: 0,
                        len: 8192,
                    },
                    GuestOp::DiskWrite {
                        offset: 4096,
                        len: 4096,
                    },
                    GuestOp::DiskRead {
                        offset: 4096,
                        len: 4096,
                    },
                ],
            )
            .unwrap();
            assert!(vm.redo_bytes().unwrap() > 0);
        });
        sim.run();
    }

    #[test]
    fn golden_image_is_never_mutated_by_clone_execution() {
        let sim = Simulation::new();
        let (_local, images, table) = hosts(&sim);
        let before: Vec<u8> = images.with_fs(|fs| {
            let h = fs.resolve("images/golden.vmdk").unwrap();
            fs.read(h, 0, 1 << 20, 0).unwrap().0
        });
        let images2 = images.clone();
        sim.spawn("cloner", move |env| {
            let (_, vm) = clone_vm(
                &env,
                &table,
                "/mnt/gvfs/images",
                &spec(),
                "/c",
                CloneConfig::default(),
            )
            .unwrap();
            vm.run(
                &env,
                &[GuestOp::DiskWrite {
                    offset: 0,
                    len: 64 * 1024,
                }],
            )
            .unwrap();
            let after: Vec<u8> = images2.with_fs(|fs| {
                let h = fs.resolve("images/golden.vmdk").unwrap();
                fs.read(h, 0, 1 << 20, 0).unwrap().0
            });
            assert_eq!(before, after, "golden vmdk must stay pristine");
        });
        sim.run();
    }

    /// CoW memory mode: the `.vmss` is a symlink into the mount, resume
    /// still works (reads stream through GVFS), and the golden memory
    /// state stays pristine.
    #[test]
    fn cow_clone_symlinks_memory_state_and_resumes() {
        let sim = Simulation::new();
        let (local, images, table) = hosts(&sim);
        let before: Vec<u8> = images.with_fs(|fs| {
            let h = fs.resolve("images/golden.vmss").unwrap();
            fs.read(h, 0, 1 << 20, 0).unwrap().0
        });
        let images2 = images.clone();
        sim.spawn("cloner", move |env| {
            let (times, vm) = clone_vm(
                &env,
                &table,
                "/mnt/gvfs/images",
                &spec(),
                "/cow1",
                CloneConfig {
                    cow_memory: true,
                    ..CloneConfig::default()
                },
            )
            .unwrap();
            assert!(vm.is_resumed());
            let lh = local.lookup_path(&env, "cow1/golden.vmss").unwrap();
            assert_eq!(
                local.readlink(&env, lh).unwrap(),
                "/mnt/gvfs/images/golden.vmss"
            );
            // No local materialization: the link step is (near) free and
            // the read cost moves into resume.
            assert!(times.copy_memory < times.resume);
            let after: Vec<u8> = images2.with_fs(|fs| {
                let h = fs.resolve("images/golden.vmss").unwrap();
                fs.read(h, 0, 1 << 20, 0).unwrap().0
            });
            assert_eq!(before, after, "golden vmss must stay pristine");
        });
        sim.run();
    }

    /// CoW and copy clones expose bit-identical memory state: the local
    /// byte copy and the symlink both resolve to the same guest-visible
    /// `.vmss` contents, and both resumes read the full image.
    #[test]
    fn cow_clone_restores_same_memory_as_copy_clone() {
        let sim = Simulation::new();
        let (_local, _images, table) = hosts(&sim);
        sim.spawn("cloner", move |env| {
            let run = |dir: &str, cow_memory: bool| {
                let (_, vm) = clone_vm(
                    &env,
                    &table,
                    "/mnt/gvfs/images",
                    &spec(),
                    dir,
                    CloneConfig {
                        cow_memory,
                        ..CloneConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(vm.stats().host_bytes_read, spec().memory_bytes);
                let f = table
                    .open(&env, &format!("{dir}/{}", spec().vmss_name()))
                    .unwrap();
                let size = f.io.getattr(&env, f.handle).unwrap().size;
                let mut bytes = Vec::with_capacity(size as usize);
                let mut off = 0u64;
                while off < size {
                    let want = (1u64 << 20).min(size - off) as u32;
                    let data = f.io.read(&env, f.handle, off, want).unwrap();
                    off += data.len() as u64;
                    bytes.extend_from_slice(&data);
                }
                bytes
            };
            assert_eq!(run("/a", false), run("/b", true));
        });
        sim.run();
    }

    #[test]
    fn second_clone_into_new_dir_works() {
        let sim = Simulation::new();
        let (_local, _images, table) = hosts(&sim);
        sim.spawn("cloner", move |env| {
            for i in 0..2 {
                let (_, vm) = clone_vm(
                    &env,
                    &table,
                    "/mnt/gvfs/images",
                    &spec(),
                    &format!("/clone{i}"),
                    CloneConfig::default(),
                )
                .unwrap();
                assert!(vm.is_resumed());
            }
        });
        sim.run();
    }
}
