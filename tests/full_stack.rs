//! Cross-crate integration tests: the full GVFS deployment exercised
//! end-to-end, including the paper's in-text claims.

use std::sync::Arc;

use gvfs::{DedupTuning, Middleware, WritePolicy};
use gvfs_bench::{
    build_client, build_server, run_cloning, ClientProxyOptions, CloneParams, CloneScenario,
    NetParams,
};
use nfs3::{KernelClient, KernelConfig, Nfs3Client};
use oncrpc::{RpcClient, WireSpec};
use parking_lot::Mutex;
use simnet::{Link, SimDuration, Simulation};
use vfs::FileIo;
use vmm::{install_image, VmImageSpec};

fn wan_pair(h: &simnet::SimHandle) -> (Link, Link) {
    let net = NetParams::default();
    (
        Link::from_mbps(h, "wan-up", net.wan_up_mbps, net.wan_oneway),
        Link::from_mbps(h, "wan-down", net.wan_down_mbps, net.wan_oneway),
    )
}

/// The paper's §3.2.2 in-text claim: resuming a 512 MB post-boot VM
/// issues ~65,750 NFS reads of which ~60,452 (92%) are filtered by the
/// zero-block meta-data. We reproduce the counting experiment at the
/// paper's 8 KB read granularity on a scaled image and check the filter
/// ratio; a full-size run is in the `ablations` bench binary.
#[test]
fn zero_map_filters_the_large_majority_of_memory_state_reads() {
    let sim = Simulation::new();
    let h = sim.handle();
    let (up, down) = wan_pair(&h);
    let server = build_server(&h, up, down, 768 << 20, true);
    // A 64 MB post-boot-style image (8% nonzero), zero map only.
    let spec = VmImageSpec {
        name: "postboot".into(),
        memory_bytes: 64 << 20,
        disk_bytes: 128 << 20,
        mem_nonzero_fraction: 0.08,
        disk_used_fraction: 0.2,
        seed: 0x5EED,
    };
    {
        let mut fs = server.fs.lock();
        let root = fs.root();
        let dir = fs.mkdir(root, "exports", 0o755, 0).unwrap();
        install_image(&mut fs, dir, &spec).unwrap();
        Middleware::generate_meta(&mut fs, "exports", "postboot.vmss", 8 * 1024, true, None)
            .unwrap();
    }
    let mw = Middleware::new();
    let (_sid, cred) = mw.establish_session(&server.mapper, "alice", 0, u64::MAX / 2);
    let client = build_client(
        &h,
        server.channel.clone(),
        cred.clone(),
        Some(ClientProxyOptions {
            block_cache: true,
            file_channel: true,
            write_policy: WritePolicy::WriteBack,
            cache_bytes: 2 << 30,
            dedup: DedupTuning::default(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        }),
        None,
    );
    let proxy = client.proxy.clone().unwrap();
    let srv = server.server.clone();
    sim.spawn("resumer", move |env| {
        let nfs = Nfs3Client::new(RpcClient::new(client.channel.clone(), cred));
        let kc = KernelClient::mount(
            &env,
            nfs,
            "/exports",
            KernelConfig {
                rsize: 8 * 1024,
                wsize: 8 * 1024,
                ..KernelConfig::default()
            },
        )
        .unwrap();
        let fh = kc.lookup_path(&env, "postboot.vmss").unwrap();
        srv.reset_stats();
        // Read the entire memory state, like a VMM resume.
        let mut off = 0u64;
        while off < 64 << 20 {
            let data = kc.read(&env, fh, off, 256 * 1024).unwrap();
            assert!(!data.is_empty());
            off += data.len() as u64;
        }
        let st = proxy.stats();
        let total_reads = 64 * 1024 / 8; // 8192 8 KB reads
        assert_eq!(st.reads, total_reads);
        // The large majority must be served locally from the zero map.
        assert!(
            st.zero_filtered as f64 > 0.80 * total_reads as f64,
            "only {} of {} reads filtered",
            st.zero_filtered,
            total_reads
        );
        // And the server saw only the non-zero remainder, minus reads
        // the proxy's block cache served (sub-block hits on installed
        // 32 KB blocks), plus the proxy's own read-ahead fetches —
        // exact accounting, no unexplained upstream traffic.
        let bc_hits = proxy.block_cache().unwrap().stats().hits;
        assert_eq!(
            srv.stats().reads + bc_hits,
            total_reads - st.zero_filtered + st.prefetch_issued
        );
        // Sub-block serving must make the cache a net win even here:
        // upstream reads stay below the non-zero remainder.
        assert!(srv.stats().reads <= total_reads - st.zero_filtered);
    });
    sim.run();
}

/// The kernel client pipelines its own readahead as parallel READs, and
/// the proxy's read-ahead engine speculates on the same stream. The two
/// must never fetch the same block twice over the WAN: an in-flight
/// demand READ excludes its block from the prefetch candidate set, and
/// a demand miss on an in-flight prefetch waits for it to land.
#[test]
fn pipelined_readahead_never_duplicates_upstream_reads() {
    let sim = Simulation::new();
    let h = sim.handle();
    let (up, down) = wan_pair(&h);
    let server = build_server(&h, up, down, 768 << 20, true);
    let file_bytes: u64 = 8 << 20;
    {
        let mut fs = server.fs.lock();
        let root = fs.root();
        let dir = fs.mkdir(root, "exports", 0o755, 0).unwrap();
        let f = fs.create(dir, "stream.bin", 0o644, 0).unwrap();
        fs.setattr(f, Some(file_bytes), None, 0).unwrap();
        fs.write(f, 0, &vec![0xCD; 64 * 1024], 0).unwrap();
    }
    let mw = Middleware::new();
    let (_sid, cred) = mw.establish_session(&server.mapper, "carol", 0, u64::MAX / 2);
    let client = build_client(
        &h,
        server.channel.clone(),
        cred.clone(),
        Some(ClientProxyOptions {
            block_cache: true,
            file_channel: false,
            write_policy: WritePolicy::WriteBack,
            cache_bytes: 1 << 30,
            dedup: DedupTuning::default(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        }),
        None,
    );
    let proxy = client.proxy.clone().unwrap();
    let srv = server.server.clone();
    sim.spawn("streamer", move |env| {
        let nfs = Nfs3Client::new(RpcClient::new(client.channel.clone(), cred));
        let kc = KernelClient::mount(&env, nfs, "/exports", KernelConfig::default()).unwrap();
        let fh = kc.lookup_path(&env, "stream.bin").unwrap();
        srv.reset_stats();
        let data = kc.read(&env, fh, 0, file_bytes as u32).unwrap();
        assert_eq!(data.len() as u64, file_bytes);
        let st = proxy.stats();
        let block = 32 * 1024;
        let blocks = file_bytes / block;
        // Every block crosses the WAN at most once (the read-ahead tail
        // may speculate a few junk blocks past the end of the stream).
        let tail = gvfs::TransferTuning::default().read_ahead as u64;
        assert!(
            srv.stats().reads <= blocks + tail,
            "{} upstream reads for {} blocks: demand and prefetch overlap",
            srv.stats().reads,
            blocks
        );
        // And the read-ahead engine actually participated.
        assert!(st.prefetch_issued > 0 && st.prefetch_hits > 0);
    });
    sim.run();
}

/// Byte-for-byte integrity through the entire stack: guest-visible data
/// written through VM + redo log + kernel client + proxies + WAN + server
/// must read back identically after every cache is dropped.
#[test]
fn end_to_end_byte_integrity_survives_cache_invalidation() {
    let sim = Simulation::new();
    let h = sim.handle();
    let (up, down) = wan_pair(&h);
    let server = build_server(&h, up, down, 768 << 20, true);
    let payload: Vec<u8> = (0..2_000_000u32).map(|i| (i % 239) as u8).collect();
    {
        let mut fs = server.fs.lock();
        let root = fs.root();
        let dir = fs.mkdir(root, "exports", 0o755, 0).unwrap();
        let f = fs.create(dir, "blob", 0o644, 0).unwrap();
        fs.write(f, 0, &payload, 0).unwrap();
    }
    let mw = Middleware::new();
    let (_sid, cred) = mw.establish_session(&server.mapper, "bob", 0, u64::MAX / 2);
    let client = build_client(
        &h,
        server.channel.clone(),
        cred.clone(),
        Some(ClientProxyOptions {
            block_cache: true,
            file_channel: true,
            write_policy: WritePolicy::WriteBack,
            cache_bytes: 1 << 30,
            dedup: DedupTuning::default(),
            fleet: gvfs::FleetTuning::off(),
            cow: gvfs::CowTuning::off(),
        }),
        None,
    );
    let proxy = client.proxy.clone().unwrap();
    let fs2 = server.fs.clone();
    sim.spawn("worker", move |env| {
        let nfs = Nfs3Client::new(RpcClient::new(client.channel.clone(), cred.clone()));
        let kc = KernelClient::mount(&env, nfs, "/exports", KernelConfig::default()).unwrap();
        let fh = kc.lookup_path(&env, "blob").unwrap();
        // Read everything (populates caches), overwrite a slice, close.
        let before = kc.read(&env, fh, 0, 2_000_000).unwrap();
        assert_eq!(before, payload);
        kc.write(&env, fh, 777_777, b"GVFS-WAS-HERE").unwrap();
        kc.close(&env, fh).unwrap();
        // Middleware flushes write-back data to the server.
        proxy.flush(&env, &cred);
        // Server-side truth matches.
        let mut expect = payload.clone();
        expect[777_777..777_790].copy_from_slice(b"GVFS-WAS-HERE");
        {
            let mut f = fs2.lock();
            let (server_bytes, _) = f.read(fh, 0, 2_000_000, 0).unwrap();
            assert_eq!(server_bytes, expect);
        }
        // Fresh kernel caches, reread through warm proxy: still identical.
        kc.invalidate_caches();
        let after = kc.read(&env, fh, 0, 2_000_000).unwrap();
        assert_eq!(after, expect);
    });
    sim.run();
}

/// Determinism: the whole cloning scenario, twice, produces identical
/// virtual timings (the repository's figures are reproducible).
#[test]
fn cloning_scenario_is_deterministic() {
    let params = CloneParams {
        clones: 2,
        image_scale: Some(16),
        ..CloneParams::default()
    };
    let a = run_cloning(CloneScenario::WanS1, &params);
    let b = run_cloning(CloneScenario::WanS1, &params);
    let times = |r: &gvfs_bench::CloneResult| -> Vec<u64> {
        r.times.iter().map(|t| t.total.as_nanos()).collect()
    };
    assert_eq!(times(&a), times(&b));
}

/// Multiple users share one image server; each session maps to its own
/// shadow account and bad credentials never reach the kernel server.
#[test]
fn concurrent_sessions_are_isolated_by_identity() {
    let sim = Simulation::new();
    let h = sim.handle();
    let (up, down) = wan_pair(&h);
    let server = build_server(&h, up, down, 768 << 20, true);
    {
        let mut fs = server.fs.lock();
        let root = fs.root();
        fs.mkdir(root, "exports", 0o755, 0).unwrap();
    }
    let mw = Middleware::new();
    let uids = Arc::new(Mutex::new(Vec::new()));
    for i in 0..3 {
        let (_sid, cred) =
            mw.establish_session(&server.mapper, &format!("user{i}"), 0, u64::MAX / 2);
        let channel = server.channel.clone();
        let uids = uids.clone();
        sim.spawn(format!("user{i}"), move |env| {
            let nfs = Nfs3Client::new(RpcClient::new(channel, cred));
            let root = nfs.mount(&env, "/exports").unwrap();
            let f = nfs.create(&env, root, &format!("file{i}")).unwrap();
            let attr = nfs.getattr(&env, f).unwrap();
            uids.lock().push(attr.fileid);
        });
    }
    sim.run();
    assert_eq!(uids.lock().len(), 3);
}

/// A LAN endpoint without GVFS at all (the pure-NFS baseline path) still
/// provides a correct file system — GVFS is an optimization, not a
/// correctness requirement.
#[test]
fn direct_unproxied_mount_works() {
    let sim = Simulation::new();
    let h = sim.handle();
    let up = Link::from_mbps(&h, "lan-up", 100.0, SimDuration::from_micros(200));
    let down = Link::from_mbps(&h, "lan-down", 100.0, SimDuration::from_micros(200));
    let server = build_server(&h, up, down, 768 << 20, false);
    {
        let mut fs = server.fs.lock();
        let root = fs.root();
        fs.mkdir(root, "exports", 0o755, 0).unwrap();
    }
    sim.spawn("client", move |env| {
        let cred = oncrpc::OpaqueAuth::sys(&oncrpc::AuthSys::new("c", 500, 500));
        let nfs = Nfs3Client::new(RpcClient::new(server.channel.clone(), cred));
        let kc = KernelClient::mount(&env, nfs, "/exports", KernelConfig::default()).unwrap();
        let f = kc.create_path(&env, "hello").unwrap();
        kc.write(&env, f, 0, b"world").unwrap();
        kc.close(&env, f).unwrap();
        assert_eq!(kc.read(&env, f, 0, 5).unwrap(), b"world");
    });
    sim.run();
}

// Silence the unused-import lint for WireSpec used only in some cfgs.
#[allow(dead_code)]
fn _unused(_w: WireSpec) {}
