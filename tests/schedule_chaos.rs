//! Schedule-chaos oracle at the full-stack level (DESIGN.md §5.7): the
//! adversarial scheduler (`SchedPolicy::chaos(seed)`) perturbs *which
//! OS thread* advances the simulation and *how* the baton is handed
//! over, but must never change virtual-time results. Here the whole
//! GVFS deployment — cloning (Figure 6 shape) and the LaTeX
//! fault-recovery scenario — is digested under FIFO and under chaos
//! seeds 0..8; every digest (per-clone timings, virtual end time,
//! event counts, server filesystem digest, and the rendered JSON
//! scenario report) must be bit-identical. A divergence means a real
//! schedule-sensitive race somewhere in the stack.

use std::collections::BTreeMap;
use std::sync::Mutex;

use gvfs_bench::report::scenario_report;
use gvfs_bench::{
    run_app_scenario, run_cloning, AppParams, AppScenario, CloneParams, CloneScenario, FaultSpec,
};
use proptest::{prop_assert_eq, proptest};
use simnet::{set_default_sched_policy, SchedPolicy};
use workloads::latex::{generate, LatexParams};

/// Seeds exercised: the full 0..8 in release (the CI acceptance bar);
/// a 0..4 subset under the unoptimized debug profile, where each
/// full-stack run costs ~8× more wall clock.
const SEEDS: u64 = if cfg!(debug_assertions) { 4 } else { 8 };

/// One run's complete fingerprint: anything the repository reports from
/// a simulation must be schedule-independent.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Digests {
    cloning: String,
    fault: String,
}

/// Reduced-scale cloning scenario (same shape as `fig6_cloning`'s
/// WAN-S1: one golden image, repeated clones, warm caches on the
/// second).
fn cloning_digest() -> String {
    // Smaller image in debug builds: the digest only has to be
    // self-consistent within one build profile, and the unoptimized
    // simulator is ~8× slower per event.
    let scale = if cfg!(debug_assertions) { 128 } else { 16 };
    let params = CloneParams {
        clones: 2,
        image_scale: Some(scale),
        ..CloneParams::default()
    };
    let r = run_cloning(CloneScenario::WanS1, &params);
    let times: Vec<u64> = r.times.iter().map(|t| t.total.as_nanos()).collect();
    let report = scenario_report(&r.scenario, r.total_virtual_secs, &r.snapshot);
    format!(
        "{times:?}|{}|{}|{report}",
        r.total_virtual_secs.to_bits(),
        r.events_processed
    )
}

/// Reduced-scale LaTeX WAN+C run under packet loss, a WAN outage, and a
/// mid-run server restart (the `fault_recovery` scenario's shape).
fn fault_digest() -> String {
    let (iters, cold) = if cfg!(debug_assertions) {
        (2, 150)
    } else {
        (3, 800)
    };
    let wl = generate(&LatexParams {
        iterations: iters,
        cold_blocks: cold,
        warm_blocks: 80,
        doc_bytes: 256 << 10,
        out_bytes: 512 << 10,
        compute_secs: 1.0,
        ..LatexParams::default()
    });
    let params = AppParams {
        fault: Some(FaultSpec {
            seed: 0x6762_7673,
            drop_prob: 0.015,
            outage_start_secs: 15.0,
            outage_secs: 5.0,
            restart_at_secs: Some(10.0),
        }),
        ..AppParams::default()
    };
    let r = run_app_scenario(AppScenario::WanC, &wl, &params, 1);
    assert!(
        r.server_fs_digest.is_some(),
        "network scenario must digest the server fs"
    );
    let report = scenario_report(&r.scenario, r.total_virtual_secs, &r.snapshot);
    format!(
        "{:?}|{}|{}|{report}",
        r.server_fs_digest,
        r.total_virtual_secs.to_bits(),
        r.events_processed
    )
}

/// Memoized per-policy digests. The scheduler policy is process-global
/// (`run_cloning`/`run_app_scenario` build their own `Simulation::new`),
/// so computing under the cache lock both serializes the policy swap
/// and makes each (seed → digests) pair run exactly once even though
/// the plain test and the property test sample the same seeds.
fn digests_for(seed: Option<u64>) -> Digests {
    static CACHE: Mutex<BTreeMap<Option<u64>, Digests>> = Mutex::new(BTreeMap::new());
    let mut cache = CACHE.lock().unwrap();
    if let Some(d) = cache.get(&seed) {
        return d.clone();
    }
    match seed {
        Some(s) => set_default_sched_policy(SchedPolicy::chaos(s)),
        None => set_default_sched_policy(SchedPolicy::Fifo),
    }
    let d = Digests {
        cloning: cloning_digest(),
        fault: fault_digest(),
    };
    set_default_sched_policy(SchedPolicy::Fifo);
    cache.insert(seed, d.clone());
    d
}

/// Guaranteed coverage: every seed in `0..SEEDS`, compared field by
/// field against the FIFO baseline.
#[test]
fn chaos_seeds_leave_all_digests_bit_identical() {
    let base = digests_for(None);
    for s in 0..SEEDS {
        let d = digests_for(Some(s));
        assert_eq!(
            d.cloning, base.cloning,
            "cloning digest diverged under chaos seed {s}"
        );
        assert_eq!(
            d.fault, base.fault,
            "fault-recovery digest diverged under chaos seed {s}"
        );
    }
}

proptest! {
    /// Property form: any sampled seed's digests match FIFO's (all runs
    /// are memoized above, so the sampled cases cost at most `SEEDS`
    /// actual runs).
    #[test]
    fn sampled_chaos_seed_matches_fifo(seed in 0u64..SEEDS) {
        let base = digests_for(None);
        let d = digests_for(Some(seed));
        prop_assert_eq!(&d.cloning, &base.cloning);
        prop_assert_eq!(&d.fault, &base.fault);
    }
}
